//! Rule unfolding — the paper's k-th *expansion* of a recursive formula.
//!
//! The k-th expansion is produced by resolution: rename the recursive rule
//! apart, unify its head with the recursive body atom of the (k−1)-st
//! expansion, and splice the renamed body in. Because the recursive
//! predicate's arguments are distinct variables, unification always succeeds
//! and is a pure renaming.

use crate::rule::{LinearRecursion, Rule};
use crate::subst::{rename_apart, unify_atoms};
use crate::symbol::Symbol;
use crate::term::Atom;

/// An iterator of successive expansions of a linear recursive rule.
///
/// `next()` yields expansion 1 (the rule itself), then expansion 2, 3, …
/// Fresh variables are suffixed `_1`, `_2`, … per round, mirroring the
/// paper's renumbering.
pub struct Unfolder {
    original: Rule,
    predicate: Symbol,
    current: Option<Rule>,
    counter: u32,
    round: u32,
}

impl Unfolder {
    /// Starts unfolding `rule`, which must be linear recursive.
    pub fn new(rule: &Rule) -> Unfolder {
        assert!(
            rule.is_linear_recursive(),
            "Unfolder requires a linear recursive rule, got {rule}"
        );
        Unfolder {
            original: rule.clone(),
            predicate: rule.head.predicate,
            current: None,
            counter: 0,
            round: 0,
        }
    }

    /// The expansion index of the most recently returned rule (1-based).
    pub fn round(&self) -> u32 {
        self.round
    }
}

impl Iterator for Unfolder {
    type Item = Rule;

    fn next(&mut self) -> Option<Rule> {
        let next = match &self.current {
            None => self.original.clone(),
            Some(prev) => unfold_once(prev, &self.original, self.predicate, &mut self.counter),
        };
        self.round += 1;
        self.current = Some(next.clone());
        Some(next)
    }
}

/// Performs one resolution step: replaces the recursive body atom of `prev`
/// with the (renamed-apart) body of `original`.
pub fn unfold_once(prev: &Rule, original: &Rule, predicate: Symbol, counter: &mut u32) -> Rule {
    unfold_once_traced(prev, original, predicate, counter).result
}

/// The outcome of one traced resolution step.
///
/// `spliced` is the renamed copy of the original rule *after* applying the
/// unifier — its head equals the recursive body atom of the previous
/// expansion. Resolution-graph construction appends `spliced`'s I-graph to
/// the previous resolution graph (the paper's "append the k-th I-graph to
/// the (k−1)-st resolution graph using common variables").
#[derive(Debug, Clone)]
pub struct UnfoldStep {
    /// The new expansion.
    pub result: Rule,
    /// The unified copy of the original rule that was spliced in.
    pub spliced: Rule,
}

/// [`unfold_once`] but also returns the spliced copy (for resolution graphs).
pub fn unfold_once_traced(
    prev: &Rule,
    original: &Rule,
    predicate: Symbol,
    counter: &mut u32,
) -> UnfoldStep {
    let (renamed, _) = rename_apart(original, counter);
    let Some(target) = prev.body.iter().find(|a| a.predicate == predicate) else {
        panic!("prev must contain the recursive atom {predicate}")
    };
    let Some(mgu) = unify_atoms(&renamed.head, target) else {
        // Unreachable: the head's arguments are renamed-apart variables, so
        // unification is a pure renaming and always succeeds.
        panic!("recursive head must unify with the recursive body atom")
    };
    let spliced = mgu.apply_rule(&renamed);
    let result = resolve_recursive_atom(prev, &renamed, predicate);
    UnfoldStep { result, spliced }
}

/// Resolves the single `predicate` atom in `prev`'s body against `clause`
/// (whose head must unify with it), splicing in `clause`'s body. `clause`
/// must already be variable-disjoint from `prev`.
pub fn resolve_recursive_atom(prev: &Rule, clause: &Rule, predicate: Symbol) -> Rule {
    let Some(pos) = prev.body.iter().position(|a| a.predicate == predicate) else {
        panic!("prev must contain the recursive atom {predicate}")
    };
    let target: &Atom = &prev.body[pos];
    let Some(mgu) = unify_atoms(&clause.head, target) else {
        // Unreachable for rules produced by the unfolder (see above), but a
        // caller-supplied clause with a constant-bearing head could fail.
        panic!("head of {clause} must unify with the recursive body atom")
    };
    let mut body: Vec<Atom> = Vec::with_capacity(prev.body.len() + clause.body.len() - 1);
    for (i, atom) in prev.body.iter().enumerate() {
        if i == pos {
            for b in &clause.body {
                body.push(mgu.apply_atom(b));
            }
        } else {
            body.push(mgu.apply_atom(atom));
        }
    }
    Rule {
        head: mgu.apply_atom(&prev.head),
        body,
    }
}

/// The k-th expansion (k ≥ 1; expansion 1 is the rule itself).
///
/// ```
/// use recurs_datalog::parser::parse_rule;
/// use recurs_datalog::unfold::expansion;
///
/// let rule = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
/// let e3 = expansion(&rule, 3);
/// assert_eq!(e3.body.len(), 4); // three A-copies and the recursive atom
/// assert!(e3.is_linear_recursive());
/// ```
pub fn expansion(rule: &Rule, k: usize) -> Rule {
    assert!(k >= 1, "expansions are 1-based");
    match Unfolder::new(rule).nth(k - 1) {
        Some(expanded) => expanded,
        // Unreachable: the unfolder's `next` never returns `None`.
        None => unreachable!("unfolder is infinite"),
    }
}

/// Replaces the recursive body atom of `expanded` with the body of the exit
/// rule (renamed apart), producing a non-recursive rule. This is the paper's
/// "replace the recursive predicate in the antecedent by the exit relation".
pub fn close_with_exit(expanded: &Rule, exit: &Rule, counter: &mut u32) -> Rule {
    let predicate = exit.head.predicate;
    let (renamed_exit, _) = rename_apart(exit, counter);
    resolve_recursive_atom(expanded, &renamed_exit, predicate)
}

/// All expansions 1..=k of the recursive rule of `lr`, plus, for each, the
/// corresponding exit-closed non-recursive rules (one per exit rule).
pub fn expansion_closure(lr: &LinearRecursion, k: usize) -> Vec<(Rule, Vec<Rule>)> {
    let mut counter = 10_000; // keep exit renamings clear of expansion names
    Unfolder::new(&lr.recursive_rule)
        .take(k)
        .map(|exp| {
            let closed = lr
                .exit_rules
                .iter()
                .map(|exit| close_with_exit(&exp, exit, &mut counter))
                .collect();
            (exp, closed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use crate::rule::Program;
    use crate::validate::validate_with_generic_exit;

    #[test]
    fn first_expansion_is_the_rule() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let e1 = expansion(&r, 1);
        assert_eq!(e1, r);
    }

    #[test]
    fn second_expansion_of_transitive_closure() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let e2 = expansion(&r, 2);
        // Shape: P(x,y) :- A(x,z), A(z,z'), P(z',y).
        assert_eq!(e2.body.len(), 3);
        assert!(e2.is_linear_recursive());
        let a_atoms: Vec<_> = e2.body_atoms_of(Symbol::intern("A")).collect();
        assert_eq!(a_atoms.len(), 2);
        // Chain: head x flows into first A; first A's z into second A.
        assert_eq!(a_atoms[0].terms[0], e2.head.terms[0]);
        assert_eq!(a_atoms[0].terms[1], a_atoms[1].terms[0]);
        // Recursive atom carries the second A's fresh output and the head's y.
        let p = e2.body_atoms_of(Symbol::intern("P")).next().unwrap();
        assert_eq!(p.terms[0], a_atoms[1].terms[1]);
        assert_eq!(p.terms[1], e2.head.terms[1]);
    }

    #[test]
    fn expansion_s2a_matches_paper() {
        // s2a: P(x,y) :- A(x,z), P(z,u), B(u,y).
        // Paper's s2c: P(x,y) :- A(x,z), A(z,z1), P(z1,u1), B(u1,u), B(u,y).
        let r = parse_rule("P(x, y) :- A(x, z), P(z, u), B(u, y).").unwrap();
        let e2 = expansion(&r, 2);
        assert_eq!(e2.body.len(), 5);
        let a: Vec<_> = e2.body_atoms_of(Symbol::intern("A")).collect();
        let b: Vec<_> = e2.body_atoms_of(Symbol::intern("B")).collect();
        let p: Vec<_> = e2.body_atoms_of(Symbol::intern("P")).collect();
        assert_eq!((a.len(), b.len(), p.len()), (2, 2, 1));
        // A-chain into P, P into B-chain, B-chain ends at head y.
        assert_eq!(a[0].terms[1], a[1].terms[0]); // z
        assert_eq!(a[1].terms[1], p[0].terms[0]); // z1
        assert_eq!(p[0].terms[1], b[0].terms[0]); // u1
        assert_eq!(b[0].terms[1], b[1].terms[0]); // u
        assert_eq!(b[1].terms[1], e2.head.terms[1]); // y
    }

    #[test]
    fn expansions_grow_linearly() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        for (i, e) in Unfolder::new(&r).take(6).enumerate() {
            assert_eq!(e.body.len(), i + 2); // i+1 copies of A plus one P
            assert!(e.is_linear_recursive());
            assert_eq!(e.head, r.head, "the head never changes");
        }
    }

    #[test]
    fn permutational_expansion_cycles() {
        // s5: P(x,y,z) :- P(y,z,x). After 3 expansions the recursive atom is
        // back to the head's variable order.
        let r = parse_rule("P(x, y, z) :- P(y, z, x).").unwrap();
        let e3 = expansion(&r, 3);
        let p = e3.body_atoms_of(Symbol::intern("P")).next().unwrap();
        assert_eq!(p.terms, e3.head.terms);
    }

    #[test]
    fn close_with_exit_removes_recursion() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let exit = parse_rule("P(x, y) :- E(x, y).").unwrap();
        let mut counter = 0;
        let closed = close_with_exit(&r, &exit, &mut counter);
        assert!(!closed.is_recursive());
        assert_eq!(closed.body.len(), 2);
        assert_eq!(closed.to_string(), "P(x, y) :- A(x, z), E(z, y).");
    }

    #[test]
    fn expansion_closure_produces_k_levels() {
        let program = Program::new(vec![
            parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap(),
            parse_rule("P(x, y) :- E(x, y).").unwrap(),
        ]);
        let lr = validate_with_generic_exit(&program).unwrap();
        let closure = expansion_closure(&lr, 3);
        assert_eq!(closure.len(), 3);
        for (k, (exp, closed)) in closure.iter().enumerate() {
            assert_eq!(exp.body.len(), k + 2);
            assert_eq!(closed.len(), 1);
            assert!(!closed[0].is_recursive());
            // Exit-closed level k has k+1 A-atoms... actually k A-atoms + E.
            assert_eq!(closed[0].body.len(), k + 2);
        }
    }

    #[test]
    fn unfolded_semantics_match_direct_evaluation() {
        // The 2nd expansion plus level-1 exit closure is logically equivalent
        // to the original program; check on data.
        use crate::database::Database;
        use crate::eval::semi_naive;
        use crate::relation::Relation;

        let rec = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let exit = parse_rule("P(x, y) :- E(x, y).").unwrap();
        let original = Program::new(vec![rec.clone(), exit.clone()]);

        let mut counter = 0;
        let e2 = expansion(&rec, 2);
        let level1 = close_with_exit(&rec, &exit, &mut counter);
        let transformed = Program::new(vec![e2, exit.clone(), level1]);

        let edb = Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5), (2, 7)]);
        let mut db1 = Database::new();
        db1.insert_relation("A", edb.clone());
        db1.insert_relation("E", edb.clone());
        let mut db2 = db1.clone();

        semi_naive(&mut db1, &original, None).unwrap();
        semi_naive(&mut db2, &transformed, None).unwrap();
        assert_eq!(db1.require("P").unwrap(), db2.require("P").unwrap());
    }
}
