//! Terms and atoms of the function-free (Datalog) fragment.

use crate::symbol::Symbol;
use std::fmt;

/// A constant of the domain. Constants are interned names (which may be
/// numerals); data generators typically produce `Value::from_u64` constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub Symbol);

impl Value {
    /// Interns a numeric constant such as `42`.
    pub fn from_u64(n: u64) -> Value {
        // Numerals intern like any other name; this keeps tuples uniform.
        Value(Symbol::intern(itoa(n).as_str()))
    }

    /// Interns a named constant such as `a`.
    pub fn named(name: &str) -> Value {
        Value(Symbol::intern(name))
    }

    /// The constant's printable name.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

fn itoa(n: u64) -> String {
    n.to_string()
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A term: either a variable or a constant.
///
/// The paper's recursive statements contain no constants, but queries do
/// (`P(a, b, Z)`), and exit relations may be defined over constants, so the
/// full term language carries both.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable, e.g. `x`, `y1`.
    Var(Symbol),
    /// A constant, e.g. `a`, `42`.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Convenience constructor for a named-constant term.
    pub fn constant(name: &str) -> Term {
        Term::Const(Value::named(name))
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable symbol, if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An atom `Pred(t1, ..., tn)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate symbol.
    pub predicate: Symbol,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate name and terms.
    pub fn new(predicate: impl Into<Symbol>, terms: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterator over the variables occurring in the atom, in position order
    /// (with repeats if a variable occurs more than once).
    pub fn variables(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// True if every argument is a distinct variable — the paper requires
    /// this of the recursive predicate's occurrences.
    pub fn has_distinct_variables(&self) -> bool {
        let mut seen = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            match t.as_var() {
                Some(v) if !seen.contains(&v) => seen.push(v),
                _ => return false,
            }
        }
        true
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_from_u64_round_trips() {
        let v = Value::from_u64(42);
        assert_eq!(v.as_str(), "42");
        assert_eq!(v, Value::named("42"));
    }

    #[test]
    fn term_classification() {
        assert!(Term::var("x").is_var());
        assert!(!Term::constant("a").is_var());
        assert_eq!(Term::var("x").as_var(), Some(Symbol::intern("x")));
        assert_eq!(Term::constant("a").as_const(), Some(Value::named("a")));
        assert_eq!(Term::var("x").as_const(), None);
        assert_eq!(Term::constant("a").as_var(), None);
    }

    #[test]
    fn atom_display() {
        let a = Atom::new("P", vec![Term::var("x"), Term::constant("a")]);
        assert_eq!(a.to_string(), "P(x, a)");
        assert_eq!(a.arity(), 2);
    }

    #[test]
    fn distinct_variables_check() {
        let ok = Atom::new("P", vec![Term::var("x"), Term::var("y")]);
        assert!(ok.has_distinct_variables());
        let repeated = Atom::new("P", vec![Term::var("x"), Term::var("x")]);
        assert!(!repeated.has_distinct_variables());
        let with_const = Atom::new("P", vec![Term::var("x"), Term::constant("a")]);
        assert!(!with_const.has_distinct_variables());
    }

    #[test]
    fn variables_iterator_keeps_order() {
        let a = Atom::new(
            "Q",
            vec![Term::var("z"), Term::constant("c"), Term::var("x")],
        );
        let vars: Vec<_> = a.variables().collect();
        assert_eq!(vars, vec![Symbol::intern("z"), Symbol::intern("x")]);
    }
}
