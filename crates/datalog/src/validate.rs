//! Validation of the paper's structural restrictions (section 2).
//!
//! The classification applies to programs with: a single, linear recursive
//! rule; function-free Horn clauses (guaranteed by the term language); no
//! equality; no constants in the recursive statement; no repeated variable
//! under the recursive predicate; range restriction; and at least one
//! non-recursive exit rule.

use crate::error::ValidationError;
use crate::rule::{LinearRecursion, Program};

/// Validates a program against the paper's restrictions and extracts the
/// [`LinearRecursion`] view on success.
pub fn validate(program: &Program) -> Result<LinearRecursion, ValidationError> {
    let recursive: Vec<_> = program.rules.iter().filter(|r| r.is_recursive()).collect();
    let rec = match recursive.as_slice() {
        [] => return Err(ValidationError::NoRecursiveRule),
        [r] => *r,
        many => return Err(ValidationError::MultipleRecursiveRules(many.len())),
    };
    let p = rec.head.predicate;
    let occurrences = rec.occurrences_of(p);
    if occurrences != 1 {
        return Err(ValidationError::NonLinear {
            predicate: p,
            occurrences,
        });
    }
    if !rec.is_constant_free() {
        return Err(ValidationError::ConstantInRecursiveRule);
    }
    if !rec.head.has_distinct_variables() {
        return Err(ValidationError::RepeatedVariableUnderRecursivePredicate {
            atom: rec.head.to_string(),
        });
    }
    let Some(body_occurrence) = rec.body_atoms_of(p).next() else {
        // Unreachable: occurrences == 1 was checked above.
        return Err(ValidationError::NoRecursiveRule);
    };
    if !body_occurrence.has_distinct_variables() {
        return Err(ValidationError::RepeatedVariableUnderRecursivePredicate {
            atom: body_occurrence.to_string(),
        });
    }
    if body_occurrence.arity() != rec.head.arity() {
        return Err(ValidationError::RecursiveArityMismatch {
            head: rec.head.arity(),
            body: body_occurrence.arity(),
        });
    }
    if let Some(v) = rec
        .head_variables()
        .into_iter()
        .find(|v| !rec.body_variables().contains(v))
    {
        return Err(ValidationError::NotRangeRestricted { variable: v });
    }
    // Every predicate must be used at one arity throughout the program.
    let mut arities: std::collections::BTreeMap<crate::symbol::Symbol, usize> =
        std::collections::BTreeMap::new();
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            match arities.insert(atom.predicate, atom.arity()) {
                Some(prev) if prev != atom.arity() => {
                    return Err(ValidationError::InconsistentArity {
                        predicate: atom.predicate,
                        first: prev,
                        second: atom.arity(),
                    });
                }
                _ => {}
            }
        }
    }
    // Exit rules: non-recursive rules for P. Rules for other predicates are
    // outside the single-recursion setting.
    let mut exits = Vec::new();
    for rule in &program.rules {
        if std::ptr::eq(rule, rec) {
            continue;
        }
        if rule.head.predicate != p || rule.is_recursive() {
            return Err(ValidationError::MalformedExitRule {
                rule: rule.to_string(),
            });
        }
        exits.push(rule.clone());
    }
    if exits.is_empty() {
        return Err(ValidationError::NoExitRule);
    }
    Ok(LinearRecursion {
        predicate: p,
        recursive_rule: rec.clone(),
        exit_rules: exits,
    })
}

/// Validates only the recursive rule's shape, tolerating a missing exit rule.
/// The paper frequently writes formulas without their exit rule ("we will use
/// `E` as a generic exit expression"); graph analyses need only the recursive
/// rule, so this entry point synthesizes a generic exit `P(...) :- E(...)`
/// when none is given.
pub fn validate_with_generic_exit(program: &Program) -> Result<LinearRecursion, ValidationError> {
    match validate(program) {
        Ok(lr) => Ok(lr),
        Err(ValidationError::NoExitRule) => {
            let mut with_exit = program.clone();
            let Some(rec) = with_exit.rules.iter().find(|r| r.is_recursive()).cloned() else {
                // Unreachable: NoExitRule implies validate saw a recursive rule.
                return Err(ValidationError::NoRecursiveRule);
            };
            with_exit.rules.push(generic_exit_rule(&rec));
            validate(&with_exit)
        }
        Err(e) => Err(e),
    }
}

/// Builds the generic exit rule `P(x1,...,xn) :- E(x1,...,xn).` for the head
/// of the given recursive rule. The exit predicate is named `E` unless that
/// name is already used by a body predicate, in which case `Exit`, `ExitRel`,
/// `Exit1`, `Exit2`, … are tried until a free name is found.
pub fn generic_exit_rule(recursive_rule: &crate::rule::Rule) -> crate::rule::Rule {
    use crate::symbol::Symbol;
    use crate::term::Atom;
    let taken: std::collections::BTreeSet<Symbol> =
        recursive_rule.body.iter().map(|a| a.predicate).collect();
    let fixed = ["E", "Exit", "ExitRel"].into_iter().map(Symbol::intern);
    let numbered = (1u32..).map(|n| Symbol::intern(&format!("Exit{n}")));
    let mut candidates = fixed.chain(numbered).filter(|s| !taken.contains(s));
    let e = match candidates.next() {
        Some(s) => s,
        // Unreachable: `taken` is finite, the candidate stream is not.
        None => unreachable!("exit-name candidates are inexhaustible"),
    };
    crate::rule::Rule::new(
        recursive_rule.head.clone(),
        vec![Atom::new(e, recursive_rule.head.terms.clone())],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<LinearRecursion, ValidationError> {
        validate(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_s1a_with_exit() {
        let lr = check("P(x,y) :- A(x,z), P(z,y).\nP(x,y) :- E(x,y).").unwrap();
        assert_eq!(lr.dimension(), 2);
        assert_eq!(lr.exit_rules.len(), 1);
    }

    #[test]
    fn rejects_no_recursion() {
        assert_eq!(
            check("P(x,y) :- E(x,y)."),
            Err(ValidationError::NoRecursiveRule)
        );
    }

    #[test]
    fn rejects_multiple_recursive_rules() {
        let e = check("P(x,y) :- A(x,z), P(z,y).\nP(x,y) :- B(x,z), P(z,y).\nP(x,y) :- E(x,y).");
        assert_eq!(e, Err(ValidationError::MultipleRecursiveRules(2)));
    }

    #[test]
    fn rejects_nonlinear() {
        let e = check("P(x,y) :- P(x,z), P(z,y).\nP(x,y) :- E(x,y).");
        assert!(matches!(e, Err(ValidationError::NonLinear { .. })));
    }

    #[test]
    fn rejects_constants_in_recursive_rule() {
        let e = check("P(x,y) :- A(x, '3'), P(x, y).\nP(x,y) :- E(x,y).");
        assert_eq!(e, Err(ValidationError::ConstantInRecursiveRule));
    }

    #[test]
    fn rejects_repeated_variable_under_recursive_predicate() {
        let e = check("P(x,y) :- A(x,y), P(y,y).\nP(x,y) :- E(x,y).");
        assert!(matches!(
            e,
            Err(ValidationError::RepeatedVariableUnderRecursivePredicate { .. })
        ));
        let e2 = check("P(x,x) :- A(x,z), P(z,x).\nP(x,y) :- E(x,y).");
        assert!(matches!(
            e2,
            Err(ValidationError::RepeatedVariableUnderRecursivePredicate { .. })
        ));
    }

    #[test]
    fn rejects_non_range_restricted() {
        let e = check("P(x,y) :- A(x,z), P(z,x).\nP(x,y) :- E(x,y).");
        assert!(matches!(e, Err(ValidationError::NotRangeRestricted { .. })));
    }

    #[test]
    fn rejects_recursive_arity_mismatch() {
        let e = check("P(x,y) :- A(x,z), P(z).\nP(x,y) :- E(x,y).");
        // Note P(z) with one argument: head arity 2, body occurrence 1.
        assert!(matches!(
            e,
            Err(ValidationError::RecursiveArityMismatch { head: 2, body: 1 })
        ));
    }

    #[test]
    fn rejects_foreign_idb_rule() {
        let e = check("P(x,y) :- A(x,z), P(z,y).\nQ(x) :- A(x,x).\nP(x,y) :- E(x,y).");
        assert!(matches!(e, Err(ValidationError::MalformedExitRule { .. })));
    }

    #[test]
    fn rejects_missing_exit() {
        let e = check("P(x,y) :- A(x,z), P(z,y).");
        assert_eq!(e, Err(ValidationError::NoExitRule));
    }

    #[test]
    fn generic_exit_is_synthesized() {
        let program = parse_program("P(x,y) :- A(x,z), P(z,y).").unwrap();
        let lr = validate_with_generic_exit(&program).unwrap();
        assert_eq!(lr.exit_rules.len(), 1);
        assert_eq!(lr.exit_rules[0].to_string(), "P(x, y) :- E(x, y).");
    }

    #[test]
    fn generic_exit_avoids_name_clash() {
        let program = parse_program("P(x,y) :- E(x,z), P(z,y).").unwrap();
        let lr = validate_with_generic_exit(&program).unwrap();
        assert_eq!(lr.exit_rules[0].body[0].predicate.as_str(), "Exit");
    }

    #[test]
    fn pure_permutational_rule_validates() {
        // s5: P(x,y,z) :- P(y,z,x). — no non-recursive predicate at all.
        let program = parse_program("P(x,y,z) :- P(y,z,x).").unwrap();
        let lr = validate_with_generic_exit(&program).unwrap();
        assert_eq!(lr.dimension(), 3);
        assert_eq!(lr.nonrecursive_body_atoms().count(), 0);
    }
}
