//! Rules, programs, and the *linear recursion* view the paper analyses.

use crate::symbol::Symbol;
use crate::term::{Atom, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A Horn rule `head :- body1, ..., bodyn.`  An empty body is a fact.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The consequent.
    pub head: Atom,
    /// The antecedent literals (all positive; the fragment is negation-free).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule { head, body }
    }

    /// All body atoms whose predicate equals `p`.
    pub fn body_atoms_of(&self, p: Symbol) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter(move |a| a.predicate == p)
    }

    /// Number of body occurrences of predicate `p`.
    pub fn occurrences_of(&self, p: Symbol) -> usize {
        self.body_atoms_of(p).count()
    }

    /// True if the rule is recursive, i.e. the head predicate occurs in the body.
    pub fn is_recursive(&self) -> bool {
        self.occurrences_of(self.head.predicate) > 0
    }

    /// True if the rule is *linear* recursive: exactly one body occurrence of
    /// the head predicate.
    pub fn is_linear_recursive(&self) -> bool {
        self.occurrences_of(self.head.predicate) == 1
    }

    /// The set of variables occurring anywhere in the rule, sorted by name.
    pub fn variables(&self) -> BTreeSet<Symbol> {
        let mut vars: BTreeSet<Symbol> = self.head.variables().collect();
        for atom in &self.body {
            vars.extend(atom.variables());
        }
        vars
    }

    /// Variables of the head.
    pub fn head_variables(&self) -> BTreeSet<Symbol> {
        self.head.variables().collect()
    }

    /// Variables occurring in the body.
    pub fn body_variables(&self) -> BTreeSet<Symbol> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }

    /// Range restriction: every head variable also occurs in the body.
    pub fn is_range_restricted(&self) -> bool {
        let body = self.body_variables();
        self.head_variables().iter().all(|v| body.contains(v))
    }

    /// True if no constant appears anywhere in the rule.
    pub fn is_constant_free(&self) -> bool {
        std::iter::once(&self.head)
            .chain(self.body.iter())
            .all(|a| a.terms.iter().all(Term::is_var))
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, atom) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{atom}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A Datalog program: an ordered list of rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program from rules.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// All predicates appearing as a rule head (the IDB predicates).
    pub fn idb_predicates(&self) -> BTreeSet<Symbol> {
        self.rules.iter().map(|r| r.head.predicate).collect()
    }

    /// All predicates appearing only in bodies (the EDB predicates).
    pub fn edb_predicates(&self) -> BTreeSet<Symbol> {
        let idb = self.idb_predicates();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().map(|a| a.predicate))
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// Rules whose head predicate is `p`.
    pub fn rules_for(&self, p: Symbol) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.head.predicate == p)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

/// The single-recursion setting of the paper: one linear recursive rule for a
/// predicate `P`, together with one or more non-recursive *exit* rules
/// `P :- E ...` for the same predicate.
///
/// The paper treats the exit rules generically (writing `E` for the exit
/// expression); this view keeps them explicit so plans can be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearRecursion {
    /// The recursive predicate `P`.
    pub predicate: Symbol,
    /// The linear recursive rule.
    pub recursive_rule: Rule,
    /// The exit rules (non-recursive rules for `P`).
    pub exit_rules: Vec<Rule>,
}

impl LinearRecursion {
    /// Extracts the linear-recursion view from a program, if the program has
    /// exactly one recursive rule and it is linear. Returns `None` otherwise
    /// (use [`crate::validate`] for diagnostics).
    pub fn from_program(program: &Program) -> Option<LinearRecursion> {
        let mut recursive: Vec<&Rule> = Vec::new();
        for rule in &program.rules {
            if rule.is_recursive() {
                recursive.push(rule);
            }
        }
        let [rec] = recursive.as_slice() else {
            return None;
        };
        if !rec.is_linear_recursive() {
            return None;
        }
        let p = rec.head.predicate;
        let exits: Vec<Rule> = program
            .rules
            .iter()
            .filter(|r| r.head.predicate == p && !r.is_recursive())
            .cloned()
            .collect();
        // Rules for other (non-recursive) predicates are outside the paper's
        // single-recursion setting; reject them so analyses stay honest.
        if program.rules.iter().any(|r| r.head.predicate != p) {
            return None;
        }
        Some(LinearRecursion {
            predicate: p,
            recursive_rule: (*rec).clone(),
            exit_rules: exits,
        })
    }

    /// The recursive body atom `P(y1, ..., yn)` of the recursive rule.
    pub fn recursive_body_atom(&self) -> &Atom {
        let Some(atom) = self.recursive_rule.body_atoms_of(self.predicate).next() else {
            // Unreachable: every constructor checks is_linear_recursive().
            panic!("linear recursion must contain a recursive body atom")
        };
        atom
    }

    /// The non-recursive body atoms of the recursive rule, in source order.
    pub fn nonrecursive_body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.recursive_rule
            .body
            .iter()
            .filter(move |a| a.predicate != self.predicate)
    }

    /// The *dimension* of the formula: the arity of the recursive predicate.
    pub fn dimension(&self) -> usize {
        self.recursive_rule.head.arity()
    }

    /// The whole program (recursive rule followed by exit rules).
    pub fn to_program(&self) -> Program {
        let mut rules = vec![self.recursive_rule.clone()];
        rules.extend(self.exit_rules.iter().cloned());
        Program::new(rules)
    }
}

impl fmt::Display for LinearRecursion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_program())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(|v| Term::var(v)).collect())
    }

    /// `P(x,y) :- A(x,z), P(z,y).` — the transitive-closure shape (s1a).
    fn s1a() -> Rule {
        Rule::new(
            atom("P", &["x", "y"]),
            vec![atom("A", &["x", "z"]), atom("P", &["z", "y"])],
        )
    }

    #[test]
    fn recursion_detection() {
        let r = s1a();
        assert!(r.is_recursive());
        assert!(r.is_linear_recursive());
        let exit = Rule::new(atom("P", &["x", "y"]), vec![atom("E", &["x", "y"])]);
        assert!(!exit.is_recursive());
    }

    #[test]
    fn nonlinear_rule_detected() {
        let r = Rule::new(
            atom("P", &["x", "y"]),
            vec![atom("P", &["x", "z"]), atom("P", &["z", "y"])],
        );
        assert!(r.is_recursive());
        assert!(!r.is_linear_recursive());
    }

    #[test]
    fn range_restriction() {
        assert!(s1a().is_range_restricted());
        let bad = Rule::new(atom("P", &["x", "w"]), vec![atom("A", &["x", "z"])]);
        assert!(!bad.is_range_restricted());
    }

    #[test]
    fn constant_freedom() {
        assert!(s1a().is_constant_free());
        let with_const = Rule::new(
            atom("P", &["x", "y"]),
            vec![Atom::new("A", vec![Term::var("x"), Term::constant("a")])],
        );
        assert!(!with_const.is_constant_free());
    }

    #[test]
    fn program_predicate_partition() {
        let p = Program::new(vec![
            s1a(),
            Rule::new(atom("P", &["x", "y"]), vec![atom("E", &["x", "y"])]),
        ]);
        let idb = p.idb_predicates();
        let edb = p.edb_predicates();
        assert!(idb.contains(&Symbol::intern("P")));
        assert!(edb.contains(&Symbol::intern("A")));
        assert!(edb.contains(&Symbol::intern("E")));
        assert!(!edb.contains(&Symbol::intern("P")));
    }

    #[test]
    fn linear_recursion_extraction() {
        let p = Program::new(vec![
            s1a(),
            Rule::new(atom("P", &["x", "y"]), vec![atom("E", &["x", "y"])]),
        ]);
        let lr = LinearRecursion::from_program(&p).expect("should extract");
        assert_eq!(lr.predicate, Symbol::intern("P"));
        assert_eq!(lr.dimension(), 2);
        assert_eq!(lr.exit_rules.len(), 1);
        assert_eq!(lr.recursive_body_atom(), &atom("P", &["z", "y"]));
        let nonrec: Vec<_> = lr.nonrecursive_body_atoms().collect();
        assert_eq!(nonrec.len(), 1);
        assert_eq!(nonrec[0].predicate, Symbol::intern("A"));
    }

    #[test]
    fn extraction_rejects_multiple_recursive_rules() {
        let p = Program::new(vec![s1a(), s1a()]);
        assert!(LinearRecursion::from_program(&p).is_none());
    }

    #[test]
    fn extraction_rejects_foreign_idb() {
        let p = Program::new(vec![
            s1a(),
            Rule::new(atom("Q", &["x"]), vec![atom("A", &["x", "x"])]),
        ]);
        assert!(LinearRecursion::from_program(&p).is_none());
    }

    #[test]
    fn rule_display_round_trip_shape() {
        assert_eq!(s1a().to_string(), "P(x, y) :- A(x, z), P(z, y).");
    }
}
