//! Tokenizer and recursive-descent parser for the surface syntax.
//!
//! Grammar (terminals in quotes):
//!
//! ```text
//! program  := clause*
//! clause   := rule | fact | query
//! rule     := atom ":-" atom ("," atom)* "."
//! fact     := atom "."
//! query    := "?-" atom "."
//! atom     := IDENT "(" term ("," term)* ")"
//! term     := IDENT            -- variable (any identifier)
//!           | NUMBER           -- constant
//!           | "'" chars "'"    -- named constant
//! ```
//!
//! Following the paper, identifiers in argument position are variables
//! regardless of case (`x`, `Z`, `y1` are all variables); constants are
//! numerals or quoted names (`'a'`). Comments run from `%` or `//` to the end
//! of the line.

use crate::error::ParseError;
use crate::rule::{Program, Rule};
use crate::term::{Atom, Term, Value};
use std::fmt;

/// A parsed clause: either a rule/fact or a goal query `?- P(...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// A rule (a fact is a rule with an empty body).
    Rule(Rule),
    /// A query goal.
    Query(Atom),
}

/// Result of parsing a full source text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseOutput {
    /// The rules and facts, in source order.
    pub program: Program,
    /// The queries, in source order.
    pub queries: Vec<Atom>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(String),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Implies,   // :-
    QueryMark, // ?-
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Number(s) => write!(f, "number `{s}`"),
            Tok::Quoted(s) => write!(f, "constant `'{s}'`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Implies => write!(f, "`:-`"),
            Tok::QueryMark => write!(f, "`?-`"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn tokens(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Implies
                    } else {
                        return Err(self.err("expected `-` after `:`"));
                    }
                }
                b'?' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::QueryMark
                    } else {
                        return Err(self.err("expected `-` after `?`"));
                    }
                }
                b'\'' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'\'') => break,
                            Some(c) => s.push(c as char),
                            None => return Err(self.err("unterminated quoted constant")),
                        }
                    }
                    Tok::Quoted(s)
                }
                c if c.is_ascii_digit() => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Number(s)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(s)
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1));
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.err_at(format!("expected {want}, found {t}"))),
            None => Err(self.err_at(format!("expected {want}, found end of input"))),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(Term::var(&name)),
            Some(Tok::Number(n)) => Ok(Term::Const(Value::named(&n))),
            Some(Tok::Quoted(s)) => Ok(Term::Const(Value::named(&s))),
            Some(t) => Err(self.err_at(format!("expected a term, found {t}"))),
            None => Err(self.err_at("expected a term, found end of input")),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(name)) => name,
            Some(t) => return Err(self.err_at(format!("expected a predicate name, found {t}"))),
            None => return Err(self.err_at("expected a predicate name, found end of input")),
        };
        self.expect(&Tok::LParen)?;
        let mut terms = vec![self.term()?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            terms.push(self.term()?);
        }
        self.expect(&Tok::RParen)?;
        Ok(Atom::new(name.as_str(), terms))
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        if self.peek() == Some(&Tok::QueryMark) {
            self.bump();
            let goal = self.atom()?;
            self.expect(&Tok::Dot)?;
            return Ok(Clause::Query(goal));
        }
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::Implies) {
            self.bump();
            body.push(self.atom()?);
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                body.push(self.atom()?);
            }
        }
        self.expect(&Tok::Dot)?;
        Ok(Clause::Rule(Rule::new(head, body)))
    }
}

/// Parses a full source text into rules/facts and queries.
pub fn parse(src: &str) -> Result<ParseOutput, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut parser = Parser { toks, pos: 0 };
    let mut out = ParseOutput::default();
    while parser.peek().is_some() {
        match parser.clause()? {
            Clause::Rule(r) => out.program.rules.push(r),
            Clause::Query(q) => out.queries.push(q),
        }
    }
    Ok(out)
}

/// Parses a program (rules and facts only); queries are rejected.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let out = parse(src)?;
    if !out.queries.is_empty() {
        return Err(ParseError {
            line: 1,
            column: 1,
            message: "unexpected query in program source".into(),
        });
    }
    Ok(out.program)
}

/// Parses a single rule, e.g. `P(x,y) :- A(x,z), P(z,y).`
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let program = parse_program(src)?;
    match <[Rule; 1]>::try_from(program.rules) {
        Ok([r]) => Ok(r),
        Err(rules) => Err(ParseError {
            line: 1,
            column: 1,
            message: format!("expected exactly one rule, found {}", rules.len()),
        }),
    }
}

/// Parses a single atom, e.g. `P(x, 'a', 3)`.
pub fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut parser = Parser { toks, pos: 0 };
    let atom = parser.atom()?;
    if parser.peek().is_some() {
        return Err(parser.err_at("trailing input after atom"));
    }
    Ok(atom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    #[test]
    fn parses_s1a() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        assert_eq!(r.head.predicate, Symbol::intern("P"));
        assert_eq!(r.body.len(), 2);
        assert!(r.is_linear_recursive());
        assert_eq!(r.to_string(), "P(x, y) :- A(x, z), P(z, y).");
    }

    #[test]
    fn parses_facts_and_constants() {
        let p = parse_program("A(1, 2).\nA(2, 3).\nB('a', x).").unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].head.terms[0], Term::Const(Value::named("1")));
        assert_eq!(p.rules[2].head.terms[0], Term::Const(Value::named("a")));
        assert_eq!(p.rules[2].head.terms[1], Term::var("x"));
    }

    #[test]
    fn parses_queries() {
        let out = parse("P(x,y) :- E(x,y).\n?- P('a', z).").unwrap();
        assert_eq!(out.program.rules.len(), 1);
        assert_eq!(out.queries.len(), 1);
        assert_eq!(out.queries[0].predicate, Symbol::intern("P"));
        assert_eq!(out.queries[0].terms[0], Term::constant("a"));
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("% header comment\nA(1,2). // trailing\n% tail").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn uppercase_identifiers_are_variables_in_argument_position() {
        let r = parse_rule("P(X, y) :- A(X, y).").unwrap();
        assert!(r.head.terms[0].is_var());
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_program("A(1,\n   ?).").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("term") || e.message.contains('-'));
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(parse_program("A(1,2)").is_err());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let e = parse_program("A('oops, 2).").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn parse_rule_rejects_multiple() {
        assert!(parse_rule("A(1,2). B(2,3).").is_err());
    }

    #[test]
    fn parse_atom_works() {
        let a = parse_atom("P(x, 'b', 3)").unwrap();
        assert_eq!(a.arity(), 3);
        assert!(parse_atom("P(x) extra").is_err());
    }

    #[test]
    fn zero_arity_is_rejected() {
        // The grammar requires at least one argument; propositional atoms are
        // outside the paper's fragment.
        assert!(parse_program("P().").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).";
        let r = parse_rule(src).unwrap();
        let r2 = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, r2);
    }
}
