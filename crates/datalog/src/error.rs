//! Error types for the Datalog substrate.

use crate::symbol::Symbol;
use std::fmt;

/// Any error produced by the Datalog substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A syntax error from the parser.
    Parse(ParseError),
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// The offending predicate.
        predicate: Symbol,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A relation was not present in the database.
    UnknownRelation(Symbol),
    /// A variable was used where no binding for it exists (e.g. a head
    /// variable missing from the body during evaluation).
    UnboundVariable(Symbol),
    /// A tuple's width did not match the relation's arity.
    TupleArity {
        /// The relation.
        relation: Symbol,
        /// The relation's arity.
        expected: usize,
        /// The tuple's width.
        found: usize,
    },
    /// The program violates one of the paper's structural restrictions.
    Validation(ValidationError),
    /// An evaluation strategy exceeded its resource budget (e.g. the
    /// counting strategy's level cap on data with astronomically long
    /// frontier periods). Callers should fall back to a general strategy.
    LimitExceeded {
        /// Which limit was hit.
        what: &'static str,
        /// The budget that was exceeded.
        limit: usize,
    },
}

/// A syntax error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

/// Violations of the paper's restrictions on recursive statements
/// (section 2: function-free, single linear recursion, no constants,
/// distinct variables under the recursive predicate, range restriction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// No recursive rule was found.
    NoRecursiveRule,
    /// More than one recursive rule (the paper assumes single recursion).
    MultipleRecursiveRules(usize),
    /// The recursive rule mentions the recursive predicate more than once in
    /// its body (non-linear recursion).
    NonLinear {
        /// The recursive predicate.
        predicate: Symbol,
        /// Number of body occurrences.
        occurrences: usize,
    },
    /// A constant appears in the recursive statement.
    ConstantInRecursiveRule,
    /// A variable appears more than once (or a constant appears) under the
    /// recursive predicate.
    RepeatedVariableUnderRecursivePredicate {
        /// The offending atom, printed.
        atom: String,
    },
    /// A head variable does not occur in the body.
    NotRangeRestricted {
        /// The offending variable.
        variable: Symbol,
    },
    /// Head and body occurrences of the recursive predicate disagree in arity.
    RecursiveArityMismatch {
        /// Head arity.
        head: usize,
        /// Body-occurrence arity.
        body: usize,
    },
    /// An exit rule is recursive or otherwise malformed.
    MalformedExitRule {
        /// The offending rule, printed.
        rule: String,
    },
    /// No exit rule is present; the recursion can never produce tuples.
    NoExitRule,
    /// A predicate is used at two different arities within the program.
    InconsistentArity {
        /// The offending predicate.
        predicate: Symbol,
        /// The arity seen first.
        first: usize,
        /// The conflicting arity.
        second: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoRecursiveRule => write!(f, "no recursive rule in program"),
            ValidationError::MultipleRecursiveRules(n) => {
                write!(f, "expected a single recursive rule, found {n}")
            }
            ValidationError::NonLinear {
                predicate,
                occurrences,
            } => write!(
                f,
                "recursion on {predicate} is not linear ({occurrences} body occurrences)"
            ),
            ValidationError::ConstantInRecursiveRule => {
                write!(f, "constants are not allowed in the recursive statement")
            }
            ValidationError::RepeatedVariableUnderRecursivePredicate { atom } => write!(
                f,
                "arguments of the recursive predicate must be distinct variables: {atom}"
            ),
            ValidationError::NotRangeRestricted { variable } => write!(
                f,
                "head variable {variable} does not occur in the body (not range restricted)"
            ),
            ValidationError::RecursiveArityMismatch { head, body } => write!(
                f,
                "recursive predicate arity mismatch: head {head}, body occurrence {body}"
            ),
            ValidationError::MalformedExitRule { rule } => {
                write!(f, "malformed exit rule: {rule}")
            }
            ValidationError::NoExitRule => write!(f, "no exit rule for the recursive predicate"),
            ValidationError::InconsistentArity {
                predicate,
                first,
                second,
            } => write!(
                f,
                "predicate {predicate} used at arities {first} and {second}"
            ),
        }
    }
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse(e) => write!(f, "parse error: {e}"),
            DatalogError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate {predicate} used with arity {found}, previously {expected}"
            ),
            DatalogError::UnknownRelation(p) => write!(f, "unknown relation {p}"),
            DatalogError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            DatalogError::TupleArity {
                relation,
                expected,
                found,
            } => write!(
                f,
                "tuple of width {found} inserted into {relation} of arity {expected}"
            ),
            DatalogError::Validation(v) => write!(f, "invalid program: {v}"),
            DatalogError::LimitExceeded { what, limit } => {
                write!(f, "evaluation limit exceeded: {what} (budget {limit})")
            }
        }
    }
}

impl std::error::Error for DatalogError {}
impl std::error::Error for ParseError {}

impl From<ParseError> for DatalogError {
    fn from(e: ParseError) -> Self {
        DatalogError::Parse(e)
    }
}

impl From<ValidationError> for DatalogError {
    fn from(e: ValidationError) -> Self {
        DatalogError::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatalogError::TupleArity {
            relation: Symbol::intern("A"),
            expected: 2,
            found: 3,
        };
        let s = e.to_string();
        assert!(s.contains('A') && s.contains('2') && s.contains('3'));
    }

    #[test]
    fn parse_error_position() {
        let e = ParseError {
            line: 3,
            column: 7,
            message: "unexpected token".into(),
        };
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }

    #[test]
    fn conversions() {
        let v = ValidationError::NoExitRule;
        let d: DatalogError = v.clone().into();
        assert_eq!(d, DatalogError::Validation(v));
    }
}
