//! `recurs-datalog` — the Datalog substrate for the `recurs` project.
//!
//! This crate implements everything the classification layer (crate
//! `recurs-core`) needs from a deductive database engine:
//!
//! * the function-free Horn-clause language — [`term::Atom`], [`rule::Rule`],
//!   [`rule::Program`] — with a parser ([`parser`]) and pretty-printer;
//! * validation of the paper's structural restrictions ([`validate`]) and the
//!   [`rule::LinearRecursion`] view (one linear recursive rule + exit rules);
//! * tuple storage ([`relation::Relation`], [`database::Database`]) and a
//!   positional relational algebra ([`algebra`]);
//! * naive and semi-naive bottom-up fixpoint evaluation ([`eval`]), the
//!   ground truth that compiled query plans are checked against;
//! * unification and rule unfolding ([`subst`], [`unfold`]) — the paper's
//!   k-th *expansion* of a recursive formula;
//! * query forms and determined-variable propagation ([`adornment`]) — the
//!   paper's `P(d, v, v)` patterns.
//!
//! # Quick example
//!
//! ```
//! use recurs_datalog::parser::parse_program;
//! use recurs_datalog::database::Database;
//! use recurs_datalog::relation::Relation;
//! use recurs_datalog::eval::semi_naive;
//!
//! let program = parse_program(
//!     "P(x, y) :- E(x, y).\n\
//!      P(x, y) :- A(x, z), P(z, y).",
//! ).unwrap();
//! let mut db = Database::new();
//! db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
//! db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
//! semi_naive(&mut db, &program, None).unwrap();
//! assert_eq!(db.get("P").unwrap().len(), 3); // (1,2) (2,3) (1,3)
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Library paths must surface failures as `Err`, never panic on input; unit
// tests (compiled only under cfg(test)) are exempt. CI runs clippy with
// `-D warnings`, making this a hard gate.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod adornment;
pub mod algebra;
pub mod database;
pub mod error;
pub mod eval;
pub mod fingerprint;
pub mod govern;
pub mod order;
pub mod parser;
pub mod relation;
pub mod rule;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod unfold;
pub mod validate;

pub use adornment::{ArgBinding, QueryForm};
pub use database::Database;
pub use error::{DatalogError, ParseError, ValidationError};
pub use fingerprint::Fingerprint;
pub use govern::{CancelToken, EvalBudget, Governor, Outcome, Progress, TruncationReason};
pub use relation::{Relation, Tuple};
pub use rule::{LinearRecursion, Program, Rule};
pub use symbol::Symbol;
pub use term::{Atom, Term, Value};
