//! In-memory relations: sets of fixed-arity tuples with hash indexes.

use crate::term::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A tuple of constants.
pub type Tuple = Box<[Value]>;

/// Builds a tuple from values.
pub fn tuple(values: impl IntoIterator<Item = Value>) -> Tuple {
    values.into_iter().collect()
}

/// Builds a tuple of numeric constants — the workhorse of synthetic workloads.
pub fn tuple_u64(values: impl IntoIterator<Item = u64>) -> Tuple {
    values.into_iter().map(Value::from_u64).collect()
}

/// A set of tuples of a fixed arity.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: HashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: HashSet::new(),
        }
    }

    /// Creates a relation from tuples. Panics if widths disagree.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Builds a binary relation from `(from, to)` pairs of numeric constants.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> Relation {
        Relation::from_tuples(2, pairs.into_iter().map(|(a, b)| tuple_u64([a, b])))
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns true if it was new. Panics on width mismatch
    /// (a relation's arity is an invariant, not a runtime condition).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.len(),
            self.arity,
            "tuple width {} does not match relation arity {}",
            t.len(),
            self.arity
        );
        self.tuples.insert(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        self.tuples.contains(t)
    }

    /// Removes a tuple; returns true if it was present.
    pub fn remove(&mut self, t: &[Value]) -> bool {
        self.tuples.remove(t)
    }

    /// Iterates over tuples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Tuples in sorted order — deterministic for tests and reports.
    pub fn iter_sorted(&self) -> Vec<&Tuple> {
        let mut v: Vec<&Tuple> = self.tuples.iter().collect();
        v.sort();
        v
    }

    /// Inserts every tuple of `other`; returns the number of new tuples.
    pub fn union_in_place(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "union of mismatched arities");
        let before = self.len();
        for t in other.iter() {
            self.tuples.insert(t.clone());
        }
        self.len() - before
    }

    /// The tuples of `self` not present in `other` (set difference).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "difference of mismatched arities");
        Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// Builds a hash index on the given key columns: key values → tuples.
    pub fn index_on(&self, cols: &[usize]) -> HashMap<Vec<Value>, Vec<&Tuple>> {
        let mut idx: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in &self.tuples {
            let key: Vec<Value> = cols.iter().map(|&c| t[c]).collect();
            idx.entry(key).or_default().push(t);
        }
        idx
    }

    /// The set of values in a column (its *active domain* projection).
    pub fn column_values(&self, col: usize) -> HashSet<Value> {
        self.tuples.iter().map(|t| t[col]).collect()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {} tuples)", self.arity, self.len())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for t in self.iter_sorted() {
            write!(f, "  (")?;
            for (i, v) in t.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ")")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples into a relation, inferring arity from the first tuple.
    /// An empty iterator yields an empty nullary relation.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, |t| t.len());
        Relation::from_tuples(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple_u64([1, 2])));
        assert!(!r.insert(tuple_u64([1, 2])));
        assert!(r.insert(tuple_u64([2, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Value::from_u64(1), Value::from_u64(2)]));
    }

    #[test]
    #[should_panic(expected = "does not match relation arity")]
    fn width_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(tuple_u64([1]));
    }

    #[test]
    fn union_counts_new_tuples() {
        let mut a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(2, 3), (3, 4)]);
        let added = a.union_in_place(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn difference_is_set_minus() {
        let a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(2, 3)]);
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[Value::from_u64(1), Value::from_u64(2)]));
    }

    #[test]
    fn index_groups_by_key() {
        let r = Relation::from_pairs([(1, 2), (1, 3), (2, 3)]);
        let idx = r.index_on(&[0]);
        assert_eq!(idx[&vec![Value::from_u64(1)]].len(), 2);
        assert_eq!(idx[&vec![Value::from_u64(2)]].len(), 1);
    }

    #[test]
    fn sorted_iteration_is_deterministic() {
        let r = Relation::from_pairs([(3, 1), (1, 2), (2, 3)]);
        let sorted = r.iter_sorted();
        let firsts: Vec<&str> = sorted.iter().map(|t| t[0].as_str()).collect();
        assert_eq!(firsts, vec!["1", "2", "3"]);
    }

    #[test]
    fn column_values_projects() {
        let r = Relation::from_pairs([(1, 2), (1, 3)]);
        assert_eq!(r.column_values(0).len(), 1);
        assert_eq!(r.column_values(1).len(), 2);
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = [tuple_u64([1, 2, 3])].into_iter().collect();
        assert_eq!(r.arity(), 3);
        let empty: Relation = std::iter::empty().collect();
        assert_eq!(empty.arity(), 0);
        assert!(empty.is_empty());
    }
}
