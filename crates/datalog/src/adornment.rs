//! Query forms (the paper's `d`/`v` patterns) and determined-variable
//! propagation.
//!
//! A query such as `P(a, b, Z)` fixes constants in some argument positions.
//! The paper writes the resulting *query form* as `P(d, v, v)`-style patterns:
//! `d` for a determined position, `v` for a non-determined one. A variable of
//! the (expanded) formula is **determined** when its value is derivable from a
//! query constant by selections and joins over non-recursive predicates only —
//! i.e. by closure over the undirected edges of the (resolution) graph.

use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::{Atom, Term};
use std::collections::BTreeSet;
use std::fmt;

/// One argument position of a query form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArgBinding {
    /// `d` — the value is given by the query or derivable from it.
    Determined,
    /// `v` — unknown.
    Free,
}

/// A query form: one [`ArgBinding`] per argument of the recursive predicate.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryForm(pub Vec<ArgBinding>);

impl QueryForm {
    /// Parses a pattern such as `"dvv"`.
    ///
    /// # Panics
    /// Panics on characters other than `d`/`b`/`v`/`f` (patterns are
    /// programmer input here; use [`QueryForm::try_parse`] for user data).
    pub fn parse(pattern: &str) -> QueryForm {
        match QueryForm::try_parse(pattern) {
            Ok(form) => form,
            Err(e) => panic!("{e}"),
        }
    }

    /// Parses a pattern such as `"dvv"`, rejecting any character other than
    /// `d`/`b` (determined) and `v`/`f` (free).
    pub fn try_parse(pattern: &str) -> Result<QueryForm, String> {
        pattern
            .chars()
            .map(|c| match c {
                'd' | 'b' => Ok(ArgBinding::Determined),
                'v' | 'f' => Ok(ArgBinding::Free),
                other => Err(format!(
                    "invalid query-form character `{other}` (expected d/b/v/f)"
                )),
            })
            .collect::<Result<_, _>>()
            .map(QueryForm)
    }

    /// Derives the query form of a query atom: constant positions are
    /// determined, variable positions free. Repeated variables are treated
    /// as free (the paper does not consider sideways bindings inside the
    /// query atom itself).
    pub fn of_atom(query: &Atom) -> QueryForm {
        QueryForm(
            query
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(_) => ArgBinding::Determined,
                    Term::Var(_) => ArgBinding::Free,
                })
                .collect(),
        )
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Positions (0-based) that are determined.
    pub fn determined_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == ArgBinding::Determined)
            .map(|(i, _)| i)
    }

    /// True if every position is determined.
    pub fn all_determined(&self) -> bool {
        self.0.iter().all(|b| *b == ArgBinding::Determined)
    }

    /// True if no position is determined.
    pub fn all_free(&self) -> bool {
        self.0.iter().all(|b| *b == ArgBinding::Free)
    }

    /// The fully-free form of a given arity.
    pub fn free(arity: usize) -> QueryForm {
        QueryForm(vec![ArgBinding::Free; arity])
    }
}

impl fmt::Debug for QueryForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(
                f,
                "{}",
                match b {
                    ArgBinding::Determined => 'd',
                    ArgBinding::Free => 'v',
                }
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for QueryForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Closes a set of determined variables over the non-recursive atoms of a
/// rule body: if any variable of a non-recursive atom is determined, all of
/// that atom's variables become determined (selections and joins over the
/// non-recursive predicate propagate values both ways). Runs to fixpoint.
pub fn determined_closure(
    rule: &Rule,
    recursive_predicate: Symbol,
    seed: &BTreeSet<Symbol>,
) -> BTreeSet<Symbol> {
    let mut determined = seed.clone();
    loop {
        let mut changed = false;
        for atom in &rule.body {
            if atom.predicate == recursive_predicate {
                continue;
            }
            let vars: Vec<Symbol> = atom.variables().collect();
            if vars.iter().any(|v| determined.contains(v)) {
                for v in vars {
                    changed |= determined.insert(v);
                }
            }
        }
        if !changed {
            return determined;
        }
    }
}

/// Propagates a query form through one application of the recursive rule:
/// determined head positions seed the closure; the result is the determined
/// pattern of the recursive body atom — the query form faced by the next
/// expansion.
///
/// ```
/// use recurs_datalog::adornment::{propagate, QueryForm};
/// use recurs_datalog::parser::parse_rule;
///
/// // The paper's Example 14 (s12): P(d,v,v) → P(d,d,v).
/// let rule = parse_rule(
///     "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).",
/// ).unwrap();
/// assert_eq!(
///     propagate(&rule, &QueryForm::parse("dvv")),
///     QueryForm::parse("ddv"),
/// );
/// ```
pub fn propagate(rule: &Rule, form: &QueryForm) -> QueryForm {
    let p = rule.head.predicate;
    assert_eq!(
        form.arity(),
        rule.head.arity(),
        "query form arity must match the recursive predicate"
    );
    let seed: BTreeSet<Symbol> = form
        .determined_positions()
        .filter_map(|i| rule.head.terms[i].as_var())
        .collect();
    let closure = determined_closure(rule, p, &seed);
    let Some(rec_atom) = rule.body_atoms_of(p).next() else {
        panic!("propagate requires a linear recursive rule, got {rule}")
    };
    QueryForm(
        rec_atom
            .terms
            .iter()
            .map(|t| match t.as_var() {
                Some(v) if closure.contains(&v) => ArgBinding::Determined,
                _ => ArgBinding::Free,
            })
            .collect(),
    )
}

/// The sequence of query forms met at expansions 0, 1, 2, … (index 0 is the
/// incoming form), cut off at `max_steps` or at the first repetition.
/// Returns the trace and, if a repetition occurred, the index the last form
/// repeats (the start of the cycle).
pub fn propagation_trace(
    rule: &Rule,
    form: &QueryForm,
    max_steps: usize,
) -> (Vec<QueryForm>, Option<usize>) {
    let mut trace = vec![form.clone()];
    let mut last = form.clone();
    for _ in 0..max_steps {
        let next = propagate(rule, &last);
        if let Some(idx) = trace.iter().position(|f| *f == next) {
            trace.push(next);
            return (trace, Some(idx));
        }
        last = next.clone();
        trace.push(next);
    }
    (trace, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_atom, parse_rule};

    #[test]
    fn parse_and_display() {
        let f = QueryForm::parse("dvv");
        assert_eq!(f.to_string(), "dvv");
        assert_eq!(f.arity(), 3);
        assert_eq!(f.determined_positions().collect::<Vec<_>>(), vec![0]);
        assert_eq!(QueryForm::parse("bff"), f); // magic-sets notation accepted
    }

    #[test]
    fn of_atom_reads_constants() {
        let q = parse_atom("P('a', 'b', z)").unwrap();
        assert_eq!(QueryForm::of_atom(&q), QueryForm::parse("ddv"));
    }

    #[test]
    fn closure_spreads_over_nonrecursive_atoms() {
        // s12: P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).
        let r = parse_rule("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).").unwrap();
        let seed: BTreeSet<Symbol> = [Symbol::intern("x")].into();
        let closure = determined_closure(&r, Symbol::intern("P"), &seed);
        // x →A→ u →C→ v →B→ y; w and z are out of reach.
        for v in ["x", "u", "v", "y"] {
            assert!(
                closure.contains(&Symbol::intern(v)),
                "{v} should be determined"
            );
        }
        for v in ["w", "z"] {
            assert!(!closure.contains(&Symbol::intern(v)), "{v} should be free");
        }
    }

    #[test]
    fn s12_propagation_matches_paper() {
        // Paper, Example 14: P(d,v,v) → P(d,d,v) → P(d,d,v) → …
        let r = parse_rule("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).").unwrap();
        let f0 = QueryForm::parse("dvv");
        let f1 = propagate(&r, &f0);
        assert_eq!(f1, QueryForm::parse("ddv"));
        let f2 = propagate(&r, &f1);
        assert_eq!(f2, QueryForm::parse("ddv"));
        let (trace, cycle_start) = propagation_trace(&r, &f0, 10);
        assert_eq!(trace[0], QueryForm::parse("dvv"));
        assert_eq!(trace[1], QueryForm::parse("ddv"));
        assert_eq!(cycle_start, Some(1));
    }

    #[test]
    fn s12_vvd_is_stable_from_the_start() {
        // Paper: "for a query P(v,v,d), the formula is stable from the
        // beginning" — the determined pattern repeats immediately.
        let r = parse_rule("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).").unwrap();
        let f = propagate(&r, &QueryForm::parse("vvd"));
        // z is determined; closure z →D→ w; recursive atom P(u,v,w) → vvd.
        assert_eq!(f, QueryForm::parse("vvd"));
    }

    #[test]
    fn stable_formula_preserves_position() {
        // s3: P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z). Three disjoint
        // unit cycles — any form maps to itself.
        let r = parse_rule("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).").unwrap();
        for pattern in ["dvv", "vdv", "vvd", "ddv", "dvd", "vdd", "ddd", "vvv"] {
            let f = QueryForm::parse(pattern);
            assert_eq!(propagate(&r, &f), f, "pattern {pattern} should be stable");
        }
    }

    #[test]
    fn unstable_formula_shifts_position() {
        // Thm 1's counterexample: P(x,y) :- A(x,z), P(y,z).
        // Query dv: x determined → z determined via A; P(y,z) gets pattern vd.
        let r = parse_rule("P(x,y) :- A(x,z), P(y,z).").unwrap();
        assert_eq!(
            propagate(&r, &QueryForm::parse("dv")),
            QueryForm::parse("vd")
        );
    }

    #[test]
    fn trace_detects_longer_cycles() {
        // s4a: weight-3 rotational cycle; a single-d form rotates with period 3.
        let r = parse_rule("P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).").unwrap();
        let (trace, cycle_start) = propagation_trace(&r, &QueryForm::parse("dvv"), 10);
        assert_eq!(cycle_start, Some(0), "rotation returns to the initial form");
        // dvv → (x1 det → y3 det via A) P(y1,y2,y3)=vvd → y2? Let's just check
        // period 3: trace[3] == trace[0].
        assert_eq!(trace[3], trace[0]);
        assert_ne!(trace[1], trace[0]);
        assert_ne!(trace[2], trace[0]);
    }

    #[test]
    fn all_free_stays_free_without_constants() {
        let r = parse_rule("P(x,y) :- A(x,z), P(z,y).").unwrap();
        assert!(propagate(&r, &QueryForm::free(2)).all_free());
    }

    #[test]
    fn all_determined_helpers() {
        assert!(QueryForm::parse("ddd").all_determined());
        assert!(!QueryForm::parse("ddv").all_determined());
        assert!(QueryForm::free(2).all_free());
    }
}
