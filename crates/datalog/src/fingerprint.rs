//! Stable fingerprints for programs and database snapshots.
//!
//! A [`Fingerprint`] is a 64-bit FNV-1a hash over a *canonical rendering*
//! of the value — never over interner ids or in-memory addresses — so it is
//! stable across runs, processes, and symbol-interning order. Two programs
//! that pretty-print identically fingerprint identically; a database
//! fingerprints the same no matter what order its tuples were inserted in.
//!
//! Fingerprints key the serving layer's saturation cache (`recurs-serve`)
//! and let `--check` report *which* program/database version was verified.
//! They are not cryptographic: collisions are astronomically unlikely for
//! cache keys but an adversary could construct one.

use crate::database::Database;
use crate::rule::Program;
use crate::term::Atom;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable 64-bit content hash; displays as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a over a byte string, seeded from `state` so hashes compose.
fn fnv(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Fingerprints an arbitrary string.
pub fn of_str(s: &str) -> Fingerprint {
    Fingerprint(fnv(FNV_OFFSET, s.as_bytes()))
}

/// Fingerprints a program over the canonical rendering of its rules, in
/// rule order (rule order is part of program identity).
pub fn of_program(program: &Program) -> Fingerprint {
    let mut state = FNV_OFFSET;
    for rule in &program.rules {
        state = fnv(state, rule.to_string().as_bytes());
        state = fnv(state, b"\n");
    }
    Fingerprint(state)
}

/// Fingerprints an atom (e.g. a query) over its canonical rendering.
pub fn of_atom(atom: &Atom) -> Fingerprint {
    of_str(&atom.to_string())
}

/// Fingerprints a database snapshot: relations in name order; within a
/// relation, per-tuple hashes are combined commutatively so the (unordered)
/// set-iteration order cannot leak into the fingerprint.
pub fn of_database(db: &Database) -> Fingerprint {
    let mut state = FNV_OFFSET;
    for (name, relation) in db.iter() {
        state = fnv(state, name.as_str().as_bytes());
        state = fnv(state, &[0u8]);
        state = fnv(state, &(relation.arity() as u64).to_le_bytes());
        // Commutative tuple combine: sum of independent per-tuple hashes.
        let mut tuple_sum: u64 = 0;
        for t in relation.iter() {
            let mut h = FNV_OFFSET;
            for v in t.iter() {
                h = fnv(h, v.as_str().as_bytes());
                h = fnv(h, &[0u8]);
            }
            tuple_sum = tuple_sum.wrapping_add(h);
        }
        state = fnv(state, &tuple_sum.to_le_bytes());
        state = fnv(state, &(relation.len() as u64).to_le_bytes());
    }
    Fingerprint(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::relation::{tuple_u64, Relation};

    fn program(src: &str) -> Program {
        parse_program(src).expect("test program parses")
    }

    #[test]
    fn identical_programs_fingerprint_identically() {
        let a = program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        let b = program("P(x,y):-A(x,z),P(z,y).  P(x,y) :- E(x,y).");
        assert_eq!(of_program(&a), of_program(&b));
    }

    #[test]
    fn different_programs_fingerprint_differently() {
        let a = program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        let b = program("P(x, y) :- P(z, y), A(x, z).\nP(x, y) :- E(x, y).");
        assert_ne!(of_program(&a), of_program(&b));
    }

    #[test]
    fn rule_order_is_part_of_identity() {
        let a = program("P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).");
        let b = program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        assert_ne!(of_program(&a), of_program(&b));
    }

    #[test]
    fn database_fingerprint_is_insertion_order_independent() {
        let mut forward = Database::new();
        let mut reverse = Database::new();
        forward.insert_relation("A", Relation::new(2));
        reverse.insert_relation("A", Relation::new(2));
        for i in 0..100u64 {
            forward
                .insert("A", tuple_u64([i, i + 1]))
                .expect("arity matches");
        }
        for i in (0..100u64).rev() {
            reverse
                .insert("A", tuple_u64([i, i + 1]))
                .expect("arity matches");
        }
        assert_eq!(of_database(&forward), of_database(&reverse));
    }

    #[test]
    fn database_fingerprint_sees_content_changes() {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        let before = of_database(&db);
        db.insert("A", tuple_u64([3, 4])).expect("arity matches");
        assert_ne!(before, of_database(&db));
    }

    #[test]
    fn relation_name_distinguishes_databases() {
        let mut a = Database::new();
        a.insert_relation("A", Relation::from_pairs([(1, 2)]));
        let mut b = Database::new();
        b.insert_relation("B", Relation::from_pairs([(1, 2)]));
        assert_ne!(of_database(&a), of_database(&b));
    }

    #[test]
    fn empty_relation_vs_absent_relation_differ() {
        let mut with_empty = Database::new();
        with_empty.insert_relation("A", Relation::new(2));
        let empty = Database::new();
        assert_ne!(of_database(&with_empty), of_database(&empty));
    }

    #[test]
    fn display_renders_sixteen_hex_digits() {
        let fp = of_str("x");
        assert_eq!(fp.to_string().len(), 16);
        assert!(fp.to_string().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn atom_fingerprint_distinguishes_constants() {
        use crate::term::Term;
        let a = Atom::new("P", vec![Term::constant("1"), Term::var("x")]);
        let b = Atom::new("P", vec![Term::constant("2"), Term::var("x")]);
        assert_ne!(of_atom(&a), of_atom(&b));
    }
}
