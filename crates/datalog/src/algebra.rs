//! Positional relational algebra over [`Relation`].
//!
//! The paper's compiled formulas are built from selection (σ), join (⋈),
//! Cartesian product (×), union (∪), projection, and existence checking (∃).
//! These operators are provided here over positional (unnamed) columns; the
//! planner layer keeps track of which variable each column carries.
//!
//! Joins concatenate the full left and right tuples; callers project away the
//! duplicated key columns when they want natural-join output. This keeps every
//! operator compositional and side-condition-free.

use crate::relation::{Relation, Tuple};
use crate::term::Value;

/// σ — keeps tuples whose column `col` equals `value`.
pub fn select_eq(rel: &Relation, col: usize, value: Value) -> Relation {
    assert!(col < rel.arity(), "selection column out of range");
    Relation::from_tuples(rel.arity(), rel.iter().filter(|t| t[col] == value).cloned())
}

/// σ with several `column = value` conditions (all must hold).
pub fn select_eq_many(rel: &Relation, conditions: &[(usize, Value)]) -> Relation {
    for &(col, _) in conditions {
        assert!(col < rel.arity(), "selection column out of range");
    }
    Relation::from_tuples(
        rel.arity(),
        rel.iter()
            .filter(|t| conditions.iter().all(|&(c, v)| t[c] == v))
            .cloned(),
    )
}

/// σ — keeps tuples where two columns are equal (used for repeated variables).
pub fn select_col_eq(rel: &Relation, a: usize, b: usize) -> Relation {
    assert!(a < rel.arity() && b < rel.arity(), "column out of range");
    Relation::from_tuples(rel.arity(), rel.iter().filter(|t| t[a] == t[b]).cloned())
}

/// π — projects onto the given columns (in the given order, repeats allowed).
pub fn project(rel: &Relation, cols: &[usize]) -> Relation {
    for &c in cols {
        assert!(c < rel.arity(), "projection column out of range");
    }
    Relation::from_tuples(
        cols.len(),
        rel.iter()
            .map(|t| cols.iter().map(|&c| t[c]).collect::<Tuple>()),
    )
}

/// ⋈ — hash equi-join on `pairs` of (left column, right column). The output
/// tuple is the left tuple concatenated with the right tuple.
pub fn join(left: &Relation, right: &Relation, pairs: &[(usize, usize)]) -> Relation {
    for &(l, r) in pairs {
        assert!(l < left.arity(), "left join column out of range");
        assert!(r < right.arity(), "right join column out of range");
    }
    // Build the index on the smaller side.
    if pairs.is_empty() {
        return product(left, right);
    }
    let out_arity = left.arity() + right.arity();
    let mut out = Relation::new(out_arity);
    let build_right = right.len() <= left.len();
    if build_right {
        let rcols: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
        let lcols: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let idx = right.index_on(&rcols);
        for lt in left.iter() {
            let key: Vec<Value> = lcols.iter().map(|&c| lt[c]).collect();
            if let Some(matches) = idx.get(&key) {
                for rt in matches {
                    out.insert(lt.iter().chain(rt.iter()).copied().collect());
                }
            }
        }
    } else {
        let rcols: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
        let lcols: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let idx = left.index_on(&lcols);
        for rt in right.iter() {
            let key: Vec<Value> = rcols.iter().map(|&c| rt[c]).collect();
            if let Some(matches) = idx.get(&key) {
                for lt in matches {
                    out.insert(lt.iter().chain(rt.iter()).copied().collect());
                }
            }
        }
    }
    out
}

/// ⋉ — semi-join: the left tuples that have at least one join partner.
pub fn semijoin(left: &Relation, right: &Relation, pairs: &[(usize, usize)]) -> Relation {
    for &(l, r) in pairs {
        assert!(l < left.arity(), "left semijoin column out of range");
        assert!(r < right.arity(), "right semijoin column out of range");
    }
    let rcols: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
    let lcols: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
    let idx = right.index_on(&rcols);
    Relation::from_tuples(
        left.arity(),
        left.iter()
            .filter(|lt| {
                let key: Vec<Value> = lcols.iter().map(|&c| lt[c]).collect();
                idx.contains_key(&key)
            })
            .cloned(),
    )
}

/// × — Cartesian product; output is left tuple concatenated with right tuple.
pub fn product(left: &Relation, right: &Relation) -> Relation {
    let mut out = Relation::new(left.arity() + right.arity());
    for lt in left.iter() {
        for rt in right.iter() {
            out.insert(lt.iter().chain(rt.iter()).copied().collect());
        }
    }
    out
}

/// ∪ — set union.
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.arity(), b.arity(), "union of mismatched arities");
    let mut out = a.clone();
    out.union_in_place(b);
    out
}

/// ∃ — existence check: true iff the relation is non-empty. The paper uses
/// this when a query only needs to know whether a derivation exists.
pub fn exists(rel: &Relation) -> bool {
    !rel.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::tuple_u64;

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn select_filters() {
        let r = Relation::from_pairs([(1, 2), (1, 3), (2, 3)]);
        let s = select_eq(&r, 0, v(1));
        assert_eq!(s.len(), 2);
        let s2 = select_eq_many(&r, &[(0, v(1)), (1, v(3))]);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn select_col_eq_filters_diagonal() {
        let r = Relation::from_pairs([(1, 1), (1, 2), (3, 3)]);
        let s = select_col_eq(&r, 0, 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn project_reorders_and_dedups() {
        let r = Relation::from_pairs([(1, 2), (1, 3)]);
        let p = project(&r, &[0]);
        assert_eq!(p.len(), 1);
        let swapped = project(&r, &[1, 0]);
        assert!(swapped.contains(&[v(2), v(1)]));
        let dup = project(&r, &[0, 0]);
        assert_eq!(dup.arity(), 2);
        assert!(dup.contains(&[v(1), v(1)]));
    }

    #[test]
    fn join_matches_keys() {
        let a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(2, 10), (3, 20), (9, 99)]);
        // A.1 = B.0
        let j = join(&a, &b, &[(1, 0)]);
        assert_eq!(j.arity(), 4);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[v(1), v(2), v(2), v(10)]));
        assert!(j.contains(&[v(2), v(3), v(3), v(20)]));
    }

    #[test]
    fn join_with_multiple_keys() {
        let a = Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([1, 2, 4])]);
        let b = Relation::from_tuples(2, [tuple_u64([1, 2]), tuple_u64([1, 3])]);
        let j = join(&a, &b, &[(0, 0), (1, 1)]);
        assert_eq!(j.len(), 2); // both A tuples match B(1,2)
        for t in j.iter() {
            assert_eq!(t[0], t[3]);
            assert_eq!(t[1], t[4]);
        }
    }

    #[test]
    fn join_empty_pairs_is_product() {
        let a = Relation::from_pairs([(1, 2)]);
        let b = Relation::from_pairs([(3, 4), (5, 6)]);
        let j = join(&a, &b, &[]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.arity(), 4);
    }

    #[test]
    fn join_is_symmetric_in_result() {
        // Regardless of which side builds the hash index, output equals.
        let small = Relation::from_pairs([(1, 2)]);
        let big = Relation::from_pairs([(2, 3), (2, 4), (5, 6)]);
        let j1 = join(&small, &big, &[(1, 0)]);
        let j2 = join(&big, &small, &[(0, 1)]);
        assert_eq!(j1.len(), j2.len());
        assert_eq!(j1.len(), 2);
    }

    #[test]
    fn semijoin_filters_left() {
        let a = Relation::from_pairs([(1, 2), (2, 3), (4, 5)]);
        let b = Relation::from_pairs([(2, 0), (5, 0)]);
        let s = semijoin(&a, &b, &[(1, 0)]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&[v(1), v(2)]));
        assert!(s.contains(&[v(4), v(5)]));
    }

    #[test]
    fn product_sizes_multiply() {
        let a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(7, 8)]);
        let p = product(&a, &b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.arity(), 4);
    }

    #[test]
    fn union_dedups() {
        let a = Relation::from_pairs([(1, 2)]);
        let b = Relation::from_pairs([(1, 2), (2, 3)]);
        assert_eq!(union(&a, &b).len(), 2);
    }

    #[test]
    fn exists_checks_emptiness() {
        assert!(!exists(&Relation::new(2)));
        assert!(exists(&Relation::from_pairs([(1, 1)])));
    }
}
