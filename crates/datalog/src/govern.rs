//! Resource governance for fixpoint evaluation: budgets, cooperative
//! cancellation, and typed truncation outcomes.
//!
//! The paper predicts evaluation cost from rule shape (rank bounds for the
//! bounded classes, stability for the one-directional ones), but class-C and
//! general class-D formulas can still blow up combinatorially on real data.
//! This module is the contract every evaluator in the workspace honors:
//!
//! * an [`EvalBudget`] declares the caller's ceilings — wall-clock deadline,
//!   derived-tuple ceiling, per-iteration delta ceiling, approximate memory
//!   ceiling, iteration cap — plus an optional [`CancelToken`];
//! * [`EvalBudget::start`] produces a [`Governor`], the runtime companion
//!   that evaluators poll cooperatively (cheaply inside kernels via
//!   [`Governor::poll`], fully once per iteration via [`Governor::check`]);
//! * a governed run that stops early reports a typed
//!   [`Outcome::Truncated`]\([`TruncationReason`]\) instead of silently
//!   capping, and its output is always a *sound under-approximation* of the
//!   fixpoint: evaluators only ever stop deriving, never derive junk.
//!
//! `Truncated` is a conservative claim: it means the run stopped before the
//! fixpoint was *proven* reached. In boundary cases (e.g. the iteration cap
//! fires when the pending delta would have derived nothing new) a truncated
//! run's output can already equal the fixpoint; deciding that exactly would
//! cost the very iteration the budget forbids.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, clonable cancellation flag polled cooperatively by evaluation
/// loops and kernel inner loops. Cancelling is sticky and thread-safe; the
/// CLI wires Ctrl-C to one of these.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Safe to call from any thread (and from a
    /// signal handler: this is a single atomic store).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a governed run stopped before a proven fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The caller's iteration cap was reached with work still pending.
    IterationCap,
    /// The wall-clock deadline passed.
    Deadline,
    /// The derived-tuple ceiling was reached.
    TupleCeiling,
    /// A single iteration's incoming delta exceeded the per-iteration
    /// ceiling.
    DeltaCeiling,
    /// The approximate memory ceiling was exceeded.
    MemoryCeiling,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TruncationReason::IterationCap => "iteration cap",
            TruncationReason::Deadline => "deadline",
            TruncationReason::TupleCeiling => "tuple ceiling",
            TruncationReason::DeltaCeiling => "delta ceiling",
            TruncationReason::MemoryCeiling => "memory ceiling",
            TruncationReason::Cancelled => "cancelled",
        })
    }
}

impl serde::Serialize for TruncationReason {
    fn to_value(&self) -> serde::Value {
        serde::Value::string(self.to_string())
    }
}

/// How a governed run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The fixpoint was reached (or a proven rank bound made further work
    /// provably unproductive). The output is the complete consequence set.
    Complete,
    /// The run stopped early for the given reason. The output is a sound
    /// under-approximation of the fixpoint (a subset, possibly proper).
    Truncated(TruncationReason),
}

impl Outcome {
    /// True for [`Outcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete)
    }

    /// The truncation reason, if the run was truncated.
    pub fn truncation(&self) -> Option<TruncationReason> {
        match self {
            Outcome::Complete => None,
            Outcome::Truncated(r) => Some(*r),
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Complete => f.write_str("complete"),
            Outcome::Truncated(r) => write!(f, "truncated ({r})"),
        }
    }
}

impl serde::Serialize for Outcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("complete", serde::Value::Bool(self.is_complete())),
            ("truncation", self.truncation().to_value()),
        ])
    }
}

/// Resource ceilings for one evaluation run. `None` everywhere (the
/// default) runs unbounded to fixpoint.
#[derive(Debug, Clone, Default)]
pub struct EvalBudget {
    /// Wall-clock budget, measured from [`EvalBudget::start`].
    pub timeout: Option<Duration>,
    /// Ceiling on total tuples derived into IDB relations.
    pub max_tuples: Option<usize>,
    /// Ceiling on a single iteration's incoming delta size.
    pub max_delta: Option<usize>,
    /// Iteration cap, counting the seeding round: a cap of `k` executes the
    /// seeding round plus at most `k - 1` recursive rounds. (All evaluators
    /// in the workspace share this definition; see `eval::semi_naive` and
    /// `recurs-engine`.)
    pub max_iterations: Option<usize>,
    /// Approximate memory ceiling, in bytes, over the evaluator's working
    /// set estimate (tuple storage plus indexes).
    pub max_memory_bytes: Option<usize>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
}

impl EvalBudget {
    /// The unbounded budget (identical to `EvalBudget::default()`).
    pub fn unlimited() -> EvalBudget {
        EvalBudget::default()
    }

    /// Budget with only an iteration cap — the legacy `max_iterations`
    /// argument of the fixpoint evaluators.
    pub fn iteration_cap(cap: Option<usize>) -> EvalBudget {
        EvalBudget {
            max_iterations: cap,
            ..EvalBudget::default()
        }
    }

    /// Builder: wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> EvalBudget {
        self.timeout = Some(timeout);
        self
    }

    /// Builder: derived-tuple ceiling.
    pub fn with_max_tuples(mut self, n: usize) -> EvalBudget {
        self.max_tuples = Some(n);
        self
    }

    /// Builder: per-iteration delta ceiling.
    pub fn with_max_delta(mut self, n: usize) -> EvalBudget {
        self.max_delta = Some(n);
        self
    }

    /// Builder: iteration cap (counting the seeding round).
    pub fn with_max_iterations(mut self, n: usize) -> EvalBudget {
        self.max_iterations = Some(n);
        self
    }

    /// Builder: approximate memory ceiling in bytes.
    pub fn with_max_memory_bytes(mut self, n: usize) -> EvalBudget {
        self.max_memory_bytes = Some(n);
        self
    }

    /// Builder: cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> EvalBudget {
        self.cancel = Some(token);
        self
    }

    /// True if no ceiling is set (a run under this budget can only end
    /// [`Outcome::Complete`] or error).
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_tuples.is_none()
            && self.max_delta.is_none()
            && self.max_iterations.is_none()
            && self.max_memory_bytes.is_none()
            && self.cancel.is_none()
    }

    /// Starts the budget clock, producing the [`Governor`] the evaluation
    /// loop polls.
    pub fn start(&self) -> Governor {
        Governor {
            deadline: self.timeout.map(|t| Instant::now() + t),
            max_tuples: self.max_tuples,
            max_delta: self.max_delta,
            max_iterations: self.max_iterations,
            max_memory_bytes: self.max_memory_bytes,
            cancel: self.cancel.clone(),
        }
    }
}

/// A point-in-time progress report for [`Governor::check`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Progress {
    /// Iterations executed so far (counting the seeding round).
    pub iterations: usize,
    /// Total tuples derived so far.
    pub tuples: usize,
    /// Size of the next iteration's incoming delta.
    pub delta: usize,
    /// Approximate working-set bytes.
    pub memory_bytes: usize,
}

/// The runtime companion of an [`EvalBudget`]: carries the armed deadline
/// and ceilings, and answers "should this run stop, and why".
///
/// `Governor` is `Sync`; parallel workers poll one shared instance.
#[derive(Debug)]
pub struct Governor {
    deadline: Option<Instant>,
    max_tuples: Option<usize>,
    max_delta: Option<usize>,
    max_iterations: Option<usize>,
    max_memory_bytes: Option<usize>,
    cancel: Option<CancelToken>,
}

impl Governor {
    /// Cheap poll for the asynchronous trip conditions — cancellation and
    /// the wall-clock deadline. Suitable for kernel inner loops (call every
    /// few hundred rows, not every row).
    pub fn poll(&self) -> Option<TruncationReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(TruncationReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(TruncationReason::Deadline);
            }
        }
        None
    }

    /// Full per-iteration check: the asynchronous conditions of
    /// [`poll`](Governor::poll) plus every progress-based ceiling. Called at
    /// the top of each fixpoint iteration, before the iteration's work.
    pub fn check(&self, progress: Progress) -> Option<TruncationReason> {
        if let Some(reason) = self.poll() {
            return Some(reason);
        }
        if let Some(cap) = self.max_iterations {
            if progress.iterations >= cap {
                return Some(TruncationReason::IterationCap);
            }
        }
        if let Some(ceiling) = self.max_tuples {
            if progress.tuples >= ceiling {
                return Some(TruncationReason::TupleCeiling);
            }
        }
        if let Some(ceiling) = self.max_delta {
            if progress.delta > ceiling {
                return Some(TruncationReason::DeltaCeiling);
            }
        }
        if let Some(ceiling) = self.max_memory_bytes {
            if progress.memory_bytes >= ceiling {
                return Some(TruncationReason::MemoryCeiling);
            }
        }
        None
    }

    /// Remaining room under each armed ceiling given current progress
    /// (`None` for ceilings that aren't set). Observability events attach
    /// this so a trace shows not just what a run did but how close it came
    /// to each budget wall.
    pub fn headroom(&self, progress: &Progress) -> BudgetHeadroom {
        BudgetHeadroom {
            time_left: self
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now())),
            tuples_left: self.max_tuples.map(|c| c.saturating_sub(progress.tuples)),
            iterations_left: self
                .max_iterations
                .map(|c| c.saturating_sub(progress.iterations)),
            memory_left: self
                .max_memory_bytes
                .map(|c| c.saturating_sub(progress.memory_bytes)),
        }
    }
}

/// Remaining room under each armed [`EvalBudget`] ceiling, from
/// [`Governor::headroom`]. Purely informational — governance decisions go
/// through [`Governor::check`]/[`Governor::poll`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetHeadroom {
    /// Time left before the deadline (zero once passed).
    pub time_left: Option<Duration>,
    /// Tuples left under the derived-tuple ceiling.
    pub tuples_left: Option<usize>,
    /// Iterations left under the iteration cap.
    pub iterations_left: Option<usize>,
    /// Bytes left under the approximate memory ceiling.
    pub memory_left: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let gov = EvalBudget::unlimited().start();
        assert_eq!(gov.poll(), None);
        assert_eq!(
            gov.check(Progress {
                iterations: 1_000_000,
                tuples: usize::MAX,
                delta: usize::MAX,
                memory_bytes: usize::MAX,
            }),
            None
        );
        assert!(EvalBudget::unlimited().is_unlimited());
    }

    #[test]
    fn cancel_token_trips_poll_and_check() {
        let token = CancelToken::new();
        let gov = EvalBudget::unlimited().with_cancel(token.clone()).start();
        assert_eq!(gov.poll(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(gov.poll(), Some(TruncationReason::Cancelled));
        assert_eq!(
            gov.check(Progress::default()),
            Some(TruncationReason::Cancelled)
        );
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let gov = EvalBudget::unlimited().with_timeout(Duration::ZERO).start();
        assert_eq!(gov.poll(), Some(TruncationReason::Deadline));
    }

    #[test]
    fn ceilings_trip_in_documented_order() {
        let gov = EvalBudget::unlimited()
            .with_max_iterations(3)
            .with_max_tuples(100)
            .with_max_delta(10)
            .with_max_memory_bytes(1 << 20)
            .start();
        // Nothing exceeded.
        assert_eq!(
            gov.check(Progress {
                iterations: 2,
                tuples: 50,
                delta: 10,
                memory_bytes: 100,
            }),
            None
        );
        // Iteration cap wins over later ceilings.
        assert_eq!(
            gov.check(Progress {
                iterations: 3,
                tuples: 100,
                delta: 11,
                memory_bytes: 1 << 21,
            }),
            Some(TruncationReason::IterationCap)
        );
        assert_eq!(
            gov.check(Progress {
                iterations: 0,
                tuples: 100,
                delta: 0,
                memory_bytes: 0,
            }),
            Some(TruncationReason::TupleCeiling)
        );
        assert_eq!(
            gov.check(Progress {
                iterations: 0,
                tuples: 0,
                delta: 11,
                memory_bytes: 0,
            }),
            Some(TruncationReason::DeltaCeiling)
        );
        assert_eq!(
            gov.check(Progress {
                iterations: 0,
                tuples: 0,
                delta: 0,
                memory_bytes: 1 << 20,
            }),
            Some(TruncationReason::MemoryCeiling)
        );
    }

    #[test]
    fn outcome_helpers_and_display() {
        assert!(Outcome::Complete.is_complete());
        assert_eq!(Outcome::Complete.truncation(), None);
        let t = Outcome::Truncated(TruncationReason::Deadline);
        assert!(!t.is_complete());
        assert_eq!(t.truncation(), Some(TruncationReason::Deadline));
        assert_eq!(t.to_string(), "truncated (deadline)");
        assert_eq!(
            Outcome::Truncated(TruncationReason::TupleCeiling).to_string(),
            "truncated (tuple ceiling)"
        );
    }

    #[test]
    fn iteration_cap_budget_matches_legacy_argument() {
        let b = EvalBudget::iteration_cap(Some(4));
        assert_eq!(b.max_iterations, Some(4));
        assert!(b.timeout.is_none() && b.cancel.is_none());
        assert!(EvalBudget::iteration_cap(None).is_unlimited());
    }
}
