//! Substitutions, unification, and renaming-apart.
//!
//! Unfolding a linear recursive rule (the paper's k-th *expansion*) is a
//! resolution step: the renamed head of the rule is unified with the recursive
//! body atom of the previous expansion. Because the fragment is function-free
//! and the recursive predicate's arguments are distinct variables, unification
//! here never needs an occurs check, but the implementation below is a full
//! syntactic unifier so it also serves queries with constants.

use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::{Atom, Term};
use std::collections::BTreeMap;

/// A simultaneous substitution from variables to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<Symbol, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Builds a substitution from explicit bindings.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Symbol, Term)>) -> Subst {
        Subst {
            map: bindings.into_iter().collect(),
        }
    }

    /// Looks a variable up.
    pub fn get(&self, v: Symbol) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Binds `v` to `t`, following existing bindings of `t` is the caller's
    /// concern (the unifier resolves chains itself).
    pub fn bind(&mut self, v: Symbol, t: Term) {
        self.map.insert(v, t);
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resolves a term through the substitution until a fixpoint (chases
    /// variable-to-variable bindings).
    pub fn resolve(&self, t: Term) -> Term {
        let mut current = t;
        let mut steps = 0;
        while let Term::Var(v) = current {
            match self.map.get(&v) {
                Some(&next) if next != current => {
                    current = next;
                    steps += 1;
                    // A substitution produced by the unifier is acyclic, but
                    // guard against pathological hand-built ones.
                    if steps > self.map.len() {
                        return current;
                    }
                }
                _ => break,
            }
        }
        current
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom.terms.iter().map(|&t| self.resolve(t)).collect(),
        }
    }

    /// Applies the substitution to a rule.
    pub fn apply_rule(&self, rule: &Rule) -> Rule {
        Rule {
            head: self.apply_atom(&rule.head),
            body: rule.body.iter().map(|a| self.apply_atom(a)).collect(),
        }
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Term)> {
        self.map.iter().map(|(&v, t)| (v, t))
    }
}

/// Unifies two atoms, returning the most general unifier if one exists.
pub fn unify_atoms(a: &Atom, b: &Atom) -> Option<Subst> {
    if a.predicate != b.predicate || a.arity() != b.arity() {
        return None;
    }
    let mut subst = Subst::new();
    for (&ta, &tb) in a.terms.iter().zip(&b.terms) {
        unify_terms(ta, tb, &mut subst)?;
    }
    Some(subst)
}

fn unify_terms(a: Term, b: Term, subst: &mut Subst) -> Option<()> {
    let ra = subst.resolve(a);
    let rb = subst.resolve(b);
    match (ra, rb) {
        (Term::Var(va), Term::Var(vb)) if va == vb => Some(()),
        (Term::Var(va), t) => {
            subst.bind(va, t);
            Some(())
        }
        (t, Term::Var(vb)) => {
            subst.bind(vb, t);
            Some(())
        }
        (Term::Const(ca), Term::Const(cb)) if ca == cb => Some(()),
        _ => None,
    }
}

/// Renames every variable of `rule` to a fresh one (suffix `_k` with `k`
/// drawn from `counter`), returning the renamed rule and the renaming used.
/// This is the paper's "renumbering variables" step before unification.
pub fn rename_apart(rule: &Rule, counter: &mut u32) -> (Rule, Subst) {
    let mut renaming = Subst::new();
    for v in rule.variables() {
        let fresh = Symbol::fresh(v.as_str(), counter);
        renaming.bind(v, Term::Var(fresh));
    }
    (renaming.apply_rule(rule), renaming)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_atom, parse_rule};

    #[test]
    fn unify_identical_atoms() {
        let a = parse_atom("P(x, y)").unwrap();
        let s = unify_atoms(&a, &a).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn unify_binds_variables() {
        let a = parse_atom("P(x, y)").unwrap();
        let b = parse_atom("P('c', z)").unwrap();
        let s = unify_atoms(&a, &b).unwrap();
        assert_eq!(s.resolve(Term::var("x")), Term::constant("c"));
        // y and z unify to the same representative.
        assert_eq!(s.resolve(Term::var("y")), s.resolve(Term::var("z")));
    }

    #[test]
    fn unify_fails_on_predicate_mismatch() {
        let a = parse_atom("P(x)").unwrap();
        let b = parse_atom("Q(x)").unwrap();
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn unify_fails_on_arity_mismatch() {
        let a = parse_atom("P(x)").unwrap();
        let b = parse_atom("P(x, y)").unwrap();
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn unify_fails_on_constant_clash() {
        let a = parse_atom("P('a')").unwrap();
        let b = parse_atom("P('b')").unwrap();
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn unify_chains_through_shared_variables() {
        // P(x, x) with P('a', y) must bind both x and y to 'a'.
        let a = parse_atom("P(x, x)").unwrap();
        let b = parse_atom("P('a', y)").unwrap();
        let s = unify_atoms(&a, &b).unwrap();
        assert_eq!(s.resolve(Term::var("x")), Term::constant("a"));
        assert_eq!(s.resolve(Term::var("y")), Term::constant("a"));
    }

    #[test]
    fn unify_detects_deep_clash() {
        // P(x, x) against P('a', 'b') must fail.
        let a = parse_atom("P(x, x)").unwrap();
        let b = parse_atom("P('a', 'b')").unwrap();
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn apply_rule_substitutes_everywhere() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let s = Subst::from_bindings([(Symbol::intern("x"), Term::constant("a"))]);
        let r2 = s.apply_rule(&r);
        assert_eq!(r2.to_string(), "P(a, y) :- A(a, z), P(z, y).");
    }

    #[test]
    fn rename_apart_produces_disjoint_variables() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let mut counter = 0;
        let (renamed, _) = rename_apart(&r, &mut counter);
        let original_vars = r.variables();
        for v in renamed.variables() {
            assert!(!original_vars.contains(&v), "{v} leaked through renaming");
        }
        // Structure is preserved.
        assert_eq!(renamed.body.len(), 2);
        assert!(renamed.is_linear_recursive());
    }

    #[test]
    fn rename_apart_twice_is_disjoint() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let mut counter = 0;
        let (r1, _) = rename_apart(&r, &mut counter);
        let (r2, _) = rename_apart(&r, &mut counter);
        let v1 = r1.variables();
        for v in r2.variables() {
            assert!(!v1.contains(&v));
        }
    }

    #[test]
    fn resolve_handles_var_chains() {
        let mut s = Subst::new();
        s.bind(Symbol::intern("x"), Term::var("y"));
        s.bind(Symbol::intern("y"), Term::constant("k"));
        assert_eq!(s.resolve(Term::var("x")), Term::constant("k"));
    }
}
