//! Join ordering — the paper's evaluation principle that "join operations
//! will be performed only after selection operations".
//!
//! A conjunctive body evaluated in source order can hit needless Cartesian
//! products (an atom sharing no variable with what has been joined so far).
//! [`order_atoms`] produces a greedy selection-first order:
//!
//! 1. atoms carrying constants come as early as possible (selections first);
//! 2. each next atom must share a variable with the already-bound set when
//!    any such atom exists (joins over products);
//! 3. ties break toward the smaller relation (cheap inputs first), then
//!    source order (determinism).
//!
//! The order is a permutation of body positions, so callers that key
//! per-position overrides (semi-naive deltas) can remap them.

use crate::database::Database;
use crate::symbol::Symbol;
use crate::term::{Atom, Term};
use std::collections::BTreeSet;

/// Returns a permutation of `0..body.len()`: the order in which to join the
/// body's atoms. If `pinned_first` is given, that position is forced to the
/// front (semi-naive evaluation starts from the delta atom).
pub fn order_atoms(body: &[Atom], db: &Database, pinned_first: Option<usize>) -> Vec<usize> {
    let n = body.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound: BTreeSet<Symbol> = BTreeSet::new();

    let size_of = |i: usize| -> usize { db.get(body[i].predicate).map_or(usize::MAX, |r| r.len()) };
    let constants_in = |i: usize| -> usize {
        body[i]
            .terms
            .iter()
            .filter(|t| matches!(t, Term::Const(_)))
            .count()
    };
    let shared_with = |i: usize, bound: &BTreeSet<Symbol>| -> usize {
        body[i].variables().filter(|v| bound.contains(v)).count()
    };

    // Removes `remaining[pos]`, appending it to the order and binding its
    // variables.
    let take = |pos: usize,
                order: &mut Vec<usize>,
                remaining: &mut Vec<usize>,
                bound: &mut BTreeSet<Symbol>| {
        let i = remaining.remove(pos);
        order.push(i);
        bound.extend(body[i].variables());
    };

    if let Some(p) = pinned_first {
        if let Some(pos) = remaining.iter().position(|&x| x == p) {
            take(pos, &mut order, &mut remaining, &mut bound);
        }
    }

    while !remaining.is_empty() {
        // Prefer: connected to the bound set (or constant-bearing when
        // nothing is bound yet), most selective first.
        let best_pos = (0..remaining.len())
            .max_by(|&a, &b| {
                let key = |pos: usize| {
                    let i = remaining[pos];
                    (
                        shared_with(i, &bound) > 0 || constants_in(i) > 0,
                        shared_with(i, &bound),
                        constants_in(i),
                        std::cmp::Reverse(size_of(i)),
                        std::cmp::Reverse(i), // stable: earlier source first
                    )
                };
                key(a).cmp(&key(b))
            })
            .unwrap_or(0); // unreachable: the loop guard ensures non-empty
        take(best_pos, &mut order, &mut remaining, &mut bound);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use crate::relation::Relation;

    fn db_with(sizes: &[(&str, usize)]) -> Database {
        let mut db = Database::new();
        for &(name, n) in sizes {
            db.insert_relation(
                name,
                Relation::from_pairs((0..n as u64).map(|i| (i, i + 1))),
            );
        }
        db
    }

    #[test]
    fn constants_come_first() {
        let r = parse_rule("Q(y) :- A(x, y), B('7', x).").unwrap();
        let db = db_with(&[("A", 100), ("B", 100)]);
        let order = order_atoms(&r.body, &db, None);
        assert_eq!(order[0], 1, "the σ-bearing atom B('7', x) leads");
    }

    #[test]
    fn connectivity_beats_source_order() {
        // Source order A(x,y), C(u,v), B(y,u): evaluating C second forces a
        // product; the optimizer defers it until B connects u.
        let r = parse_rule("Q(x, v) :- A(x, y), C(u, v), B(y, u).").unwrap();
        let db = db_with(&[("A", 10), ("B", 10), ("C", 10)]);
        let order = order_atoms(&r.body, &db, None);
        let pos_c = order.iter().position(|&i| i == 1).unwrap();
        let pos_b = order.iter().position(|&i| i == 2).unwrap();
        assert!(pos_b < pos_c, "B must join before C: {order:?}");
    }

    #[test]
    fn smaller_relations_break_ties() {
        let r = parse_rule("Q(x) :- A(x, y), B(x, z).").unwrap();
        let db = db_with(&[("A", 1000), ("B", 3)]);
        let order = order_atoms(&r.body, &db, None);
        assert_eq!(order[0], 1, "the tiny B leads");
    }

    #[test]
    fn pinned_delta_atom_leads() {
        let r = parse_rule("Q(x) :- A(x, y), B(y, z), C(z, w).").unwrap();
        let db = db_with(&[("A", 10), ("B", 10), ("C", 10)]);
        let order = order_atoms(&r.body, &db, Some(2));
        assert_eq!(order[0], 2);
        // And the rest chains back through connectivity: C(z,w) → B(y,z) → A.
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn order_is_always_a_permutation() {
        for src in [
            "Q(x) :- A(x, y).",
            "Q(x) :- A(x, y), B(y, z), C(z, x), D(q, r).",
            "Q(x) :- A(x, x), B(x, y), C('1', y).",
        ] {
            let r = parse_rule(src).unwrap();
            let db = db_with(&[("A", 5), ("B", 5), ("C", 5), ("D", 5)]);
            let mut order = order_atoms(&r.body, &db, None);
            order.sort_unstable();
            assert_eq!(order, (0..r.body.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn missing_relations_are_tolerated() {
        // Ordering must not fail just because a relation is absent (the
        // evaluator will report the error); absent relations sort last.
        let r = parse_rule("Q(x) :- Zzz(x, y), A(y, z).").unwrap();
        let db = db_with(&[("A", 5)]);
        let order = order_atoms(&r.body, &db, None);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], 1, "the present relation leads");
    }
}
