//! A named store of relations (the extensional database, plus derived IDB
//! relations during evaluation).

use crate::error::DatalogError;
use crate::relation::{Relation, Tuple};
use crate::rule::Program;
use crate::symbol::Symbol;
use crate::term::{Term, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A database: predicate symbol → relation.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<Symbol, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Registers an empty relation of the given arity (idempotent if the
    /// arity matches).
    pub fn declare(&mut self, name: impl Into<Symbol>, arity: usize) -> Result<(), DatalogError> {
        let name = name.into();
        match self.relations.get(&name) {
            Some(existing) if existing.arity() != arity => Err(DatalogError::ArityMismatch {
                predicate: name,
                expected: existing.arity(),
                found: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.relations.insert(name, Relation::new(arity));
                Ok(())
            }
        }
    }

    /// Inserts a whole relation under `name`, replacing any existing one.
    pub fn insert_relation(&mut self, name: impl Into<Symbol>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Adds one tuple to `name`, declaring the relation on first use.
    pub fn insert(&mut self, name: impl Into<Symbol>, t: Tuple) -> Result<bool, DatalogError> {
        let name = name.into();
        let rel = self
            .relations
            .entry(name)
            .or_insert_with(|| Relation::new(t.len()));
        if rel.arity() != t.len() {
            return Err(DatalogError::TupleArity {
                relation: name,
                expected: rel.arity(),
                found: t.len(),
            });
        }
        Ok(rel.insert(t))
    }

    /// Removes one tuple from `name`; returns true if it was present. An
    /// unknown relation holds no tuples, so removing from it is `Ok(false)`;
    /// a width mismatch against a known relation is an error, as for
    /// [`Database::insert`].
    pub fn remove(&mut self, name: impl Into<Symbol>, t: &[Value]) -> Result<bool, DatalogError> {
        let name = name.into();
        let Some(rel) = self.relations.get_mut(&name) else {
            return Ok(false);
        };
        if rel.arity() != t.len() {
            return Err(DatalogError::TupleArity {
                relation: name,
                expected: rel.arity(),
                found: t.len(),
            });
        }
        Ok(rel.remove(t))
    }

    /// Looks up a relation.
    pub fn get(&self, name: impl Into<Symbol>) -> Option<&Relation> {
        self.relations.get(&name.into())
    }

    /// Looks up a relation mutably (e.g. to merge derived tuples in place —
    /// cloning accumulated relations per fixpoint iteration is quadratic).
    pub fn get_mut(&mut self, name: impl Into<Symbol>) -> Option<&mut Relation> {
        self.relations.get_mut(&name.into())
    }

    /// Looks up a relation, failing loudly if absent.
    pub fn require(&self, name: impl Into<Symbol>) -> Result<&Relation, DatalogError> {
        let name = name.into();
        self.relations
            .get(&name)
            .ok_or(DatalogError::UnknownRelation(name))
    }

    /// True if the relation exists (even if empty).
    pub fn contains(&self, name: impl Into<Symbol>) -> bool {
        self.relations.contains_key(&name.into())
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Relation)> {
        self.relations.iter().map(|(&s, r)| (s, r))
    }

    /// Names of all relations.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.relations.keys().copied()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Approximate working-set size in bytes: per-tuple payload plus a flat
    /// per-tuple allocation overhead estimate. Used by governed evaluation
    /// to enforce [`crate::govern::EvalBudget::max_memory_bytes`]; this is
    /// an estimate for budgeting, not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        self.relations
            .values()
            .map(|r| r.len() * (r.arity() * std::mem::size_of::<crate::term::Value>() + 48))
            .sum()
    }

    /// Loads the ground facts of `program` into the database and returns the
    /// remaining (non-fact) rules. A fact is a rule with an empty body and
    /// all-constant head.
    pub fn load_facts(&mut self, program: &Program) -> Result<Program, DatalogError> {
        let mut rest = Vec::new();
        for rule in &program.rules {
            let ground = rule.body.is_empty() && rule.head.terms.iter().all(|t| !t.is_var());
            if ground {
                let t: Tuple = rule
                    .head
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(_) => unreachable!("checked ground"),
                    })
                    .collect();
                self.insert(rule.head.predicate, t)?;
            } else {
                rest.push(rule.clone());
            }
        }
        Ok(Program::new(rest))
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Database(")?;
        for (i, (name, rel)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}/{}: {}", rel.arity(), rel.len())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::relation::tuple_u64;

    #[test]
    fn declare_and_insert() {
        let mut db = Database::new();
        db.declare("A", 2).unwrap();
        assert!(db.insert("A", tuple_u64([1, 2])).unwrap());
        assert!(!db.insert("A", tuple_u64([1, 2])).unwrap());
        assert_eq!(db.require("A").unwrap().len(), 1);
    }

    #[test]
    fn declare_conflicting_arity_fails() {
        let mut db = Database::new();
        db.declare("A", 2).unwrap();
        assert!(matches!(
            db.declare("A", 3),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn insert_wrong_width_fails() {
        let mut db = Database::new();
        db.declare("A", 2).unwrap();
        assert!(matches!(
            db.insert("A", tuple_u64([1, 2, 3])),
            Err(DatalogError::TupleArity { .. })
        ));
    }

    #[test]
    fn require_missing_fails() {
        let db = Database::new();
        assert!(matches!(
            db.require("Nope"),
            Err(DatalogError::UnknownRelation(_))
        ));
    }

    #[test]
    fn load_facts_splits_program() {
        let program = parse_program("A(1,2). A(2,3). P(x,y) :- A(x,y).").unwrap();
        let mut db = Database::new();
        let rest = db.load_facts(&program).unwrap();
        assert_eq!(db.require("A").unwrap().len(), 2);
        assert_eq!(rest.rules.len(), 1);
        assert!(rest.rules[0].head.terms[0].is_var());
    }

    #[test]
    fn total_tuples_sums() {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("B", Relation::from_pairs([(5, 6)]));
        assert_eq!(db.total_tuples(), 3);
    }
}
