//! Interned symbols for predicate names, variable names, and constants.
//!
//! The engine manipulates names heavily (unification, renaming-apart during
//! unfolding, graph construction keyed by variables), so names are interned
//! once into a process-global table and afterwards compared as `u32` ids.
//! Interned strings are leaked; the set of distinct names in any workload is
//! small and bounded, which makes the leak a deliberate, standard trade-off
//! (it buys `&'static str` access with no locking on the read path).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// An interned string. Two `Symbol`s are equal iff the underlying strings are.
///
/// Ordering compares the *strings* (not interner ids), so sorted iteration is
/// deterministic regardless of interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> MutexGuard<'static, Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER
        .get_or_init(|| {
            Mutex::new(Interner {
                map: HashMap::new(),
                strings: Vec::new(),
            })
        })
        .lock()
        // The interner is append-only and every mutation (push + insert) is
        // consistent at each step, so a lock poisoned by a panicking thread
        // still guards a valid table — recover it rather than propagate.
        .unwrap_or_else(PoisonError::into_inner)
}

fn next_id(strings: &[&'static str]) -> u32 {
    let Ok(id) = u32::try_from(strings.len()) else {
        panic!("symbol table overflow: more than u32::MAX distinct names")
    };
    id
}

impl Symbol {
    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner();
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        let id = next_id(&i.strings);
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.strings.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().strings[self.0 as usize]
    }

    /// A fresh symbol `base_n` guaranteed distinct from every symbol interned
    /// so far. Used when renaming rules apart during unfolding.
    pub fn fresh(base: &str, counter: &mut u32) -> Symbol {
        loop {
            let candidate = format!("{base}_{counter}");
            *counter += 1;
            let mut i = interner();
            if !i.map.contains_key(candidate.as_str()) {
                let id = next_id(&i.strings);
                let leaked: &'static str = Box::leak(candidate.into_boxed_str());
                i.strings.push(leaked);
                i.map.insert(leaked, id);
                return Symbol(id);
            }
        }
    }

    /// Raw id, stable for the process lifetime. Useful as a dense map key.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("beta");
        assert_ne!(a, b);
    }

    #[test]
    fn fresh_symbols_never_collide() {
        let existing = Symbol::intern("x_0");
        let mut counter = 0;
        let fresh = Symbol::fresh("x", &mut counter);
        assert_ne!(fresh, existing);
        assert_ne!(fresh.as_str(), "x_0");
    }

    #[test]
    fn fresh_advances_counter() {
        let mut counter = 0;
        let a = Symbol::fresh("fresh_base", &mut counter);
        let b = Symbol::fresh("fresh_base", &mut counter);
        assert_ne!(a, b);
        assert!(counter >= 2);
    }

    #[test]
    fn display_matches_source() {
        let s = Symbol::intern("Edge");
        assert_eq!(s.to_string(), "Edge");
        assert_eq!(format!("{s:?}"), "Edge");
    }
}
