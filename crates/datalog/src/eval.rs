//! Bottom-up evaluation: conjunctive bodies, naive and semi-naive fixpoints.
//!
//! The evaluator is the ground-truth oracle against which compiled query
//! plans (crate `recurs-core`) are checked, and the baseline the benchmark
//! harness compares compiled evaluation with.

use crate::algebra::{join, product, select_col_eq, select_eq};
use crate::database::Database;
use crate::error::DatalogError;
use crate::govern::{EvalBudget, Governor, Progress, TruncationReason};
use crate::relation::{Relation, Tuple};
use crate::rule::{Program, Rule};
use crate::symbol::Symbol;
use crate::term::{Atom, Term, Value};
use recurs_obs::{field, Obs};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};

/// Statistics of a fixpoint run, for reports and benchmark assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of iterations executed, counting the seeding round (and, on a
    /// complete run, the last unproductive fixpoint-detection round).
    pub iterations: usize,
    /// Total tuples derived into IDB relations (including exit tuples).
    pub tuples_derived: usize,
    /// True if the run stopped because the budget tripped rather than at a
    /// genuine fixpoint. (Kept in sync with `truncation`.)
    pub truncated: bool,
    /// Why the run was truncated, if it was.
    pub truncation: Option<TruncationReason>,
}

impl EvalStats {
    fn truncate(&mut self, reason: TruncationReason) {
        self.truncated = true;
        self.truncation = Some(reason);
    }
}

impl serde::Serialize for EvalStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("iterations", self.iterations.to_value()),
            ("tuples_derived", self.tuples_derived.to_value()),
            ("truncated", self.truncated.to_value()),
            ("truncation", self.truncation.to_value()),
        ])
    }
}

/// Emits the oracle's per-iteration provenance event (`eval.iteration`),
/// with the remaining headroom under each armed budget ceiling so a trace
/// shows how close the run came to every wall.
fn emit_eval_iteration(
    obs: &Obs,
    governor: &Governor,
    db: &Database,
    iteration: usize,
    delta_in: usize,
    derived: usize,
    tuples_total: usize,
) {
    if !obs.enabled() {
        return;
    }
    obs.counter("recurs_eval_iterations_total", &[], 1);
    obs.counter("recurs_eval_tuples_derived_total", &[], derived as u64);
    let headroom = governor.headroom(&Progress {
        iterations: iteration,
        tuples: tuples_total,
        delta: 0,
        memory_bytes: db.approx_bytes(),
    });
    let mut fields = vec![
        ("iteration", field::uz(iteration)),
        ("delta_in", field::uz(delta_in)),
        ("derived", field::uz(derived)),
        ("tuples_total", field::uz(tuples_total)),
    ];
    if let Some(t) = headroom.time_left {
        fields.push(("time_left_us", field::us(t)));
    }
    if let Some(n) = headroom.tuples_left {
        fields.push(("tuples_left", field::uz(n)));
    }
    if let Some(n) = headroom.iterations_left {
        fields.push(("iterations_left", field::uz(n)));
    }
    if let Some(n) = headroom.memory_left {
        fields.push(("memory_left_bytes", field::uz(n)));
    }
    obs.event("eval.iteration", &fields);
}

/// Emits the oracle's terminal event: `eval.truncated` (naming the
/// truncation cause exactly as [`TruncationReason`] displays it) or
/// `eval.complete`.
fn emit_eval_end(obs: &Obs, stats: &EvalStats) {
    if !obs.enabled() {
        return;
    }
    match stats.truncation {
        Some(reason) => {
            let label = reason.to_string();
            obs.counter("recurs_eval_truncations_total", &[("reason", &label)], 1);
            obs.event(
                "eval.truncated",
                &[
                    ("reason", field::s(label)),
                    ("iterations", field::uz(stats.iterations)),
                    ("tuples_derived", field::uz(stats.tuples_derived)),
                ],
            );
        }
        None => obs.event(
            "eval.complete",
            &[
                ("iterations", field::uz(stats.iterations)),
                ("tuples_derived", field::uz(stats.tuples_derived)),
            ],
        ),
    }
}

/// An intermediate result: a relation whose columns carry the listed
/// variables (positional algebra with a variable header).
#[derive(Debug, Clone)]
pub struct Bindings {
    /// Variable carried by each column.
    pub vars: Vec<Symbol>,
    /// The tuples.
    pub rel: Relation,
}

impl Bindings {
    /// The unit bindings: one empty tuple over no variables. Joining with it
    /// is the identity, which makes it the natural fold seed.
    pub fn unit() -> Bindings {
        Bindings {
            vars: Vec::new(),
            rel: Relation::from_tuples(0, [Tuple::from([])]),
        }
    }

    /// Column of a variable, if bound.
    pub fn column_of(&self, v: Symbol) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Projects the bindings onto `vars` (all must be bound).
    pub fn project_vars(&self, vars: &[Symbol]) -> Result<Relation, DatalogError> {
        let cols: Vec<usize> = vars
            .iter()
            .map(|&v| self.column_of(v).ok_or(DatalogError::UnboundVariable(v)))
            .collect::<Result<_, _>>()?;
        Ok(crate::algebra::project(&self.rel, &cols))
    }
}

/// Normalizes one atom's relation: applies constant selections and repeated-
/// variable selections, then projects onto the first occurrence of each
/// variable. Returns the distinct variables (in first-occurrence order) and
/// the normalized relation.
fn normalize_atom<'a>(
    atom: &Atom,
    rel: &'a Relation,
) -> Result<(Vec<Symbol>, Cow<'a, Relation>), DatalogError> {
    if atom.arity() != rel.arity() {
        // Reachable from user input: a fact file can load a relation at an
        // arity that disagrees with the rules, so this is an error, not an
        // assert.
        return Err(DatalogError::ArityMismatch {
            predicate: atom.predicate,
            expected: rel.arity(),
            found: atom.arity(),
        });
    }
    // Fast path: all arguments are distinct variables — the relation is used
    // as-is, with no selection or projection (and no clone; this runs once
    // per atom per fixpoint iteration, so copies here are the hot path).
    if atom.has_distinct_variables() {
        let vars: Vec<Symbol> = atom.terms.iter().filter_map(Term::as_var).collect();
        return Ok((vars, Cow::Borrowed(rel)));
    }
    let mut current = rel.clone();
    // Constant selections.
    for (i, t) in atom.terms.iter().enumerate() {
        if let Term::Const(c) = t {
            current = select_eq(&current, i, *c);
        }
    }
    // Repeated-variable selections.
    let mut first_col: HashMap<Symbol, usize> = HashMap::new();
    let mut keep: Vec<usize> = Vec::new();
    let mut vars: Vec<Symbol> = Vec::new();
    for (i, t) in atom.terms.iter().enumerate() {
        if let Term::Var(v) = t {
            if let Some(&j) = first_col.get(v) {
                current = select_col_eq(&current, j, i);
            } else {
                first_col.insert(*v, i);
                keep.push(i);
                vars.push(*v);
            }
        }
    }
    Ok((vars, Cow::Owned(crate::algebra::project(&current, &keep))))
}

/// Joins `next` (an atom's normalized relation) into accumulated bindings.
fn extend_bindings(acc: &Bindings, vars: &[Symbol], rel: &Relation) -> Bindings {
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut new_vars: Vec<Symbol> = Vec::new();
    let mut new_cols: Vec<usize> = Vec::new();
    for (i, &v) in vars.iter().enumerate() {
        match acc.column_of(v) {
            Some(j) => pairs.push((j, i)),
            None => {
                new_vars.push(v);
                new_cols.push(i);
            }
        }
    }
    let joined = if pairs.is_empty() {
        product(&acc.rel, rel)
    } else {
        join(&acc.rel, rel, &pairs)
    };
    // Keep all accumulator columns plus the first occurrence of new vars.
    let keep: Vec<usize> = (0..acc.vars.len())
        .chain(new_cols.iter().map(|&c| acc.vars.len() + c))
        .collect();
    let mut vars_out = acc.vars.clone();
    vars_out.extend(new_vars);
    Bindings {
        vars: vars_out,
        rel: crate::algebra::project(&joined, &keep),
    }
}

/// Evaluates a conjunctive body against `db`, with per-position relation
/// overrides (used by semi-naive deltas). Returns bindings over the body's
/// variables.
///
/// Atoms are joined in the selection-first order of [`crate::order`]
/// (constants and small relations early, products deferred); when overrides
/// are present, the smallest overridden position (the delta atom) leads.
pub fn eval_body(
    db: &Database,
    body: &[Atom],
    overrides: &HashMap<usize, &Relation>,
) -> Result<Bindings, DatalogError> {
    let pinned = overrides.keys().min().copied();
    let order = crate::order::order_atoms(body, db, pinned);
    let mut acc = Bindings::unit();
    for i in order {
        let atom = &body[i];
        let rel: &Relation = match overrides.get(&i) {
            Some(r) => r,
            None => db.require(atom.predicate)?,
        };
        let (vars, normalized) = normalize_atom(atom, rel)?;
        acc = extend_bindings(&acc, &vars, &normalized);
        if acc.rel.is_empty() {
            // Short-circuit: the conjunction is already unsatisfiable.
            return Ok(Bindings {
                vars: body
                    .iter()
                    .flat_map(|a| a.variables())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect(),
                rel: Relation::new(
                    body.iter()
                        .flat_map(|a| a.variables())
                        .collect::<BTreeSet<_>>()
                        .len(),
                ),
            });
        }
    }
    Ok(acc)
}

/// Evaluates one rule, returning the derived head tuples.
pub fn eval_rule(
    db: &Database,
    rule: &Rule,
    overrides: &HashMap<usize, &Relation>,
) -> Result<Relation, DatalogError> {
    let bindings = eval_body(db, &rule.body, overrides)?;
    head_tuples(&rule.head, &bindings)
}

/// Instantiates the head over the bindings (head constants are copied,
/// head variables looked up).
fn head_tuples(head: &Atom, bindings: &Bindings) -> Result<Relation, DatalogError> {
    enum Col {
        Bound(usize),
        Fixed(Value),
    }
    let cols: Vec<Col> = head
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => bindings
                .column_of(*v)
                .map(Col::Bound)
                .ok_or(DatalogError::UnboundVariable(*v)),
            Term::Const(c) => Ok(Col::Fixed(*c)),
        })
        .collect::<Result<_, _>>()?;
    let mut out = Relation::new(head.arity());
    for t in bindings.rel.iter() {
        out.insert(
            cols.iter()
                .map(|c| match c {
                    Col::Bound(i) => t[*i],
                    Col::Fixed(v) => *v,
                })
                .collect(),
        );
    }
    Ok(out)
}

/// A differentiated recursive-rule variant prepared for repeated
/// evaluation: the join order is fixed (delta atom first), every
/// non-recursive (EDB) body atom is normalized once, and the hash index the
/// join would otherwise rebuild per iteration is built once here. Only the
/// delta atom and non-delta IDB occurrences stay dynamic — their relations
/// change as the fixpoint grows.
struct PreparedVariant {
    head: Atom,
    delta_pos: usize,
    delta_vars: Vec<Symbol>,
    steps: Vec<PreparedStep>,
}

enum PreparedStep {
    /// An EDB atom with at least one variable shared with the prefix:
    /// probe the prebuilt index.
    Indexed {
        /// `(accumulator column, index key order)` — the key is the shared
        /// variables' values in the order they appear in `key_cols`.
        acc_cols: Vec<usize>,
        /// Normalized-relation tuples keyed by the shared columns.
        index: HashMap<Vec<Value>, Vec<Tuple>>,
        /// Columns of the normalized tuple appended to the accumulator.
        new_cols: Vec<usize>,
        /// New variables those columns carry.
        new_vars: Vec<Symbol>,
    },
    /// An EDB atom sharing no variable with the prefix: Cartesian product
    /// with the (pre-normalized) relation.
    Product { rel: Relation, vars: Vec<Symbol> },
    /// An IDB atom (a non-delta recursive occurrence): normalized against
    /// the live database every iteration, as before.
    Dynamic { pos: usize },
}

/// Prepares one `(rule, delta position)` variant. `db` supplies relation
/// sizes for the ordering heuristic and the EDB relations to index; IDB
/// predicates (members of `idb`) are left dynamic.
fn prepare_variant(
    rule: &Rule,
    delta_pos: usize,
    db: &Database,
    idb: &BTreeSet<Symbol>,
) -> Result<PreparedVariant, DatalogError> {
    let order = crate::order::order_atoms(&rule.body, db, Some(delta_pos));
    debug_assert_eq!(order[0], delta_pos);
    let delta_vars: Vec<Symbol> = {
        // Distinct variables of the delta atom in first-occurrence order —
        // the accumulator layout normalize_atom will produce at runtime.
        let mut seen = Vec::new();
        for v in rule.body[delta_pos].variables() {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    };
    let mut acc_vars = delta_vars.clone();
    let mut steps = Vec::new();
    for &pos in &order[1..] {
        let atom = &rule.body[pos];
        if idb.contains(&atom.predicate) {
            // Simulate the extend so later steps see the right layout.
            for v in atom.variables() {
                if !acc_vars.contains(&v) {
                    acc_vars.push(v);
                }
            }
            steps.push(PreparedStep::Dynamic { pos });
            continue;
        }
        let rel = db.require(atom.predicate)?;
        let (vars, normalized) = normalize_atom(atom, rel)?;
        let mut acc_cols = Vec::new();
        let mut key_cols = Vec::new();
        let mut new_cols = Vec::new();
        let mut new_vars = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            match acc_vars.iter().position(|&a| a == v) {
                Some(j) => {
                    acc_cols.push(j);
                    key_cols.push(i);
                }
                None => {
                    new_cols.push(i);
                    new_vars.push(v);
                }
            }
        }
        if acc_cols.is_empty() {
            acc_vars.extend(new_vars.iter().copied());
            steps.push(PreparedStep::Product {
                rel: normalized.into_owned(),
                vars,
            });
            continue;
        }
        // The index the join would rebuild every iteration, built once.
        let mut index: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        for t in normalized.iter() {
            let key: Vec<Value> = key_cols.iter().map(|&c| t[c]).collect();
            index.entry(key).or_default().push(t.clone());
        }
        acc_vars.extend(new_vars.iter().copied());
        steps.push(PreparedStep::Indexed {
            acc_cols,
            index,
            new_cols,
            new_vars,
        });
    }
    Ok(PreparedVariant {
        head: rule.head.clone(),
        delta_pos,
        delta_vars,
        steps,
    })
}

impl PreparedVariant {
    /// Evaluates the variant against the current database with the given
    /// delta relation, returning derived head tuples.
    fn eval(&self, db: &Database, rule: &Rule, delta: &Relation) -> Result<Relation, DatalogError> {
        let atom = &rule.body[self.delta_pos];
        let (vars, normalized) = normalize_atom(atom, delta)?;
        debug_assert_eq!(vars, self.delta_vars);
        let mut acc = Bindings {
            vars,
            rel: normalized.into_owned(),
        };
        for step in &self.steps {
            if acc.rel.is_empty() {
                return Ok(Relation::new(self.head.arity()));
            }
            match step {
                PreparedStep::Indexed {
                    acc_cols,
                    index,
                    new_cols,
                    new_vars,
                } => {
                    let mut out = Relation::new(acc.vars.len() + new_cols.len());
                    for t in acc.rel.iter() {
                        let key: Vec<Value> = acc_cols.iter().map(|&c| t[c]).collect();
                        let Some(matches) = index.get(&key) else {
                            continue;
                        };
                        for m in matches {
                            out.insert(
                                t.iter()
                                    .copied()
                                    .chain(new_cols.iter().map(|&c| m[c]))
                                    .collect(),
                            );
                        }
                    }
                    acc.vars.extend(new_vars.iter().copied());
                    acc.rel = out;
                }
                PreparedStep::Product { rel, vars } => {
                    acc = extend_bindings(&acc, vars, rel);
                }
                PreparedStep::Dynamic { pos } => {
                    let rel = db.require(rule.body[*pos].predicate)?;
                    let (vars, normalized) = normalize_atom(&rule.body[*pos], rel)?;
                    acc = extend_bindings(&acc, &vars, &normalized);
                }
            }
        }
        head_tuples(&self.head, &acc)
    }
}

fn declare_idb(db: &mut Database, program: &Program) -> Result<(), DatalogError> {
    for rule in &program.rules {
        db.declare(rule.head.predicate, rule.head.arity())?;
    }
    Ok(())
}

/// Naive bottom-up fixpoint: every iteration re-evaluates every rule against
/// the full database. `max_iterations = None` runs to fixpoint.
///
/// Iteration/cap semantics are shared with [`semi_naive`] and with
/// `recurs-engine`: the budget is checked at the *start* of each round, so a
/// cap of `k` executes at most `k` rounds (the first of which derives the
/// non-recursive seed tuples).
pub fn naive(
    db: &mut Database,
    program: &Program,
    max_iterations: Option<usize>,
) -> Result<EvalStats, DatalogError> {
    naive_governed(db, program, &EvalBudget::iteration_cap(max_iterations))
}

/// [`naive`] under a full [`EvalBudget`]: deadline, tuple/delta/memory
/// ceilings, and cancellation are checked at every round boundary. An
/// exhausted budget is not an error — the run returns `Ok` with
/// [`EvalStats::truncation`] set, and the database holds a sound
/// under-approximation of the fixpoint.
pub fn naive_governed(
    db: &mut Database,
    program: &Program,
    budget: &EvalBudget,
) -> Result<EvalStats, DatalogError> {
    naive_governed_with(db, program, budget, &Obs::noop())
}

/// [`naive_governed`] with an observability handle: emits `eval.iteration`
/// per round and `eval.truncated`/`eval.complete` at the end. With the
/// no-op handle ([`Obs::noop`]) this is [`naive_governed`] exactly.
pub fn naive_governed_with(
    db: &mut Database,
    program: &Program,
    budget: &EvalBudget,
    obs: &Obs,
) -> Result<EvalStats, DatalogError> {
    let governor = budget.start();
    declare_idb(db, program)?;
    let mut stats = EvalStats::default();
    loop {
        if let Some(reason) = governor.check(Progress {
            iterations: stats.iterations,
            tuples: stats.tuples_derived,
            delta: 0,
            memory_bytes: db.approx_bytes(),
        }) {
            stats.truncate(reason);
            emit_eval_end(obs, &stats);
            return Ok(stats);
        }
        stats.iterations += 1;
        let mut new_tuples = 0usize;
        let mut derived: Vec<(Symbol, Relation)> = Vec::new();
        for rule in &program.rules {
            derived.push((rule.head.predicate, eval_rule(db, rule, &HashMap::new())?));
        }
        for (pred, rel) in derived {
            match db.get_mut(pred) {
                Some(target) => new_tuples += target.union_in_place(&rel),
                None => {
                    new_tuples += rel.len();
                    db.insert_relation(pred, rel);
                }
            }
        }
        stats.tuples_derived += new_tuples;
        emit_eval_iteration(
            obs,
            &governor,
            db,
            stats.iterations,
            0,
            new_tuples,
            stats.tuples_derived,
        );
        if new_tuples == 0 {
            emit_eval_end(obs, &stats);
            return Ok(stats);
        }
    }
}

/// Semi-naive bottom-up fixpoint: recursive rules are differentiated so each
/// iteration only joins against the newly derived delta.
///
/// Iteration/cap semantics are shared with [`naive`] and with
/// `recurs-engine::run_with_kernel`: iteration 1 is the seeding round
/// (non-recursive rules plus caller-preloaded IDB tuples), and the cap is
/// checked at the *start* of each recursive round — so a cap of `k` runs the
/// seeding round plus at most `k - 1` recursive rounds. A capped run that
/// still has a pending non-empty delta reports
/// [`TruncationReason::IterationCap`].
pub fn semi_naive(
    db: &mut Database,
    program: &Program,
    max_iterations: Option<usize>,
) -> Result<EvalStats, DatalogError> {
    semi_naive_governed(db, program, &EvalBudget::iteration_cap(max_iterations))
}

/// [`semi_naive`] under a full [`EvalBudget`]: the governor is checked at
/// every iteration boundary (iteration cap, tuple/delta/memory ceilings) and
/// polled between differentiated rule variants inside an iteration (deadline,
/// cancellation), so a diverging recursion stops promptly. An exhausted
/// budget is not an error — the run returns `Ok` with
/// [`EvalStats::truncation`] set and the database holding a sound
/// under-approximation of the fixpoint (every derived tuple is a true
/// consequence of the program; early exit only omits tuples).
pub fn semi_naive_governed(
    db: &mut Database,
    program: &Program,
    budget: &EvalBudget,
) -> Result<EvalStats, DatalogError> {
    semi_naive_governed_with(db, program, budget, &Obs::noop())
}

/// [`semi_naive_governed`] with an observability handle: emits one
/// `eval.iteration` event per round (incoming delta size, tuples derived,
/// and budget headroom) and a terminal `eval.truncated`/`eval.complete`
/// event naming the truncation cause. With the no-op handle
/// ([`Obs::noop`]) this is [`semi_naive_governed`] exactly — no field
/// arrays are built and no clocks are read.
pub fn semi_naive_governed_with(
    db: &mut Database,
    program: &Program,
    budget: &EvalBudget,
    obs: &Obs,
) -> Result<EvalStats, DatalogError> {
    let governor = budget.start();
    declare_idb(db, program)?;
    let idb: BTreeSet<Symbol> = program.idb_predicates();
    let mut stats = EvalStats::default();

    // A budget can trip before any work (cancelled token, zero timeout,
    // zero iteration cap).
    if let Some(reason) = governor.check(Progress {
        iterations: 0,
        tuples: 0,
        delta: 0,
        memory_bytes: db.approx_bytes(),
    }) {
        stats.truncate(reason);
        emit_eval_end(obs, &stats);
        return Ok(stats);
    }

    // Iteration 0: non-recursive rules (no IDB atom in the body) seed the
    // deltas. Recursive rules contribute from iteration 1 on.
    let mut delta: HashMap<Symbol, Relation> = HashMap::new();
    for rule in &program.rules {
        if rule.body.iter().any(|a| idb.contains(&a.predicate)) {
            continue;
        }
        let derived = eval_rule(db, rule, &HashMap::new())?;
        delta
            .entry(rule.head.predicate)
            .or_insert_with(|| Relation::new(rule.head.arity()))
            .union_in_place(&derived);
    }
    // Restrict deltas to genuinely new tuples and merge into the database.
    let merge = |db: &mut Database, delta: HashMap<Symbol, Relation>| -> usize {
        let mut added = 0usize;
        for (pred, rel) in delta {
            match db.get_mut(pred) {
                Some(target) => added += target.union_in_place(&rel),
                None => {
                    added += rel.len();
                    db.insert_relation(pred, rel);
                }
            }
        }
        added
    };
    stats.iterations += 1;
    let seeded = merge(db, delta);
    stats.tuples_derived += seeded;
    emit_eval_iteration(
        obs,
        &governor,
        db,
        stats.iterations,
        0,
        seeded,
        stats.tuples_derived,
    );
    // The delta for the first recursive round is everything present after
    // iteration 0 — including tuples pre-seeded into IDB relations by the
    // caller (e.g. magic-set seeds), which recursive rules must see.
    let mut true_delta: HashMap<Symbol, Relation> = HashMap::new();
    for &pred in &idb {
        if let Some(rel) = db.get(pred) {
            if !rel.is_empty() {
                true_delta.insert(pred, rel.clone());
            }
        }
    }

    // Differentiated variants are prepared on first use and reused across
    // iterations: EDB body atoms are normalized and indexed once there,
    // instead of being re-normalized and re-indexed every iteration.
    let mut prepared: HashMap<(usize, usize), PreparedVariant> = HashMap::new();

    loop {
        if true_delta.values().all(Relation::is_empty) {
            emit_eval_end(obs, &stats);
            return Ok(stats);
        }
        let pending_delta: usize = true_delta.values().map(Relation::len).sum();
        if let Some(reason) = governor.check(Progress {
            iterations: stats.iterations,
            tuples: stats.tuples_derived,
            delta: pending_delta,
            memory_bytes: db.approx_bytes(),
        }) {
            stats.truncate(reason);
            emit_eval_end(obs, &stats);
            return Ok(stats);
        }
        stats.iterations += 1;
        let mut derived: HashMap<Symbol, Relation> = HashMap::new();
        // Deadline/cancellation tripping between rule variants: the partial
        // derivations are still merged (a sound under-approximation), then
        // the run reports truncation.
        let mut interrupted: Option<TruncationReason> = None;
        'rules: for (rule_idx, rule) in program.rules.iter().enumerate() {
            let idb_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, a)| idb.contains(&a.predicate))
                .map(|(i, _)| i)
                .collect();
            if idb_positions.is_empty() {
                continue;
            }
            // One differentiated variant per IDB body occurrence.
            for &pos in &idb_positions {
                if let Some(reason) = governor.poll() {
                    interrupted = Some(reason);
                    break 'rules;
                }
                let pred = rule.body[pos].predicate;
                let Some(d) = true_delta.get(&pred) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                let variant = match prepared.entry((rule_idx, pos)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(prepare_variant(rule, pos, db, &idb)?)
                    }
                };
                let out = variant.eval(db, rule, d)?;
                derived
                    .entry(rule.head.predicate)
                    .or_insert_with(|| Relation::new(rule.head.arity()))
                    .union_in_place(&out);
            }
        }
        // New-tuple deltas for the next round.
        let mut next_delta: HashMap<Symbol, Relation> = HashMap::new();
        for (pred, rel) in &derived {
            let fresh = match db.get(*pred) {
                Some(e) => rel.difference(e),
                None => rel.clone(),
            };
            next_delta.insert(*pred, fresh);
        }
        let added = merge(db, derived);
        stats.tuples_derived += added;
        emit_eval_iteration(
            obs,
            &governor,
            db,
            stats.iterations,
            pending_delta,
            added,
            stats.tuples_derived,
        );
        true_delta = next_delta;
        if let Some(reason) = interrupted {
            stats.truncate(reason);
            emit_eval_end(obs, &stats);
            return Ok(stats);
        }
        if added == 0 {
            emit_eval_end(obs, &stats);
            return Ok(stats);
        }
    }
}

/// Evaluates a ground-or-open query atom against an already-saturated
/// database: applies the query's constant selections and projects onto the
/// query's variables (in first-occurrence order).
pub fn answer_query(db: &Database, query: &Atom) -> Result<Relation, DatalogError> {
    let rel = db.require(query.predicate)?;
    let (_, normalized) = normalize_atom(query, rel)?;
    Ok(normalized.into_owned())
}

/// Convenience: semi-naive fixpoint then [`answer_query`].
pub fn run_query(
    db: &mut Database,
    program: &Program,
    query: &Atom,
) -> Result<Relation, DatalogError> {
    semi_naive(db, program, None)?;
    answer_query(db, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_atom, parse_program};
    use crate::relation::tuple_u64;

    fn chain_db(n: u64) -> Database {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db
    }

    fn tc_program() -> Program {
        parse_program("P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).").unwrap()
    }

    #[test]
    fn naive_transitive_closure_on_chain() {
        let mut db = chain_db(6);
        let stats = naive(&mut db, &tc_program(), None).unwrap();
        // Chain 1→2→…→6 has C(5+1,2)=15 closure pairs.
        assert_eq!(db.require("P").unwrap().len(), 15);
        assert!(stats.iterations >= 5);
        assert!(!stats.truncated);
    }

    #[test]
    fn semi_naive_matches_naive() {
        let mut db1 = chain_db(8);
        let mut db2 = chain_db(8);
        naive(&mut db1, &tc_program(), None).unwrap();
        semi_naive(&mut db2, &tc_program(), None).unwrap();
        assert_eq!(db1.require("P").unwrap(), db2.require("P").unwrap());
    }

    #[test]
    fn semi_naive_on_cyclic_data_terminates() {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        semi_naive(&mut db, &tc_program(), None).unwrap();
        // All 9 pairs are reachable on a 3-cycle.
        assert_eq!(db.require("P").unwrap().len(), 9);
    }

    #[test]
    fn truncation_caps_iterations() {
        let mut db = chain_db(50);
        let stats = semi_naive(&mut db, &tc_program(), Some(3)).unwrap();
        assert!(stats.truncated);
        assert_eq!(stats.iterations, 3);
        assert!(db.require("P").unwrap().len() < 49 * 50 / 2);
    }

    #[test]
    fn governed_tuple_ceiling_truncates() {
        let mut db = chain_db(50);
        let budget = EvalBudget::unlimited().with_max_tuples(60);
        let stats = semi_naive_governed(&mut db, &tc_program(), &budget).unwrap();
        assert_eq!(stats.truncation, Some(TruncationReason::TupleCeiling));
        assert!(stats.truncated);
        let fixpoint = {
            let mut full = chain_db(50);
            semi_naive(&mut full, &tc_program(), None).unwrap();
            full.require("P").unwrap().clone()
        };
        // Sound under-approximation: every derived tuple is in the fixpoint.
        for t in db.require("P").unwrap().iter() {
            assert!(fixpoint.contains(t));
        }
        assert!(db.require("P").unwrap().len() < fixpoint.len());
    }

    #[test]
    fn governed_zero_timeout_truncates_immediately() {
        let mut db = chain_db(10);
        let budget = EvalBudget::unlimited().with_timeout(std::time::Duration::ZERO);
        let stats = semi_naive_governed(&mut db, &tc_program(), &budget).unwrap();
        assert_eq!(stats.truncation, Some(TruncationReason::Deadline));
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn governed_cancel_truncates() {
        let mut db = chain_db(10);
        let token = crate::govern::CancelToken::new();
        token.cancel();
        let budget = EvalBudget::unlimited().with_cancel(token);
        let stats = semi_naive_governed(&mut db, &tc_program(), &budget).unwrap();
        assert_eq!(stats.truncation, Some(TruncationReason::Cancelled));
    }

    #[test]
    fn governed_memory_ceiling_truncates() {
        let mut db = chain_db(50);
        let budget = EvalBudget::unlimited().with_max_memory_bytes(1);
        let stats = semi_naive_governed(&mut db, &tc_program(), &budget).unwrap();
        assert_eq!(stats.truncation, Some(TruncationReason::MemoryCeiling));
    }

    #[test]
    fn governed_delta_ceiling_truncates() {
        let mut db = chain_db(50);
        // The seeding round produces a 49-tuple delta; cap per-iteration
        // deltas below that.
        let budget = EvalBudget::unlimited().with_max_delta(10);
        let stats = semi_naive_governed(&mut db, &tc_program(), &budget).unwrap();
        assert_eq!(stats.truncation, Some(TruncationReason::DeltaCeiling));
    }

    #[test]
    fn cap_counts_seeding_round() {
        // Unified semantics: cap 1 = seeding round only, no recursive round.
        let mut db = chain_db(10);
        let stats = semi_naive(&mut db, &tc_program(), Some(1)).unwrap();
        assert_eq!(stats.iterations, 1);
        assert!(stats.truncated);
        assert_eq!(db.require("P").unwrap().len(), 9); // E edges only

        let mut db = chain_db(10);
        let stats = naive(&mut db, &tc_program(), Some(1)).unwrap();
        assert_eq!(stats.iterations, 1);
        assert!(stats.truncated);
        assert_eq!(db.require("P").unwrap().len(), 9);
    }

    #[test]
    fn unlimited_budget_runs_to_fixpoint() {
        let mut db = chain_db(8);
        let stats = semi_naive_governed(&mut db, &tc_program(), &EvalBudget::unlimited()).unwrap();
        assert!(!stats.truncated);
        assert!(stats.truncation.is_none());
        assert_eq!(db.require("P").unwrap().len(), 7 * 8 / 2);
    }

    #[test]
    fn answer_query_selects_and_projects() {
        let mut db = chain_db(5);
        semi_naive(&mut db, &tc_program(), None).unwrap();
        let q = parse_atom("P('1', y)").unwrap();
        let ans = answer_query(&db, &q).unwrap();
        assert_eq!(ans.arity(), 1);
        assert_eq!(ans.len(), 4); // 1 reaches 2,3,4,5
    }

    #[test]
    fn repeated_variables_in_query() {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 1)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 1)]));
        semi_naive(&mut db, &tc_program(), None).unwrap();
        // P(x, x): nodes on a cycle reach themselves.
        let q = parse_atom("P(x, x)").unwrap();
        let ans = answer_query(&db, &q).unwrap();
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn body_with_repeated_variable() {
        // Q(x) :- A(x, x): diagonal selection inside an atom.
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 1), (1, 2), (3, 3)]));
        let program = parse_program("Q(x) :- A(x, x).").unwrap();
        naive(&mut db, &program, None).unwrap();
        assert_eq!(db.require("Q").unwrap().len(), 2);
    }

    #[test]
    fn cartesian_body() {
        // R(x, y) :- A(x, u), B(y, v): disconnected body is a product.
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 10), (2, 20)]));
        db.insert_relation("B", Relation::from_pairs([(7, 70)]));
        let program = parse_program("R(x, y) :- A(x, u), B(y, v).").unwrap();
        naive(&mut db, &program, None).unwrap();
        let r = db.require("R").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Value::from_u64(1), Value::from_u64(7)]));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let mut db = Database::new();
        let program = parse_program("Q(x) :- Missing(x, x).").unwrap();
        assert!(naive(&mut db, &program, None).is_err());
    }

    #[test]
    fn constants_in_rule_bodies() {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (3, 4)]));
        let program = parse_program("Q(y) :- A('1', y).").unwrap();
        naive(&mut db, &program, None).unwrap();
        let q = db.require("Q").unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.contains(&[Value::from_u64(2)]));
    }

    #[test]
    fn head_constant_is_materialized() {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2)]));
        let program = parse_program("Q('tag', y) :- A(x, y).").unwrap();
        naive(&mut db, &program, None).unwrap();
        let q = db.require("Q").unwrap();
        assert!(q.contains(&[Value::named("tag"), Value::from_u64(2)]));
    }

    #[test]
    fn empty_edb_yields_empty_idb() {
        let mut db = Database::new();
        db.declare("A", 2).unwrap();
        db.declare("E", 2).unwrap();
        let stats = semi_naive(&mut db, &tc_program(), None).unwrap();
        assert!(db.require("P").unwrap().is_empty());
        assert_eq!(stats.tuples_derived, 0);
    }

    #[test]
    fn three_dimensional_recursion() {
        // s3 from the paper: P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("B", Relation::from_pairs([(4, 5), (5, 6)]));
        db.insert_relation("C", Relation::from_pairs([(7, 8), (8, 9)]));
        db.insert_relation("E3", Relation::from_tuples(3, [tuple_u64([3, 6, 7])]));
        let program =
            parse_program("P(x,y,z) :- E3(x,y,z).\nP(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).")
                .unwrap();
        semi_naive(&mut db, &program, None).unwrap();
        let p = db.require("P").unwrap();
        // E3(3,6,7); expansion 1: A(2,3),B(5,6),P(3,6,7),C(7,8) → P(2,5,8);
        // expansion 2: A(1,2),B(4,5),P(2,5,8),C(8,9) → P(1,4,9).
        assert_eq!(p.len(), 3);
        assert!(p.contains(&[Value::from_u64(1), Value::from_u64(4), Value::from_u64(9)]));
    }
}
