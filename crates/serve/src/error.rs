//! Error taxonomy of the serving layer.

use recurs_datalog::error::DatalogError;
use recurs_datalog::symbol::Symbol;
use recurs_engine::EngineError;
use std::fmt;
use std::time::Duration;

/// Why a query (or update) could not be answered. Budget exhaustion is
/// *not* an error — governed runs report
/// [`Outcome::Truncated`](recurs_datalog::govern::Outcome) in the reply.
#[derive(Debug)]
pub enum ServeError {
    /// A substrate error from the Datalog layer (unknown relation, arity
    /// mismatch, ...).
    Datalog(DatalogError),
    /// The execution engine failed (e.g. persistent worker panic).
    Engine(EngineError),
    /// The query's predicate is not the one this service answers.
    WrongPredicate {
        /// The predicate the query asked for.
        got: Symbol,
        /// The recursive predicate the service serves.
        serves: Symbol,
    },
    /// An update tried to insert or delete the recursive predicate's tuples
    /// directly; the materialized relation is derived, never stored.
    DerivedUpdate(Symbol),
    /// Admission control shed the request: no evaluation slot freed up
    /// within the caller's wait bound. The request was never evaluated and
    /// is safe to retry (the network layer attaches a retry-after hint).
    Overloaded {
        /// How long the request waited before being shed.
        waited: Duration,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Datalog(e) => write!(f, "{e}"),
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::WrongPredicate { got, serves } => {
                write!(
                    f,
                    "query predicate {got} is not served (service answers {serves})"
                )
            }
            ServeError::DerivedUpdate(p) => {
                write!(f, "relation {p} is derived and cannot be updated directly")
            }
            ServeError::Overloaded { waited } => {
                write!(
                    f,
                    "overloaded: no evaluation slot within {} ms, request shed",
                    waited.as_millis()
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Datalog(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            ServeError::WrongPredicate { .. }
            | ServeError::DerivedUpdate(_)
            | ServeError::Overloaded { .. } => None,
        }
    }
}

impl From<DatalogError> for ServeError {
    fn from(e: DatalogError) -> ServeError {
        ServeError::Datalog(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

impl From<recurs_ivm::IvmError> for ServeError {
    fn from(e: recurs_ivm::IvmError) -> ServeError {
        match e {
            recurs_ivm::IvmError::Datalog(d) => ServeError::Datalog(d),
            recurs_ivm::IvmError::Engine(en) => ServeError::Engine(en),
            recurs_ivm::IvmError::Truncated(_) => ServeError::Engine(EngineError::Internal(
                "provenance saturation truncated by its budget",
            )),
            recurs_ivm::IvmError::IdbUpdate(p) => ServeError::DerivedUpdate(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let e = ServeError::Datalog(DatalogError::UnknownRelation(Symbol::intern("R")));
        assert!(e.to_string().contains('R'));
        let e = ServeError::WrongPredicate {
            got: Symbol::intern("Q"),
            serves: Symbol::intern("P"),
        };
        assert!(e.to_string().contains('Q'));
        assert!(e.to_string().contains('P'));
    }
}
