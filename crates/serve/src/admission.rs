//! Admission control: a counting semaphore bounding concurrent evaluations.
//!
//! Every query acquires a permit before evaluating and releases it on drop
//! (RAII), so at most `permits` saturations run at once no matter how many
//! threads call into the service. Waiting is FIFO-ish (condvar wakeup
//! order); the time spent waiting is reported per query as `queue_wait` in
//! [`crate::stats::ServeStats`].

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A counting semaphore (std-only: mutex + condvar).
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// A semaphore with `permits` concurrent slots (floored at 1).
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Blocks until a slot is free; returns the slot and how long the
    /// caller queued for it.
    pub fn acquire(&self) -> (Permit<'_>, Duration) {
        let start = Instant::now();
        let mut free = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *free == 0 {
            free = self
                .available
                .wait(free)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
        (Permit { semaphore: self }, start.elapsed())
    }

    /// Waits at most `max_wait` for a slot. Returns the slot and the actual
    /// queue time, or `None` once the wait bound expires — the caller sheds
    /// the request instead of queueing unboundedly. The wait is strictly
    /// bounded: no caller ever blocks longer than `max_wait` (plus scheduler
    /// noise), which is the admission-fairness contract the network front
    /// end's shed/retry loop relies on.
    pub fn try_acquire_for(&self, max_wait: Duration) -> Option<(Permit<'_>, Duration)> {
        let start = Instant::now();
        let mut free = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *free == 0 {
            let remaining = max_wait.checked_sub(start.elapsed())?;
            let (guard, timeout) = self
                .available
                .wait_timeout(free, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            free = guard;
            if timeout.timed_out() && *free == 0 {
                return None;
            }
        }
        *free -= 1;
        // A wakeup consumed here cannot strand another waiter: permits are
        // only handed out under the lock, and every release notifies.
        Some((Permit { semaphore: self }, start.elapsed()))
    }
}

/// An acquired slot; dropping it releases the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    semaphore: &'a Semaphore,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut free = self
            .semaphore
            .permits
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *free += 1;
        self.semaphore.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn permits_bound_concurrency() {
        let sem = Arc::new(Semaphore::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (sem, running, peak) = (sem.clone(), running.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let (_permit, _wait) = sem.acquire();
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                running.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "semaphore over-admitted");
    }

    #[test]
    fn try_acquire_for_succeeds_immediately_when_free() {
        let sem = Semaphore::new(1);
        let (p, wait) = sem.try_acquire_for(Duration::from_millis(1)).unwrap();
        assert!(wait < Duration::from_millis(50));
        drop(p);
    }

    #[test]
    fn try_acquire_for_times_out_with_a_bounded_wait() {
        let sem = Semaphore::new(1);
        let (_held, _) = sem.acquire();
        let start = std::time::Instant::now();
        assert!(sem.try_acquire_for(Duration::from_millis(30)).is_none());
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(25), "returned early");
        assert!(
            waited < Duration::from_secs(2),
            "wait must be bounded, took {waited:?}"
        );
    }

    #[test]
    fn try_acquire_for_picks_up_a_freed_permit() {
        let sem = Arc::new(Semaphore::new(1));
        let (held, _) = sem.acquire();
        let sem2 = sem.clone();
        let waiter = std::thread::spawn(move || {
            sem2.try_acquire_for(Duration::from_secs(5))
                .map(|(_p, wait)| wait)
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        let waited = waiter.join().unwrap().expect("waiter should get the slot");
        assert!(waited >= Duration::from_millis(5), "waiter did not queue");
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn saturated_semaphore_never_starves_a_bounded_waiter() {
        // Admission fairness: with the semaphore permanently contended by
        // short critical sections, every bounded acquire either gets a slot
        // or returns within its bound — no waiter hangs past the ceiling.
        let sem = Arc::new(Semaphore::new(2));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let sem = sem.clone();
            handles.push(std::thread::spawn(move || {
                let mut max_wait = Duration::ZERO;
                for _ in 0..25 {
                    let start = std::time::Instant::now();
                    if let Some((_p, _)) = sem.try_acquire_for(Duration::from_millis(200)) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    max_wait = max_wait.max(start.elapsed());
                }
                max_wait
            }));
        }
        for h in handles {
            let max_wait = h.join().unwrap();
            // Bound + critical section + generous scheduler slack.
            assert!(
                max_wait < Duration::from_secs(2),
                "a waiter was starved: {max_wait:?}"
            );
        }
    }

    #[test]
    fn dropping_a_permit_unblocks_a_waiter() {
        let sem = Arc::new(Semaphore::new(1));
        let (p, wait) = sem.acquire();
        assert!(wait < Duration::from_secs(1));
        let sem2 = sem.clone();
        let waiter = std::thread::spawn(move || {
            let (_p, wait) = sem2.acquire();
            wait
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(p);
        let waited = waiter.join().unwrap();
        assert!(waited >= Duration::from_millis(5), "waiter did not queue");
    }
}
