//! Admission control: a counting semaphore bounding concurrent evaluations.
//!
//! Every query acquires a permit before evaluating and releases it on drop
//! (RAII), so at most `permits` saturations run at once no matter how many
//! threads call into the service. Waiting is FIFO-ish (condvar wakeup
//! order); the time spent waiting is reported per query as `queue_wait` in
//! [`crate::stats::ServeStats`].

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A counting semaphore (std-only: mutex + condvar).
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// A semaphore with `permits` concurrent slots (floored at 1).
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Blocks until a slot is free; returns the slot and how long the
    /// caller queued for it.
    pub fn acquire(&self) -> (Permit<'_>, Duration) {
        let start = Instant::now();
        let mut free = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *free == 0 {
            free = self
                .available
                .wait(free)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
        (Permit { semaphore: self }, start.elapsed())
    }
}

/// An acquired slot; dropping it releases the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    semaphore: &'a Semaphore,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut free = self
            .semaphore
            .permits
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *free += 1;
        self.semaphore.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn permits_bound_concurrency() {
        let sem = Arc::new(Semaphore::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (sem, running, peak) = (sem.clone(), running.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let (_permit, _wait) = sem.acquire();
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                running.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "semaphore over-admitted");
    }

    #[test]
    fn dropping_a_permit_unblocks_a_waiter() {
        let sem = Arc::new(Semaphore::new(1));
        let (p, wait) = sem.acquire();
        assert!(wait < Duration::from_secs(1));
        let sem2 = sem.clone();
        let waiter = std::thread::spawn(move || {
            let (_p, wait) = sem2.acquire();
            wait
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(p);
        let waited = waiter.join().unwrap();
        assert!(waited >= Duration::from_millis(5), "waiter did not queue");
    }
}
