//! `recurs-serve` — a long-lived, thread-safe query service over a linear
//! recursion.
//!
//! The CLI evaluates one query per process: parse, classify, saturate,
//! exit. This crate is the serving layer the ROADMAP's production goal
//! needs: it owns an `Arc`-snapshotted database and answers many concurrent
//! *bound* queries without redundant saturation.
//!
//! * **Snapshot isolation** ([`snapshot`]): readers evaluate against an
//!   immutable versioned snapshot; writers install the next version
//!   copy-on-write without blocking in-flight queries.
//! * **Incremental updates** ([`QueryService::apply_update`]): ground fact
//!   batches (`+fact` / `-fact`) normalize to a net EDB delta; the
//!   `recurs-ivm` counting/DRed maintenance patches the service's
//!   materialized view and the warm cache entries in place instead of
//!   recomputing, and all-no-op groups don't even bump the version.
//! * **Class-aware point-query kernels** ([`kernel`]): per query, the
//!   classification from `recurs-core` dispatches to rank-bounded unrolling
//!   (provably bounded classes — no fixpoint loop at all), magic-sets
//!   iteration seeded with the query constants (one-directional classes),
//!   or governed full saturation (everything else).
//! * **Saturation cache** ([`cache`]): a sharded LRU keyed by
//!   `(program fingerprint, snapshot version, adorned query)`; only
//!   complete answers are admitted, and a snapshot change invalidates
//!   precisely the dead version's entries.
//! * **Admission control** ([`admission`]): a semaphore bounds concurrent
//!   evaluations; every query runs under an
//!   [`EvalBudget`](recurs_datalog::govern::EvalBudget) and reports the
//!   engine's `Complete | Truncated` contract.
//! * **Observability** ([`stats`]): per-query [`ServeStats`] aggregate into
//!   a service-wide [`ServiceStats`] snapshot exportable as JSON.
//! * **Line protocol** ([`protocol`]): the `recurs serve --stdin` wire
//!   format — one request per line, one JSON reply per line.
//!
//! ```
//! use recurs_datalog::{database::Database, parser, relation::Relation};
//! use recurs_datalog::validate::validate_with_generic_exit;
//! use recurs_serve::{QueryService, ServeConfig};
//!
//! let program = parser::parse_program(
//!     "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap();
//! let lr = validate_with_generic_exit(&program).unwrap();
//! let mut db = Database::new();
//! db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
//! db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
//! let service = QueryService::new(lr, db, ServeConfig::default());
//!
//! let q = parser::parse_atom("P(1, y)").unwrap();
//! let reply = service.query(&q).unwrap();
//! assert!(reply.outcome.is_complete());
//! assert_eq!(reply.answers.len(), 2); // 1 → 2, 1 → 3
//! assert!(service.query(&q).unwrap().stats.cache.label() == "hit");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Library paths must surface failures as `Err`, never panic on input; unit
// tests (compiled only under cfg(test)) are exempt. CI runs clippy with
// `-D warnings`, making this a hard gate.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod cache;
pub mod error;
pub mod kernel;
pub mod protocol;
pub mod service;
pub mod snapshot;
pub mod stats;
pub mod version;

pub use cache::{CacheCounters, QueryPattern, SaturationCache};
pub use error::ServeError;
pub use kernel::{PointAnswer, PointKernelKind, PointPlans};
pub use recurs_ivm::FactOp;
pub use service::{QueryService, Reply, ServeConfig, UpdateOutcome};
pub use snapshot::{Snapshot, SnapshotStore, SnapshotUpdate};
pub use stats::{CacheOutcome, ServeStats, ServiceStats};
pub use version::Version;
