//! Class-aware point-query kernels.
//!
//! The paper's classification pays off at query time: most selected queries
//! never need the full fixpoint. The dispatch table, applied per query
//! against the service's precomputed [`Classification`]:
//!
//! | Condition                                        | Kernel                     |
//! |--------------------------------------------------|----------------------------|
//! | proven rank bound (A2/A4, bounded B, acyclic D)  | [`PointKernelKind::BoundedUnroll`] — evaluate the `rank + 1` non-recursive levels with the query constants pushed in; **no fixpoint loop ever runs** |
//! | one-directional (A1/A3/A5) and ≥ 1 bound argument | [`PointKernelKind::MagicIterate`] — iterate the magic-transformed program from `recurs_core::magic` seeded with the query constants, under the query budget |
//! | class C/E/F, or an all-free query                | [`PointKernelKind::FullSaturation`] — governed full saturation with the engine kernel selected from the classification |
//!
//! Every kernel returns the existing `Complete | Truncated` contract: a
//! truncated answer is always a sound under-approximation of the true
//! answer set.

use crate::error::ServeError;
use recurs_core::{bounded, magic, Classification};
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::database::Database;
use recurs_datalog::eval::answer_query;
use recurs_datalog::govern::{EvalBudget, Outcome};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::rule::{LinearRecursion, Program};
use recurs_datalog::term::{Atom, Term};
use recurs_engine::{EngineConfig, EngineMode};
use recurs_obs::Obs;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Which point-query kernel the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKernelKind {
    /// Rank-bounded unrolling: the formula is provably bounded, so the
    /// answer is the union of `rank + 1` non-recursive levels. Runs no
    /// fixpoint loop at all.
    BoundedUnroll {
        /// The proven rank bound.
        rank: u64,
    },
    /// Magic-sets iteration seeded with the query's constants: only tuples
    /// reachable from the query's bindings are derived.
    MagicIterate,
    /// Governed full saturation of the recursion, then a select/project of
    /// the query over the fixpoint.
    FullSaturation,
    /// Select/project over the service's incrementally maintained
    /// materialization of the recursion — no evaluation at all. Used when
    /// the view's version matches the query's snapshot.
    MaterializedView,
}

impl PointKernelKind {
    /// Low-cardinality dispatch-family label for metrics: `"bounded"`,
    /// `"magic"`, `"saturate"`, or `"materialized"` (the rank is dropped so
    /// label sets stay bounded regardless of the served program).
    pub fn family(&self) -> &'static str {
        match self {
            PointKernelKind::BoundedUnroll { .. } => "bounded",
            PointKernelKind::MagicIterate => "magic",
            PointKernelKind::FullSaturation => "saturate",
            PointKernelKind::MaterializedView => "materialized",
        }
    }

    /// Short label for reports, e.g. `"bounded(2)"`, `"magic"`, `"saturate"`.
    pub fn label(&self) -> String {
        match self {
            PointKernelKind::BoundedUnroll { rank } => format!("bounded({rank})"),
            PointKernelKind::MagicIterate => "magic".to_string(),
            PointKernelKind::FullSaturation => "saturate".to_string(),
            PointKernelKind::MaterializedView => "materialized".to_string(),
        }
    }
}

impl serde::Serialize for PointKernelKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::string(self.label())
    }
}

/// One answered point query.
#[derive(Debug)]
pub struct PointAnswer {
    /// The answer relation, over the query's distinct variables in
    /// first-occurrence order (arity 0 = boolean query: non-empty means yes).
    pub answers: Relation,
    /// Complete, or soundly truncated by the budget.
    pub outcome: Outcome,
    /// The kernel that produced the answer.
    pub kernel: PointKernelKind,
    /// Fixpoint iterations run (always 0 for the bounded kernel — the
    /// acceptance criterion "iterations ≤ computed rank" holds trivially).
    pub fixpoint_iterations: usize,
    /// Tuples derived while answering.
    pub tuples_derived: usize,
}

/// Precompiled per-program state shared by all queries: the classification,
/// the bounded plan (if the formula is provably bounded), the saturation
/// program, and a lazily-built cache of magic plans keyed by query form.
#[derive(Debug)]
pub struct PointPlans {
    lr: LinearRecursion,
    classification: Classification,
    full_program: Program,
    bounded: Option<bounded::BoundedPlan>,
    magic: Mutex<HashMap<QueryForm, Arc<magic::MagicPlan>>>,
}

impl PointPlans {
    /// Classifies the recursion and precompiles what can be precompiled.
    pub fn new(lr: LinearRecursion) -> PointPlans {
        let classification = Classification::of(&lr.recursive_rule);
        let bounded = bounded::build_plan(&lr);
        let full_program = lr.to_program();
        PointPlans {
            lr,
            classification,
            full_program,
            bounded,
            magic: Mutex::new(HashMap::new()),
        }
    }

    /// The recursion being served.
    pub fn recursion(&self) -> &LinearRecursion {
        &self.lr
    }

    /// The classification driving kernel dispatch.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// Applies the dispatch table (see module docs) to a query atom.
    pub fn select(&self, query: &Atom) -> PointKernelKind {
        if let Some(plan) = &self.bounded {
            return PointKernelKind::BoundedUnroll { rank: plan.rank };
        }
        let has_bound_arg = query.terms.iter().any(|t| !t.is_var());
        if self.classification.is_transformable_to_stable() && has_bound_arg {
            return PointKernelKind::MagicIterate;
        }
        PointKernelKind::FullSaturation
    }

    /// Answers `query` against `db` under `budget` with the selected kernel.
    /// `db` is never mutated: kernels that saturate clone it first.
    pub fn answer(
        &self,
        db: &Database,
        query: &Atom,
        budget: &EvalBudget,
        mode: EngineMode,
        obs: &Obs,
    ) -> Result<PointAnswer, ServeError> {
        if query.predicate != self.lr.predicate {
            return Err(ServeError::WrongPredicate {
                got: query.predicate,
                serves: self.lr.predicate,
            });
        }
        let expected = self.lr.recursive_rule.head.arity();
        if query.arity() != expected {
            return Err(ServeError::Datalog(
                recurs_datalog::error::DatalogError::ArityMismatch {
                    predicate: query.predicate,
                    expected,
                    found: query.arity(),
                },
            ));
        }
        match self.select(query) {
            PointKernelKind::BoundedUnroll { rank } => self.answer_bounded(db, query, budget, rank),
            PointKernelKind::MagicIterate => self.answer_magic(db, query, budget, mode, obs),
            // The materialized-view kernel lives in the service (it needs the
            // maintained view); `select` never returns it, and if a caller
            // asks for it without a view the saturating kernel is the answer.
            PointKernelKind::FullSaturation | PointKernelKind::MaterializedView => {
                self.answer_saturate(db, query, budget, mode, obs)
            }
        }
    }

    /// Bounded kernel: evaluate each non-recursive level with the query
    /// constants pushed in, polling the governor between levels. Never runs
    /// a fixpoint loop, so `fixpoint_iterations` is 0 ≤ rank by construction.
    fn answer_bounded(
        &self,
        db: &Database,
        query: &Atom,
        budget: &EvalBudget,
        rank: u64,
    ) -> Result<PointAnswer, ServeError> {
        let plan = self.bounded.as_ref().ok_or(ServeError::Engine(
            recurs_engine::EngineError::Internal("bounded kernel selected without a bounded plan"),
        ))?;
        let governor = budget.start();
        let mut answers = Relation::new(distinct_var_count(query));
        let mut outcome = Outcome::Complete;
        let mut tuples = 0usize;
        for rule in &plan.levels.rules {
            if let Some(reason) = governor.poll() {
                // Sound under-approximation: the levels evaluated so far.
                outcome = Outcome::Truncated(reason);
                break;
            }
            let level = bounded::eval_specialized(db, rule, query)?;
            tuples += level.len();
            answers.union_in_place(&level);
        }
        Ok(PointAnswer {
            answers,
            outcome,
            kernel: PointKernelKind::BoundedUnroll { rank },
            fixpoint_iterations: 0,
            tuples_derived: tuples,
        })
    }

    /// Magic kernel: seed the magic predicate with the query constants and
    /// run the rewritten program to (governed) fixpoint with the engine.
    fn answer_magic(
        &self,
        db: &Database,
        query: &Atom,
        budget: &EvalBudget,
        mode: EngineMode,
        obs: &Obs,
    ) -> Result<PointAnswer, ServeError> {
        let form = QueryForm::of_atom(query);
        let plan = self.magic_plan(&form);
        let mut db = db.clone();
        if let Some(seed) = plan.seed_predicate {
            let constants: Tuple = query.terms.iter().filter_map(Term::as_const).collect();
            db.declare(seed, constants.len())?;
            db.insert(seed, constants)?;
        }
        // Declare magic predicates that are never derived (e.g. a reachable
        // all-free form has no magic), so rule bodies can always be evaluated.
        for rule in &plan.program.rules {
            for atom in &rule.body {
                if !db.contains(atom.predicate)
                    && plan.program.rules_for(atom.predicate).next().is_none()
                {
                    db.declare(atom.predicate, atom.arity())?;
                }
            }
        }
        let config = EngineConfig {
            mode,
            budget: budget.clone(),
            obs: obs.clone(),
        };
        let sat = recurs_engine::run_program(&mut db, &plan.program, &config)?;
        let adorned_query = Atom::new(plan.answer_predicate, query.terms.clone());
        let answers = answer_query(&db, &adorned_query)?;
        Ok(PointAnswer {
            answers,
            outcome: sat.outcome,
            kernel: PointKernelKind::MagicIterate,
            fixpoint_iterations: sat.stats.iteration_count(),
            tuples_derived: sat.stats.tuples_derived,
        })
    }

    /// Fallback kernel: saturate a clone of the snapshot under the budget
    /// (with the engine kernel the classification selects), then answer the
    /// query over the (possibly under-approximated) fixpoint.
    fn answer_saturate(
        &self,
        db: &Database,
        query: &Atom,
        budget: &EvalBudget,
        mode: EngineMode,
        obs: &Obs,
    ) -> Result<PointAnswer, ServeError> {
        let mut db = db.clone();
        let config = EngineConfig {
            mode,
            budget: budget.clone(),
            obs: obs.clone(),
        };
        let kernel = recurs_engine::select_kernel(&self.classification);
        let sat = recurs_engine::run_with_kernel(&mut db, &self.full_program, kernel, &config)?;
        let answers = answer_query(&db, query)?;
        Ok(PointAnswer {
            answers,
            outcome: sat.outcome,
            kernel: PointKernelKind::FullSaturation,
            fixpoint_iterations: sat.stats.iteration_count(),
            tuples_derived: sat.stats.tuples_derived,
        })
    }

    fn magic_plan(&self, form: &QueryForm) -> Arc<magic::MagicPlan> {
        let mut plans = self.magic.lock().unwrap_or_else(PoisonError::into_inner);
        plans
            .entry(form.clone())
            .or_insert_with(|| Arc::new(magic::build_plan(&self.lr, form)))
            .clone()
    }
}

/// Number of distinct variables in a query atom — the arity of its answer
/// relation.
pub(crate) fn distinct_var_count(query: &Atom) -> usize {
    let mut seen = Vec::new();
    for v in query.variables() {
        if !seen.contains(&v) {
            seen.push(v);
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    fn tc() -> LinearRecursion {
        lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
    }

    fn tc_db(n: u64) -> Database {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db
    }

    fn oracle(f: &LinearRecursion, db: &Database, query: &Atom) -> Relation {
        let mut db = db.clone();
        semi_naive(&mut db, &f.to_program(), None).unwrap();
        answer_query(&db, query).unwrap()
    }

    #[test]
    fn tc_bound_query_uses_magic_and_matches_oracle() {
        let f = tc();
        let plans = PointPlans::new(f.clone());
        let db = tc_db(12);
        let q = parse_atom("P(3, y)").unwrap();
        assert_eq!(plans.select(&q), PointKernelKind::MagicIterate);
        let got = plans
            .answer(
                &db,
                &q,
                &EvalBudget::unlimited(),
                EngineMode::Indexed,
                &Obs::noop(),
            )
            .unwrap();
        assert!(got.outcome.is_complete());
        assert_eq!(got.answers, oracle(&f, &db, &q));
    }

    #[test]
    fn tc_all_free_query_falls_back_to_saturation() {
        let f = tc();
        let plans = PointPlans::new(f.clone());
        let db = tc_db(8);
        let q = parse_atom("P(x, y)").unwrap();
        assert_eq!(plans.select(&q), PointKernelKind::FullSaturation);
        let got = plans
            .answer(
                &db,
                &q,
                &EvalBudget::unlimited(),
                EngineMode::Indexed,
                &Obs::noop(),
            )
            .unwrap();
        assert!(got.outcome.is_complete());
        assert_eq!(got.answers, oracle(&f, &db, &q));
    }

    #[test]
    fn bounded_formula_selects_bounded_kernel_with_zero_iterations() {
        // The paper's s5 rotation: pure permutational A2, rank lcm-1 = 2.
        let f = lr("P(x, y, z) :- P(y, z, x).");
        let plans = PointPlans::new(f.clone());
        let mut db = Database::new();
        db.insert_relation(
            "E",
            Relation::from_tuples(
                3,
                [
                    recurs_datalog::relation::tuple_u64([1, 2, 3]),
                    recurs_datalog::relation::tuple_u64([4, 5, 6]),
                ],
            ),
        );
        let q = parse_atom("P(2, y, z)").unwrap();
        let kernel = plans.select(&q);
        assert_eq!(kernel, PointKernelKind::BoundedUnroll { rank: 2 });
        let got = plans
            .answer(
                &db,
                &q,
                &EvalBudget::unlimited(),
                EngineMode::Indexed,
                &Obs::noop(),
            )
            .unwrap();
        assert!(got.outcome.is_complete());
        assert_eq!(got.fixpoint_iterations, 0);
        assert_eq!(got.answers, oracle(&f, &db, &q));
    }

    #[test]
    fn wrong_predicate_is_a_typed_error() {
        let plans = PointPlans::new(tc());
        let db = tc_db(4);
        let q = parse_atom("Q(1, y)").unwrap();
        let err = plans
            .answer(
                &db,
                &q,
                &EvalBudget::unlimited(),
                EngineMode::Indexed,
                &Obs::noop(),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::WrongPredicate { .. }));
    }

    #[test]
    fn wrong_arity_is_a_typed_error() {
        let plans = PointPlans::new(tc());
        let db = tc_db(4);
        let q = parse_atom("P(1, y, z)").unwrap();
        let err = plans
            .answer(
                &db,
                &q,
                &EvalBudget::unlimited(),
                EngineMode::Indexed,
                &Obs::noop(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Datalog(recurs_datalog::error::DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn cancelled_budget_truncates_soundly() {
        let f = tc();
        let plans = PointPlans::new(f.clone());
        let db = tc_db(10);
        let token = recurs_datalog::govern::CancelToken::new();
        token.cancel();
        let budget = EvalBudget::unlimited().with_cancel(token);
        let q = parse_atom("P(1, y)").unwrap();
        let got = plans
            .answer(&db, &q, &budget, EngineMode::Indexed, &Obs::noop())
            .unwrap();
        assert!(!got.outcome.is_complete());
        // Sound under-approximation: a subset of the true answers.
        let want = oracle(&f, &db, &q);
        for t in got.answers.iter() {
            assert!(want.contains(t));
        }
    }
}
