//! Per-query and service-wide statistics, exportable as JSON.

use crate::cache::CacheCounters;
use crate::kernel::PointKernelKind;
use recurs_datalog::govern::Outcome;
use std::time::Duration;

/// How the cache participated in one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Answered from the cache.
    Hit,
    /// Looked up, not found, computed (and admitted if complete).
    Miss,
    /// The cache was disabled for this query.
    Bypass,
}

impl CacheOutcome {
    /// Lower-case label: `"hit"`, `"miss"`, `"bypass"`.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

impl serde::Serialize for CacheOutcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::string(self.label())
    }
}

/// What one query cost and how it was answered.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Time spent waiting for an admission permit.
    pub queue_wait: Duration,
    /// Time spent evaluating (or looking up) the answer.
    pub eval: Duration,
    /// Cache participation.
    pub cache: CacheOutcome,
    /// The point-query kernel the dispatcher selected.
    pub kernel: PointKernelKind,
    /// Complete, or soundly truncated by the budget.
    pub outcome: Outcome,
    /// Number of answer tuples returned.
    pub answers: usize,
    /// Tuples derived while evaluating (0 on a cache hit).
    pub tuples_derived: usize,
    /// Fixpoint iterations run (0 on a cache hit and for the bounded kernel).
    pub fixpoint_iterations: usize,
    /// The snapshot version the query was answered against.
    pub snapshot_version: u64,
}

impl serde::Serialize for ServeStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            (
                "queue_wait_us",
                (self.queue_wait.as_micros() as u64).to_value(),
            ),
            ("eval_us", (self.eval.as_micros() as u64).to_value()),
            ("cache", self.cache.to_value()),
            ("kernel", self.kernel.to_value()),
            ("outcome", self.outcome.to_value()),
            ("answers", self.answers.to_value()),
            ("tuples_derived", self.tuples_derived.to_value()),
            ("fixpoint_iterations", self.fixpoint_iterations.to_value()),
            ("snapshot_version", self.snapshot_version.to_value()),
        ])
    }
}

/// A point-in-time snapshot of the service's aggregate statistics.
///
/// Derived by reading the service's metric aggregator (the same recorder
/// that feeds trace events and the `!metrics` Prometheus exposition) — see
/// [`QueryService::stats`](crate::service::QueryService::stats).
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Queries answered (successfully; errors are counted separately).
    pub queries: u64,
    /// Queries whose outcome was `Complete`.
    pub complete: u64,
    /// Queries whose outcome was `Truncated`.
    pub truncated: u64,
    /// Queries that returned a typed error.
    pub errors: u64,
    /// Queries answered by the bounded kernel.
    pub kernel_bounded: u64,
    /// Queries answered by the magic kernel.
    pub kernel_magic: u64,
    /// Queries answered by full saturation.
    pub kernel_saturate: u64,
    /// Queries answered from the maintained materialized view.
    pub kernel_materialized: u64,
    /// Summed admission queue wait, microseconds.
    pub queue_wait_us: u64,
    /// Summed evaluation time, microseconds.
    pub eval_us: u64,
    /// Summed tuples derived.
    pub tuples_derived: u64,
    /// Saturation-cache counters.
    pub cache: CacheCounters,
    /// Current snapshot version.
    pub snapshot_version: u64,
    /// Snapshots installed since the service started.
    pub snapshot_updates: u64,
    /// Update groups whose net delta was empty (version not bumped).
    pub updates_unchanged: u64,
}

impl serde::Serialize for ServiceStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("queries", self.queries.to_value()),
            ("complete", self.complete.to_value()),
            ("truncated", self.truncated.to_value()),
            ("errors", self.errors.to_value()),
            (
                "kernels",
                serde::Value::object([
                    ("bounded", self.kernel_bounded.to_value()),
                    ("magic", self.kernel_magic.to_value()),
                    ("saturate", self.kernel_saturate.to_value()),
                    ("materialized", self.kernel_materialized.to_value()),
                ]),
            ),
            ("queue_wait_us", self.queue_wait_us.to_value()),
            ("eval_us", self.eval_us.to_value()),
            ("tuples_derived", self.tuples_derived.to_value()),
            ("cache", self.cache.to_value()),
            ("snapshot_version", self.snapshot_version.to_value()),
            ("snapshot_updates", self.snapshot_updates.to_value()),
            ("updates_unchanged", self.updates_unchanged.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(kernel: PointKernelKind, outcome: Outcome) -> ServeStats {
        ServeStats {
            queue_wait: Duration::from_micros(10),
            eval: Duration::from_micros(100),
            cache: CacheOutcome::Miss,
            kernel,
            outcome,
            answers: 3,
            tuples_derived: 7,
            fixpoint_iterations: 2,
            snapshot_version: 1,
        }
    }

    #[test]
    fn serve_stats_serialize_to_json() {
        let s = stats(PointKernelKind::MagicIterate, Outcome::Complete);
        let json = serde::json::to_string(&s);
        assert!(json.contains("\"kernel\":\"magic\""));
        assert!(json.contains("\"cache\":\"miss\""));
        assert!(json.contains("\"complete\":true"));
    }
}
