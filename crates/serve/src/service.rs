//! The long-lived query service: snapshots + kernels + cache + admission.

use crate::admission::Semaphore;
use crate::cache::{canonical_query_key, CacheKey, SaturationCache};
use crate::error::ServeError;
use crate::kernel::{PointKernelKind, PointPlans};
use crate::snapshot::{Snapshot, SnapshotStore};
use crate::stats::{CacheOutcome, ServeStats, ServiceStats};
use recurs_core::Classification;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::fingerprint::{self, Fingerprint};
use recurs_datalog::govern::{EvalBudget, Outcome};
use recurs_datalog::relation::Relation;
use recurs_datalog::term::Atom;
use recurs_engine::EngineMode;
use recurs_obs::aggregate::Aggregator;
use recurs_obs::{field, Obs};
use std::sync::Arc;
use std::time::Instant;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrent evaluations (admission semaphore permits).
    pub max_concurrent: usize,
    /// Total answer-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Number of cache shards (locks).
    pub cache_shards: usize,
    /// Default per-query budget (queries may override it).
    pub budget: EvalBudget,
    /// Engine mode for saturating kernels (magic / full saturation).
    pub mode: EngineMode,
    /// External observability sink. The service always maintains its own
    /// metric [`Aggregator`] (backing [`QueryService::stats`] and
    /// [`QueryService::metrics_text`]); a recorder supplied here receives
    /// the same counter/histogram/event stream in addition.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_concurrent: 4,
            cache_capacity: 1024,
            cache_shards: 8,
            budget: EvalBudget::unlimited(),
            mode: EngineMode::Indexed,
            obs: Obs::noop(),
        }
    }
}

/// One answered query: the (shared) answer relation plus per-query stats.
#[derive(Debug)]
pub struct Reply {
    /// The answers, over the query's distinct variables in first-occurrence
    /// order. Shared: cache hits hand out the same allocation.
    pub answers: Arc<Relation>,
    /// Complete, or soundly truncated.
    pub outcome: Outcome,
    /// What the query cost.
    pub stats: ServeStats,
}

/// A thread-safe, long-lived query service for one linear recursion.
///
/// Readers call [`QueryService::query`] concurrently from any number of
/// threads; writers install new fact snapshots with [`QueryService::update`]
/// without blocking in-flight readers (copy-on-write snapshot isolation).
/// Completed answers are cached per `(program, snapshot version, adorned
/// query)`; truncated answers never are.
#[derive(Debug)]
pub struct QueryService {
    plans: PointPlans,
    program_fingerprint: Fingerprint,
    store: SnapshotStore,
    cache: Option<SaturationCache>,
    admission: Semaphore,
    metrics: Arc<Aggregator>,
    obs: Obs,
    budget: EvalBudget,
    mode: EngineMode,
}

impl QueryService {
    /// Builds a service for `lr` over an initial database (version 0).
    /// Classification and the bounded plan are computed once, here.
    pub fn new(
        lr: recurs_datalog::rule::LinearRecursion,
        db: Database,
        config: ServeConfig,
    ) -> QueryService {
        let plans = PointPlans::new(lr);
        let program_fingerprint = fingerprint::of_program(&plans.recursion().to_program());
        // The service's own aggregator is always attached (it backs
        // `stats()` and `!metrics`); an external recorder from the config
        // sees the same stream through the fan-out.
        let metrics = Arc::new(Aggregator::default());
        let mut sinks: Vec<Arc<dyn recurs_obs::Recorder>> = vec![metrics.clone()];
        if let Some(external) = config.obs.recorder() {
            sinks.push(external);
        }
        let obs = Obs::fanout(sinks);
        QueryService {
            plans,
            program_fingerprint,
            store: SnapshotStore::new(db),
            cache: (config.cache_capacity > 0).then(|| {
                SaturationCache::with_obs(config.cache_capacity, config.cache_shards, obs.clone())
            }),
            admission: Semaphore::new(config.max_concurrent),
            metrics,
            obs,
            budget: config.budget,
            mode: config.mode,
        }
    }

    /// The classification driving point-kernel dispatch.
    pub fn classification(&self) -> &Classification {
        self.plans.classification()
    }

    /// Stable fingerprint of the served program.
    pub fn program_fingerprint(&self) -> Fingerprint {
        self.program_fingerprint
    }

    /// The current snapshot (cheap; never blocks on evaluation).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.load()
    }

    /// Installs the next snapshot version copy-on-write and invalidates the
    /// cache entries of every dead version. In-flight readers keep their
    /// version; queries admitted after this returns see the new one.
    pub fn update(
        &self,
        edit: impl FnOnce(&mut Database) -> Result<(), DatalogError>,
    ) -> Result<Arc<Snapshot>, ServeError> {
        let snap = self.store.update(edit)?;
        if let Some(cache) = &self.cache {
            cache.retain_version(snap.version());
        }
        self.obs
            .counter("recurs_serve_snapshot_updates_total", &[], 1);
        if self.obs.enabled() {
            self.obs
                .event("serve.snapshot", &[("version", field::u(snap.version()))]);
        }
        Ok(snap)
    }

    /// Answers a query under the service's default budget.
    pub fn query(&self, query: &Atom) -> Result<Reply, ServeError> {
        self.query_with_budget(query, &self.budget.clone())
    }

    /// Answers a query under a caller-supplied budget. The reply's outcome
    /// is `Complete`, or `Truncated` with the answers being a sound
    /// under-approximation.
    pub fn query_with_budget(
        &self,
        query: &Atom,
        budget: &EvalBudget,
    ) -> Result<Reply, ServeError> {
        let (_permit, queue_wait) = self.admission.acquire();
        self.obs.observe(
            "recurs_serve_admission_wait_seconds",
            &[],
            queue_wait.as_secs_f64(),
        );
        let snapshot = self.store.load();
        let kernel = self.plans.select(query);
        let start = Instant::now();

        let key = self.cache.as_ref().map(|_| CacheKey {
            program: self.program_fingerprint,
            version: snapshot.version(),
            query: canonical_query_key(query),
        });
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(answers) = cache.get(key) {
                let stats = ServeStats {
                    queue_wait,
                    eval: start.elapsed(),
                    cache: CacheOutcome::Hit,
                    kernel,
                    outcome: Outcome::Complete,
                    answers: answers.len(),
                    tuples_derived: 0,
                    fixpoint_iterations: 0,
                    snapshot_version: snapshot.version(),
                };
                self.record_query(&stats);
                return Ok(Reply {
                    answers,
                    outcome: Outcome::Complete,
                    stats,
                });
            }
        }

        let point = self
            .plans
            .answer(snapshot.database(), query, budget, self.mode, &self.obs)
            .inspect_err(|_| {
                self.obs.counter("recurs_serve_query_errors_total", &[], 1);
            })?;
        let answers = Arc::new(point.answers);
        // Only complete answers are cacheable: a truncated answer depends on
        // the budget that truncated it.
        if let (Some(cache), Some(key), true) = (&self.cache, key, point.outcome.is_complete()) {
            cache.insert(key, answers.clone());
        }
        let stats = ServeStats {
            queue_wait,
            eval: start.elapsed(),
            cache: if self.cache.is_some() {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Bypass
            },
            kernel: point.kernel,
            outcome: point.outcome,
            answers: answers.len(),
            tuples_derived: point.tuples_derived,
            fixpoint_iterations: point.fixpoint_iterations,
            snapshot_version: snapshot.version(),
        };
        self.record_query(&stats);
        Ok(Reply {
            answers,
            outcome: point.outcome,
            stats,
        })
    }

    /// Feeds one answered query into the recorder: the per-kernel latency
    /// histogram, the labelled query counter, the summed-cost counters the
    /// derived [`ServiceStats`] view reads back, and a `serve.query` event.
    fn record_query(&self, stats: &ServeStats) {
        if !self.obs.enabled() {
            return;
        }
        let kernel = stats.kernel.family();
        let cache = stats.cache.label();
        let outcome = if stats.outcome.is_complete() {
            "complete"
        } else {
            "truncated"
        };
        self.obs.counter(
            "recurs_serve_queries_total",
            &[("kernel", kernel), ("cache", cache), ("outcome", outcome)],
            1,
        );
        self.obs.observe(
            "recurs_serve_query_seconds",
            &[("kernel", kernel)],
            stats.eval.as_secs_f64(),
        );
        self.obs.counter(
            "recurs_serve_queue_wait_us_total",
            &[],
            stats.queue_wait.as_micros() as u64,
        );
        self.obs.counter(
            "recurs_serve_eval_us_total",
            &[],
            stats.eval.as_micros() as u64,
        );
        self.obs.counter(
            "recurs_serve_tuples_derived_total",
            &[],
            stats.tuples_derived as u64,
        );
        let mut fields = vec![
            ("kernel", field::s(stats.kernel.label())),
            ("cache", field::s(cache)),
            ("outcome", field::s(outcome)),
            ("queue_wait_us", field::us(stats.queue_wait)),
            ("eval_us", field::us(stats.eval)),
            ("answers", field::uz(stats.answers)),
            ("tuples_derived", field::uz(stats.tuples_derived)),
            ("fixpoint_iterations", field::uz(stats.fixpoint_iterations)),
            ("snapshot_version", field::u(stats.snapshot_version)),
        ];
        if let Some(reason) = stats.outcome.truncation() {
            fields.push(("truncation", field::s(reason.to_string())));
        }
        self.obs.event("serve.query", &fields);
    }

    /// Which kernel the dispatcher would select for a query.
    pub fn kernel_for(&self, query: &Atom) -> PointKernelKind {
        self.plans.select(query)
    }

    /// A point-in-time snapshot of the service-wide statistics, derived by
    /// reading the service's metric aggregator back — the same recorder the
    /// trace events and `!metrics` exposition are fed from, so the two
    /// views can never disagree.
    pub fn stats(&self) -> ServiceStats {
        let snapshot = self.store.load();
        let m = &self.metrics;
        let q = "recurs_serve_queries_total";
        ServiceStats {
            queries: m.counter_where(q, &[]),
            complete: m.counter_where(q, &[("outcome", "complete")]),
            truncated: m.counter_where(q, &[("outcome", "truncated")]),
            errors: m.counter_value("recurs_serve_query_errors_total", &[]),
            kernel_bounded: m.counter_where(q, &[("kernel", "bounded")]),
            kernel_magic: m.counter_where(q, &[("kernel", "magic")]),
            kernel_saturate: m.counter_where(q, &[("kernel", "saturate")]),
            queue_wait_us: m.counter_value("recurs_serve_queue_wait_us_total", &[]),
            eval_us: m.counter_value("recurs_serve_eval_us_total", &[]),
            tuples_derived: m.counter_value("recurs_serve_tuples_derived_total", &[]),
            cache: self
                .cache
                .as_ref()
                .map(SaturationCache::counters)
                .unwrap_or_default(),
            snapshot_version: snapshot.version(),
            snapshot_updates: m.counter_value("recurs_serve_snapshot_updates_total", &[]),
        }
    }

    /// The service's metrics in Prometheus text exposition format,
    /// terminated by a `# EOF` line (which the `!metrics` protocol command
    /// uses as its framing marker).
    pub fn metrics_text(&self) -> String {
        self.metrics.prometheus_text()
    }

    /// The service-wide statistics as a JSON object (single line).
    pub fn stats_json(&self) -> String {
        serde::json::to_string(&self.stats())
    }

    /// Number of live cache entries (0 when the cache is disabled).
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, SaturationCache::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::relation::tuple_u64;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn tc_service(n: u64, config: ServeConfig) -> QueryService {
        let lr = validate_with_generic_exit(
            &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        QueryService::new(lr, db, config)
    }

    #[test]
    fn repeated_query_hits_the_cache() {
        let service = tc_service(10, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        let first = service.query(&q).unwrap();
        assert_eq!(first.stats.cache, CacheOutcome::Miss);
        let second = service.query(&q).unwrap();
        assert_eq!(second.stats.cache, CacheOutcome::Hit);
        assert_eq!(first.answers, second.answers);
        // Alpha-equivalent query shares the entry.
        let renamed = parse_atom("P(1, z)").unwrap();
        assert_eq!(
            service.query(&renamed).unwrap().stats.cache,
            CacheOutcome::Hit
        );
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 2);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn disabled_cache_reports_bypass() {
        let service = tc_service(
            6,
            ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let q = parse_atom("P(1, y)").unwrap();
        assert_eq!(service.query(&q).unwrap().stats.cache, CacheOutcome::Bypass);
        assert_eq!(service.query(&q).unwrap().stats.cache, CacheOutcome::Bypass);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn update_installs_version_and_invalidates_cache() {
        let service = tc_service(5, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        let before = service.query(&q).unwrap();
        assert_eq!(before.stats.snapshot_version, 0);
        assert!(service.cache_len() > 0);
        // Extend the chain: 5 → 6.
        service
            .update(|db| {
                db.insert("A", tuple_u64([5, 6]))?;
                db.insert("E", tuple_u64([5, 6]))?;
                Ok(())
            })
            .unwrap();
        assert_eq!(service.cache_len(), 0, "stale entries must be invalidated");
        let after = service.query(&q).unwrap();
        assert_eq!(after.stats.cache, CacheOutcome::Miss);
        assert_eq!(after.stats.snapshot_version, 1);
        assert_eq!(after.answers.len(), before.answers.len() + 1);
    }

    #[test]
    fn truncated_answers_are_not_cached() {
        let service = tc_service(30, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        let tight = EvalBudget::unlimited().with_max_iterations(2);
        let reply = service.query_with_budget(&q, &tight).unwrap();
        assert!(!reply.outcome.is_complete());
        assert_eq!(service.cache_len(), 0);
        // The next (unbudgeted) query must not see the truncated answer.
        let full = service.query(&q).unwrap();
        assert_eq!(full.stats.cache, CacheOutcome::Miss);
        assert!(full.outcome.is_complete());
        assert!(full.answers.len() > reply.answers.len());
    }

    #[test]
    fn external_recorder_sees_query_and_snapshot_events() {
        let capture = std::sync::Arc::new(recurs_obs::CaptureRecorder::new());
        let service = tc_service(
            8,
            ServeConfig {
                obs: recurs_obs::Obs::new(capture.clone()),
                ..ServeConfig::default()
            },
        );
        let q = parse_atom("P(1, y)").unwrap();
        service.query(&q).unwrap();
        service.query(&q).unwrap();
        service
            .update(|db| {
                db.insert("A", tuple_u64([8, 9]))?;
                Ok(())
            })
            .unwrap();
        let queries = capture.events_of("serve.query");
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].text("cache"), Some("miss"));
        assert_eq!(queries[1].text("cache"), Some("hit"));
        assert_eq!(queries[0].text("outcome"), Some("complete"));
        assert_eq!(queries[0].uint("snapshot_version"), Some(0));
        let snaps = capture.events_of("serve.snapshot");
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].uint("version"), Some(1));
        // The external recorder sees the same counters the derived
        // ServiceStats view reads from the service's own aggregator.
        assert_eq!(capture.counter_where("recurs_serve_queries_total", &[]), 2);
        assert_eq!(
            capture.counter_where("recurs_serve_cache_ops_total", &[("op", "hit")]),
            1
        );
    }

    #[test]
    fn derived_stats_match_the_recorder_stream() {
        let service = tc_service(10, ServeConfig::default());
        let q1 = parse_atom("P(1, y)").unwrap();
        let q2 = parse_atom("P(2, y)").unwrap();
        service.query(&q1).unwrap();
        service.query(&q1).unwrap(); // hit
        service.query(&q2).unwrap();
        let stats = service.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.complete, 3);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.kernel_magic, 3);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 2);
        // The Prometheus exposition is fed by the same aggregator.
        let text = service.metrics_text();
        assert!(text.contains("recurs_serve_queries_total"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn stats_json_is_one_line_with_expected_fields() {
        let service = tc_service(6, ServeConfig::default());
        let q = parse_atom("P(2, y)").unwrap();
        service.query(&q).unwrap();
        let json = service.stats_json();
        assert!(!json.contains('\n'));
        for field in [
            "\"queries\":1",
            "\"kernels\"",
            "\"cache\"",
            "\"snapshot_version\":0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
