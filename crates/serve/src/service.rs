//! The long-lived query service: snapshots + kernels + cache + admission.

use crate::admission::{Permit, Semaphore};
use crate::cache::{canonical_query_key, CacheKey, QueryPattern, SaturationCache};
use crate::error::ServeError;
use crate::kernel::{PointKernelKind, PointPlans};
use crate::snapshot::{Snapshot, SnapshotStore, SnapshotUpdate};
use crate::stats::{CacheOutcome, ServeStats, ServiceStats};
use crate::version::Version;
use recurs_core::Classification;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::answer_query;
use recurs_datalog::fingerprint::{self, Fingerprint};
use recurs_datalog::govern::{EvalBudget, Outcome};
use recurs_datalog::relation::Relation;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::term::Atom;
use recurs_engine::EngineMode;
use recurs_igraph::component::ComponentKind;
use recurs_ivm::{
    explain_fact, verify_tree, DerivationNode, EdbDelta, FactOp, IdbPatch, Materialization,
    WhyOutcome,
};
use recurs_obs::aggregate::Aggregator;
use recurs_obs::{field, FlightRecorder, Obs, SpanId, TraceCtx, TraceId};
use serde::{Serialize as _, Value};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrent evaluations (admission semaphore permits).
    pub max_concurrent: usize,
    /// Total answer-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Number of cache shards (locks).
    pub cache_shards: usize,
    /// Default per-query budget (queries may override it).
    pub budget: EvalBudget,
    /// Engine mode for saturating kernels (magic / full saturation).
    pub mode: EngineMode,
    /// External observability sink. The service always maintains its own
    /// metric [`Aggregator`] (backing [`QueryService::stats`] and
    /// [`QueryService::metrics_text`]); a recorder supplied here receives
    /// the same counter/histogram/event stream in addition.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_concurrent: 4,
            cache_capacity: 1024,
            cache_shards: 8,
            budget: EvalBudget::unlimited(),
            mode: EngineMode::Indexed,
            obs: Obs::noop(),
        }
    }
}

/// One answered query: the (shared) answer relation plus per-query stats.
#[derive(Debug)]
pub struct Reply {
    /// The answers, over the query's distinct variables in first-occurrence
    /// order. Shared: cache hits hand out the same allocation.
    pub answers: Arc<Relation>,
    /// Complete, or soundly truncated.
    pub outcome: Outcome,
    /// What the query cost.
    pub stats: ServeStats,
    /// The request-scoped trace id, when the query ran under a trace
    /// context ([`QueryService::query_traced`]).
    pub trace: Option<TraceId>,
}

/// What [`QueryService::apply_update`] did.
#[derive(Debug)]
pub enum UpdateOutcome {
    /// Every operation was a no-op (duplicate insert, absent delete, or a
    /// cancelling pair): nothing changed and the version did not move.
    Unchanged {
        /// The still-current version.
        version: Version,
    },
    /// A new snapshot version was installed.
    Installed {
        /// The newly installed snapshot.
        snapshot: Arc<Snapshot>,
        /// Net EDB tuples inserted.
        inserted: usize,
        /// Net EDB tuples deleted.
        deleted: usize,
        /// How the materialized view absorbed the change — a
        /// [`MaintenancePath`](recurs_ivm::MaintenancePath) label
        /// (`"bounded-recount"`, `"frontier"`, `"generic-dred"`,
        /// `"cold-fallback"`), `"saturate"` when the view was (re)built from
        /// scratch, or `"none"` when no view could be maintained.
        maintenance: &'static str,
    },
}

/// The incrementally maintained fixpoint, tagged with the snapshot version
/// it is exact for.
#[derive(Debug)]
struct ViewState {
    version: Version,
    mat: Materialization,
}

/// A thread-safe, long-lived query service for one linear recursion.
///
/// Readers call [`QueryService::query`] concurrently from any number of
/// threads; writers install new fact snapshots with
/// [`QueryService::apply_update`] (incrementally maintained) or
/// [`QueryService::update`] (generic edits) without blocking in-flight
/// readers (copy-on-write snapshot isolation). Completed answers are cached
/// per `(program, snapshot version, adorned query)`; truncated answers never
/// are.
#[derive(Debug)]
pub struct QueryService {
    plans: PointPlans,
    program_fingerprint: Fingerprint,
    store: SnapshotStore,
    cache: Option<SaturationCache>,
    /// Lazily built on the first [`QueryService::apply_update`]; patched in
    /// place by every one after. Queries read it when its version matches
    /// their snapshot. Dropped by generic [`QueryService::update`] edits.
    view: RwLock<Option<ViewState>>,
    admission: Semaphore,
    metrics: Arc<Aggregator>,
    /// Always-on ring of recent events, dumped on panic or forced drain.
    flight: Arc<FlightRecorder>,
    obs: Obs,
    budget: EvalBudget,
    mode: EngineMode,
}

impl QueryService {
    /// Builds a service for `lr` over an initial database (version 0).
    /// Classification and the bounded plan are computed once, here.
    pub fn new(
        lr: recurs_datalog::rule::LinearRecursion,
        db: Database,
        config: ServeConfig,
    ) -> QueryService {
        let plans = PointPlans::new(lr);
        let program_fingerprint = fingerprint::of_program(&plans.recursion().to_program());
        // The service's own aggregator is always attached (it backs
        // `stats()` and `!metrics`), as is the flight recorder (it backs
        // postmortem dumps); an external recorder from the config sees the
        // same stream through the fan-out.
        let metrics = Arc::new(Aggregator::default());
        let flight = Arc::new(FlightRecorder::default());
        let mut sinks: Vec<Arc<dyn recurs_obs::Recorder>> = vec![metrics.clone(), flight.clone()];
        if let Some(external) = config.obs.recorder() {
            sinks.push(external);
        }
        let obs = Obs::fanout(sinks);
        QueryService {
            plans,
            program_fingerprint,
            store: SnapshotStore::new(db),
            cache: (config.cache_capacity > 0).then(|| {
                SaturationCache::with_obs(config.cache_capacity, config.cache_shards, obs.clone())
            }),
            view: RwLock::new(None),
            admission: Semaphore::new(config.max_concurrent),
            metrics,
            flight,
            obs,
            budget: config.budget,
            mode: config.mode,
        }
    }

    /// The classification driving point-kernel dispatch.
    pub fn classification(&self) -> &Classification {
        self.plans.classification()
    }

    /// Stable fingerprint of the served program.
    pub fn program_fingerprint(&self) -> Fingerprint {
        self.program_fingerprint
    }

    /// The current snapshot (cheap; never blocks on evaluation).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.load()
    }

    /// Installs the next snapshot version copy-on-write and invalidates the
    /// cache entries of every dead version. In-flight readers keep their
    /// version; queries admitted after this returns see the new one.
    ///
    /// This is the *generic* edit path: the change is arbitrary, so the
    /// materialized view is dropped and warm cache entries cannot be
    /// carried. For ground fact batches prefer
    /// [`QueryService::apply_update`], which maintains both incrementally.
    pub fn update(
        &self,
        edit: impl FnOnce(&mut Database) -> Result<(), DatalogError>,
    ) -> Result<Arc<Snapshot>, ServeError> {
        let snap = self.store.update(edit)?;
        *self.view.write().unwrap_or_else(PoisonError::into_inner) = None;
        if let Some(cache) = &self.cache {
            cache.retain_version(snap.version());
        }
        self.obs
            .counter("recurs_serve_snapshot_updates_total", &[], 1);
        if self.obs.enabled() {
            self.obs.event(
                "serve.snapshot",
                &[("version", field::u(snap.version().get()))],
            );
        }
        Ok(snap)
    }

    /// Applies a group of ground fact operations atomically: the group's net
    /// delta is normalized against the current snapshot (duplicate inserts
    /// and absent deletes are no-ops; an all-no-op group returns
    /// [`UpdateOutcome::Unchanged`] without bumping the version), the next
    /// snapshot is installed copy-on-write, and the materialized view plus
    /// every warm cache entry are *patched in place* through counting /
    /// DRed maintenance instead of being recomputed or dropped.
    ///
    /// Operations on the recursive predicate are rejected — it is derived,
    /// never stored.
    pub fn apply_update(&self, ops: &[FactOp]) -> Result<UpdateOutcome, ServeError> {
        let served = self.plans.recursion().predicate;
        if let Some(op) = ops.iter().find(|op| op.predicate() == served) {
            return Err(ServeError::DerivedUpdate(op.predicate()));
        }
        let start = Instant::now();
        match self.store.apply_delta(ops)? {
            SnapshotUpdate::Unchanged(snap) => {
                self.record_update("unchanged", start, snap.version(), 0, 0);
                Ok(UpdateOutcome::Unchanged {
                    version: snap.version(),
                })
            }
            SnapshotUpdate::Installed {
                previous,
                snapshot,
                delta,
            } => {
                let (maintenance, idb) = self.maintain_view(&snapshot, previous, &delta);
                if let Some(cache) = &self.cache {
                    match &idb {
                        Some(patch) => cache.advance(previous, snapshot.version(), patch),
                        None => cache.retain_version(snapshot.version()),
                    }
                }
                self.obs
                    .counter("recurs_serve_snapshot_updates_total", &[], 1);
                let (inserted, deleted) = (delta.inserted_count(), delta.deleted_count());
                self.record_update(maintenance, start, snapshot.version(), inserted, deleted);
                Ok(UpdateOutcome::Installed {
                    snapshot,
                    inserted,
                    deleted,
                    maintenance,
                })
            }
        }
    }

    /// Patches (or lazily builds) the materialized view for a just-installed
    /// snapshot. Returns the maintenance label and the exact IDB patch when
    /// one exists (`None` after a cold fallback or a fresh build — the cache
    /// cannot be carried then). Never fails: a substrate error degrades to
    /// "no view" and the update stands.
    fn maintain_view(
        &self,
        snapshot: &Snapshot,
        previous: Version,
        delta: &EdbDelta,
    ) -> (&'static str, Option<IdbPatch>) {
        let mut guard = self.view.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(mut vs) = guard.take() {
            if vs.version == previous {
                match vs.mat.apply(delta, &self.budget) {
                    Ok(report) => {
                        vs.version = snapshot.version();
                        let label = report.path.label();
                        *guard = Some(vs);
                        return (label, report.idb);
                    }
                    Err(_) => return ("none", None),
                }
            }
            // A stale view (generic edits interleaved) is rebuilt below.
        }
        match Materialization::saturate(
            self.plans.recursion(),
            snapshot.database(),
            &self.budget,
            &self.obs,
        ) {
            Ok(mat) => {
                *guard = Some(ViewState {
                    version: snapshot.version(),
                    mat,
                });
                ("saturate", None)
            }
            Err(_) => ("none", None),
        }
    }

    /// Feeds one applied update into the recorder: the per-result update
    /// counter and latency histogram, and a `serve.update` event.
    fn record_update(
        &self,
        result: &'static str,
        start: Instant,
        version: Version,
        inserted: usize,
        deleted: usize,
    ) {
        if !self.obs.enabled() {
            return;
        }
        let elapsed = start.elapsed();
        self.obs
            .counter("recurs_serve_updates_total", &[("result", result)], 1);
        self.obs.observe(
            "recurs_serve_update_seconds",
            &[("result", result)],
            elapsed.as_secs_f64(),
        );
        self.obs.event(
            "serve.update",
            &[
                ("result", field::s(result)),
                ("version", field::u(version.get())),
                ("inserted", field::uz(inserted)),
                ("deleted", field::uz(deleted)),
                ("eval_us", field::us(elapsed)),
            ],
        );
    }

    /// Answers a query under the service's default budget.
    pub fn query(&self, query: &Atom) -> Result<Reply, ServeError> {
        self.query_with_budget(query, &self.budget.clone())
    }

    /// Answers a query under a caller-supplied budget. The reply's outcome
    /// is `Complete`, or `Truncated` with the answers being a sound
    /// under-approximation.
    pub fn query_with_budget(
        &self,
        query: &Atom,
        budget: &EvalBudget,
    ) -> Result<Reply, ServeError> {
        let (permit, queue_wait) = self.admission.acquire();
        self.query_admitted(query, budget, permit, queue_wait, None)
    }

    /// Answers a query under a request-scoped trace context: every event
    /// the evaluation emits (admission, cache probe, kernel dispatch)
    /// carries `trace`, and the request is decomposed into hierarchical
    /// `span` events (`request` → `admission`/`cache`/`view`/`eval`/
    /// `cache_store`) that `obsctl` reassembles into a timing tree.
    ///
    /// `max_wait = None` queues unboundedly (the stdin behavior); `Some`
    /// bounds the admission wait and sheds with
    /// [`ServeError::Overloaded`] past it, like
    /// [`QueryService::query_bounded`].
    pub fn query_traced(
        &self,
        query: &Atom,
        budget: &EvalBudget,
        max_wait: Option<Duration>,
        trace: TraceId,
    ) -> Result<Reply, ServeError> {
        let ctx = TraceCtx::new(&self.obs, trace);
        let root = ctx.root("request");
        let root_id = root.id();
        let admitted = {
            let _adm = ctx.span("admission", root_id);
            match max_wait {
                None => Some(self.admission.acquire()),
                Some(wait) => self.admission.try_acquire_for(wait),
            }
        };
        match admitted {
            Some((permit, queue_wait)) => {
                self.query_admitted(query, budget, permit, queue_wait, Some((&ctx, root_id)))
            }
            None => {
                let waited = max_wait.unwrap_or_default();
                ctx.obs().counter("recurs_serve_queries_shed_total", &[], 1);
                if ctx.obs().enabled() {
                    ctx.obs()
                        .event("serve.shed", &[("max_wait_us", field::us(waited))]);
                }
                Err(ServeError::Overloaded { waited })
            }
        }
    }

    /// Answers a query like [`QueryService::query_with_budget`], but waits
    /// at most `max_wait` for an evaluation slot. When no slot frees up in
    /// time the request is *shed* with [`ServeError::Overloaded`] — it was
    /// never evaluated and is safe to retry. This is the admission path the
    /// network front end uses: queues stay bounded and overload turns into
    /// an explicit, typed signal instead of unbounded latency.
    pub fn query_bounded(
        &self,
        query: &Atom,
        budget: &EvalBudget,
        max_wait: std::time::Duration,
    ) -> Result<Reply, ServeError> {
        match self.admission.try_acquire_for(max_wait) {
            Some((permit, queue_wait)) => {
                self.query_admitted(query, budget, permit, queue_wait, None)
            }
            None => {
                self.obs.counter("recurs_serve_queries_shed_total", &[], 1);
                if self.obs.enabled() {
                    self.obs
                        .event("serve.shed", &[("max_wait_us", field::us(max_wait))]);
                }
                Err(ServeError::Overloaded { waited: max_wait })
            }
        }
    }

    /// The post-admission query path: cache probe, view/kernel dispatch,
    /// caching, and stats. Holds `_permit` for the whole evaluation. When a
    /// trace context is supplied (`tr` = context + parent span), every
    /// emission goes through its scoped handle and each phase is wrapped in
    /// a child span.
    fn query_admitted(
        &self,
        query: &Atom,
        budget: &EvalBudget,
        _permit: Permit<'_>,
        queue_wait: std::time::Duration,
        tr: Option<(&TraceCtx, SpanId)>,
    ) -> Result<Reply, ServeError> {
        let obs = tr.map_or(&self.obs, |(ctx, _)| ctx.obs());
        let trace = tr.map(|(ctx, _)| ctx.id());
        obs.observe(
            "recurs_serve_admission_wait_seconds",
            &[],
            queue_wait.as_secs_f64(),
        );
        let snapshot = self.store.load();
        let kernel = self.plans.select(query);
        let start = Instant::now();

        let key = self.cache.as_ref().map(|_| CacheKey {
            program: self.program_fingerprint,
            version: snapshot.version(),
            query: canonical_query_key(query),
        });
        let cached = if let (Some(cache), Some(key)) = (&self.cache, &key) {
            let _probe = tr.map(|(ctx, parent)| ctx.span("cache", parent));
            cache.get(key)
        } else {
            None
        };
        if let Some(answers) = cached {
            let stats = ServeStats {
                queue_wait,
                eval: start.elapsed(),
                cache: CacheOutcome::Hit,
                kernel,
                outcome: Outcome::Complete,
                answers: answers.len(),
                tuples_derived: 0,
                fixpoint_iterations: 0,
                snapshot_version: snapshot.version().get(),
            };
            self.record_query(obs, &stats);
            return Ok(Reply {
                answers,
                outcome: Outcome::Complete,
                stats,
                trace,
            });
        }

        // The maintained view answers with a plain select/project — no
        // evaluation at all — whenever its version matches the snapshot.
        let view_answers = {
            let _view = tr.map(|(ctx, parent)| ctx.span("view", parent));
            self.view_answers(&snapshot, query)?
        };
        let (answers, outcome, kernel, tuples_derived, fixpoint_iterations) = match view_answers {
            Some(answers) => (
                Arc::new(answers),
                Outcome::Complete,
                PointKernelKind::MaterializedView,
                0,
                0,
            ),
            None => {
                let _eval = tr.map(|(ctx, parent)| ctx.span("eval", parent));
                let point = self
                    .plans
                    .answer(snapshot.database(), query, budget, self.mode, obs)
                    .inspect_err(|_| {
                        obs.counter("recurs_serve_query_errors_total", &[], 1);
                    })?;
                (
                    Arc::new(point.answers),
                    point.outcome,
                    point.kernel,
                    point.tuples_derived,
                    point.fixpoint_iterations,
                )
            }
        };
        // Only complete answers are cacheable: a truncated answer depends on
        // the budget that truncated it.
        if let (Some(cache), Some(key), true) = (&self.cache, key, outcome.is_complete()) {
            let _store = tr.map(|(ctx, parent)| ctx.span("cache_store", parent));
            cache.insert(key, answers.clone(), QueryPattern::of(query));
        }
        let stats = ServeStats {
            queue_wait,
            eval: start.elapsed(),
            cache: if self.cache.is_some() {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Bypass
            },
            kernel,
            outcome,
            answers: answers.len(),
            tuples_derived,
            fixpoint_iterations,
            snapshot_version: snapshot.version().get(),
        };
        self.record_query(obs, &stats);
        Ok(Reply {
            answers,
            outcome,
            stats,
            trace,
        })
    }

    /// Select/project over the maintained view, when it exists and is exact
    /// for the query's snapshot (and the query is for the served predicate
    /// at the right arity — anything else falls through to the kernels,
    /// which own the error taxonomy).
    fn view_answers(
        &self,
        snapshot: &Snapshot,
        query: &Atom,
    ) -> Result<Option<Relation>, ServeError> {
        let lr = self.plans.recursion();
        if query.predicate != lr.predicate || query.arity() != lr.recursive_rule.head.arity() {
            return Ok(None);
        }
        let guard = self.view.read().unwrap_or_else(PoisonError::into_inner);
        match &*guard {
            Some(vs) if vs.version == snapshot.version() => {
                Ok(Some(answer_query(vs.mat.database(), query)?))
            }
            _ => Ok(None),
        }
    }

    /// Feeds one answered query into the recorder: the per-kernel latency
    /// histogram, the labelled query counter, the summed-cost counters the
    /// derived [`ServiceStats`] view reads back, and a `serve.query` event.
    /// `obs` is the (possibly trace-scoped) handle the request runs under.
    fn record_query(&self, obs: &Obs, stats: &ServeStats) {
        if !obs.enabled() {
            return;
        }
        let kernel = stats.kernel.family();
        let cache = stats.cache.label();
        let outcome = if stats.outcome.is_complete() {
            "complete"
        } else {
            "truncated"
        };
        obs.counter(
            "recurs_serve_queries_total",
            &[("kernel", kernel), ("cache", cache), ("outcome", outcome)],
            1,
        );
        obs.observe(
            "recurs_serve_query_seconds",
            &[("kernel", kernel)],
            stats.eval.as_secs_f64(),
        );
        obs.counter(
            "recurs_serve_queue_wait_us_total",
            &[],
            stats.queue_wait.as_micros() as u64,
        );
        obs.counter(
            "recurs_serve_eval_us_total",
            &[],
            stats.eval.as_micros() as u64,
        );
        obs.counter(
            "recurs_serve_tuples_derived_total",
            &[],
            stats.tuples_derived as u64,
        );
        let mut fields = vec![
            ("kernel", field::s(stats.kernel.label())),
            ("cache", field::s(cache)),
            ("outcome", field::s(outcome)),
            ("queue_wait_us", field::us(stats.queue_wait)),
            ("eval_us", field::us(stats.eval)),
            ("answers", field::uz(stats.answers)),
            ("tuples_derived", field::uz(stats.tuples_derived)),
            ("fixpoint_iterations", field::uz(stats.fixpoint_iterations)),
            ("snapshot_version", field::u(stats.snapshot_version)),
        ];
        if let Some(reason) = stats.outcome.truncation() {
            fields.push(("truncation", field::s(reason.to_string())));
        }
        obs.event("serve.query", &fields);
    }

    /// Which kernel the dispatcher would select for a query.
    pub fn kernel_for(&self, query: &Atom) -> PointKernelKind {
        self.plans.select(query)
    }

    /// The service's observability handle: the fan-out feeding both the
    /// service's own metric aggregator (behind [`QueryService::stats`] and
    /// `!metrics`) and any external recorder from the config. Layers built
    /// on top of the service (the TCP front end) record through this handle
    /// so their counters land in the same exposition.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The default per-query budget from the service config. Callers that
    /// derive per-request budgets (e.g. deadline-scoped network requests)
    /// start from this and tighten it.
    pub fn default_budget(&self) -> &EvalBudget {
        &self.budget
    }

    /// A point-in-time snapshot of the service-wide statistics, derived by
    /// reading the service's metric aggregator back — the same recorder the
    /// trace events and `!metrics` exposition are fed from, so the two
    /// views can never disagree.
    pub fn stats(&self) -> ServiceStats {
        let snapshot = self.store.load();
        let m = &self.metrics;
        let q = "recurs_serve_queries_total";
        ServiceStats {
            queries: m.counter_where(q, &[]),
            complete: m.counter_where(q, &[("outcome", "complete")]),
            truncated: m.counter_where(q, &[("outcome", "truncated")]),
            errors: m.counter_value("recurs_serve_query_errors_total", &[]),
            kernel_bounded: m.counter_where(q, &[("kernel", "bounded")]),
            kernel_magic: m.counter_where(q, &[("kernel", "magic")]),
            kernel_saturate: m.counter_where(q, &[("kernel", "saturate")]),
            kernel_materialized: m.counter_where(q, &[("kernel", "materialized")]),
            queue_wait_us: m.counter_value("recurs_serve_queue_wait_us_total", &[]),
            eval_us: m.counter_value("recurs_serve_eval_us_total", &[]),
            tuples_derived: m.counter_value("recurs_serve_tuples_derived_total", &[]),
            cache: self
                .cache
                .as_ref()
                .map(SaturationCache::counters)
                .unwrap_or_default(),
            snapshot_version: snapshot.version().get(),
            snapshot_updates: m.counter_value("recurs_serve_snapshot_updates_total", &[]),
            updates_unchanged: m
                .counter_where("recurs_serve_updates_total", &[("result", "unchanged")]),
        }
    }

    /// The service's metrics in Prometheus text exposition format,
    /// terminated by a `# EOF` line (which the `!metrics` protocol command
    /// uses as its framing marker).
    pub fn metrics_text(&self) -> String {
        self.metrics.prometheus_text()
    }

    /// The service-wide statistics as a JSON object (single line).
    pub fn stats_json(&self) -> String {
        serde::json::to_string(&self.stats())
    }

    /// Number of live cache entries (0 when the cache is disabled).
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, SaturationCache::len)
    }

    /// The flight recorder's retained events as JSON lines — the postmortem
    /// payload a front end writes to disk when a worker panics or a drain
    /// is forced. Same shape as the trace sink, so `obsctl` reads it.
    pub fn postmortem_jsonl(&self) -> String {
        self.flight.to_jsonl()
    }

    /// Answers a query under a trace context *and* audits the plan: the
    /// reply is a JSON object carrying the classification verdict (with
    /// per-component I-graph cycle weights), which kernel ran and why, how
    /// the cache participated, the budget ceilings and headroom, and the
    /// request's span breakdown — whose root span covers the measured
    /// latency. This is the `!explain <query>` protocol command.
    pub fn explain(
        &self,
        query: &Atom,
        budget: &EvalBudget,
        max_wait: Option<Duration>,
        trace: TraceId,
    ) -> Result<Value, ServeError> {
        // Fan the request's emissions out to the normal sinks *plus* a
        // private capture, so the span breakdown can be read back without
        // requiring a trace file to be configured.
        let capture = Arc::new(recurs_obs::CaptureRecorder::new());
        let mut sinks: Vec<Arc<dyn recurs_obs::Recorder>> = Vec::with_capacity(2);
        if let Some(inner) = self.obs.recorder() {
            sinks.push(inner);
        }
        sinks.push(capture.clone());
        let base = Obs::fanout(sinks);
        let ctx = TraceCtx::new(&base, trace);

        let started = Instant::now();
        let reply = {
            let root = ctx.root("request");
            let root_id = root.id();
            let admitted = {
                let _adm = ctx.span("admission", root_id);
                match max_wait {
                    None => Some(self.admission.acquire()),
                    Some(wait) => self.admission.try_acquire_for(wait),
                }
            };
            match admitted {
                Some((permit, queue_wait)) => {
                    self.query_admitted(query, budget, permit, queue_wait, Some((&ctx, root_id)))?
                }
                None => {
                    return Err(ServeError::Overloaded {
                        waited: max_wait.unwrap_or_default(),
                    })
                }
            }
        };
        let measured_us = started.elapsed().as_micros() as u64;

        let spans: Vec<Value> = capture
            .events_of("span")
            .iter()
            .map(|e| {
                Value::object([
                    ("name", Value::string(e.text("name").unwrap_or("?"))),
                    ("span", Value::UInt(e.uint("span").unwrap_or(0))),
                    ("parent", Value::UInt(e.uint("parent").unwrap_or(0))),
                    ("start_us", Value::UInt(e.uint("start_us").unwrap_or(0))),
                    ("dur_us", Value::UInt(e.uint("dur_us").unwrap_or(0))),
                ])
            })
            .collect();

        let stats = &reply.stats;
        let kernel_reason = match (stats.cache, stats.kernel) {
            (CacheOutcome::Hit, _) => {
                "answered from the saturation cache for this snapshot version; no kernel ran"
                    .to_string()
            }
            (_, PointKernelKind::BoundedUnroll { rank }) => format!(
                "proven rank bound {rank}: the answer is the union of {} non-recursive \
                 unrolled levels, so no fixpoint loop runs",
                rank + 1
            ),
            (_, PointKernelKind::MagicIterate) => {
                "one-directional recursion with a bound argument: magic-sets iteration \
                 seeded from the query constants"
                    .to_string()
            }
            (_, PointKernelKind::MaterializedView) => {
                "the maintained materialized view is exact for this snapshot version: \
                 plain select/project, no evaluation"
                    .to_string()
            }
            (_, PointKernelKind::FullSaturation) => {
                "no proven rank bound and no usable binding: governed full saturation, \
                 then select/project"
                    .to_string()
            }
        };
        let iters = stats.fixpoint_iterations;
        let tuples = stats.tuples_derived;
        let budget_v = Value::object([
            (
                "timeout_ms",
                budget
                    .timeout
                    .map_or(Value::Null, |d| Value::UInt(d.as_millis() as u64)),
            ),
            ("max_tuples", opt_uz(budget.max_tuples)),
            ("max_iterations", opt_uz(budget.max_iterations)),
            ("spent_iterations", Value::UInt(iters as u64)),
            ("spent_tuples", Value::UInt(tuples as u64)),
            (
                "iterations_left",
                opt_uz(budget.max_iterations.map(|c| c.saturating_sub(iters))),
            ),
            (
                "tuples_left",
                opt_uz(budget.max_tuples.map(|c| c.saturating_sub(tuples))),
            ),
        ]);
        let audit = Value::object([
            ("ok", Value::Bool(true)),
            ("type", Value::string("explain")),
            ("trace", Value::string(trace.to_string())),
            ("query", Value::string(format!("{query}"))),
            (
                "classification",
                classification_value(self.classification()),
            ),
            (
                "kernel",
                Value::object([
                    ("choice", Value::string(stats.kernel.label())),
                    ("family", Value::string(stats.kernel.family())),
                    ("reason", Value::string(kernel_reason)),
                ]),
            ),
            (
                "cache",
                Value::object([
                    ("outcome", stats.cache.to_value()),
                    ("snapshot_version", stats.snapshot_version.to_value()),
                    ("entries", self.cache_len().to_value()),
                ]),
            ),
            ("budget", budget_v),
            ("outcome", stats.outcome.to_value()),
            ("answers", stats.answers.to_value()),
            (
                "queue_wait_us",
                (stats.queue_wait.as_micros() as u64).to_value(),
            ),
            ("measured_us", Value::UInt(measured_us)),
            ("spans", Value::Array(spans)),
        ]);
        if self.obs.enabled() {
            ctx.obs().event(
                "serve.explain",
                &[
                    ("kernel", field::s(stats.kernel.label())),
                    ("cache", field::s(stats.cache.label())),
                    ("measured_us", field::u(measured_us)),
                ],
            );
        }
        Ok(audit)
    }

    /// Explains why a ground fact of the served predicate is (or is not)
    /// derivable over the current snapshot: a depth-bounded backward
    /// reconstruction of a derivation tree, seeded from the maintained
    /// view's derivation counts when the view is exact for the snapshot,
    /// and cross-checked structurally before it is returned. This is the
    /// `why <fact>` protocol command and `run --why`.
    pub fn why(
        &self,
        predicate: Symbol,
        tuple: &recurs_datalog::relation::Tuple,
        max_depth: u64,
        budget: &EvalBudget,
    ) -> Result<Value, ServeError> {
        let lr = self.plans.recursion();
        if predicate != lr.predicate {
            return Err(ServeError::WrongPredicate {
                got: predicate,
                serves: lr.predicate,
            });
        }
        let start = Instant::now();
        let snapshot = self.store.load();
        // The maintained view's derivation counts are an O(1) oracle for
        // membership: count 0 short-circuits the reconstruction entirely.
        let view_count = {
            let guard = self.view.read().unwrap_or_else(PoisonError::into_inner);
            match &*guard {
                Some(vs) if vs.version == snapshot.version() => Some(vs.mat.count(tuple)),
                _ => None,
            }
        };
        let fact = render_fact(predicate, tuple);
        let outcome = if view_count == Some(0) {
            WhyOutcome::NotDerived
        } else {
            explain_fact(lr, snapshot.database(), tuple, max_depth, budget)?
        };
        let elapsed = start.elapsed();
        let mut fields = vec![
            ("ok", Value::Bool(true)),
            ("type", Value::string("why")),
            ("fact", Value::string(&fact)),
            ("snapshot_version", Value::UInt(snapshot.version().get())),
            ("view_seeded", Value::Bool(view_count.is_some())),
        ];
        let derived;
        match outcome {
            WhyOutcome::Derived(tree) => {
                // A tree that fails the structural check is a provenance
                // bug, not a client error — refuse to present it.
                if let Err(defect) = verify_tree(lr, snapshot.database(), &tree) {
                    if self.obs.enabled() {
                        self.obs.event(
                            "serve.why",
                            &[("fact", field::s(&fact)), ("defect", field::s(defect))],
                        );
                    }
                    return Err(ServeError::Engine(recurs_engine::EngineError::Internal(
                        "derivation tree failed structural verification",
                    )));
                }
                derived = true;
                fields.push(("derived", Value::Bool(true)));
                fields.push(("depth", Value::UInt(tree.depth() as u64)));
                fields.push(("size", Value::UInt(tree.size() as u64)));
                fields.push(("tree", tree_value(&tree)));
            }
            WhyOutcome::NotDerived => {
                derived = false;
                fields.push(("derived", Value::Bool(false)));
            }
            WhyOutcome::DepthExceeded { rank, max_depth } => {
                derived = true;
                fields.push(("derived", Value::Bool(true)));
                fields.push(("truncated", Value::Bool(true)));
                fields.push(("rank", Value::UInt(rank)));
                fields.push(("max_depth", Value::UInt(max_depth)));
            }
        }
        if self.obs.enabled() {
            self.obs.event(
                "serve.why",
                &[
                    ("fact", field::s(fact)),
                    ("derived", field::b(derived)),
                    ("eval_us", field::us(elapsed)),
                ],
            );
        }
        Ok(Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ))
    }
}

/// `Some(n)` → JSON number, `None` → JSON null.
fn opt_uz(v: Option<usize>) -> Value {
    v.map_or(Value::Null, |n| Value::UInt(n as u64))
}

/// Renders `pred(c1, c2)` for a ground tuple.
fn render_fact(predicate: Symbol, tuple: &recurs_datalog::relation::Tuple) -> String {
    let args: Vec<&str> = tuple.iter().map(|v| v.as_str()).collect();
    format!("{predicate}({})", args.join(", "))
}

/// The classification verdict as JSON, mirroring the CLI's
/// `classify.verdict` event: overall class, per-component class labels with
/// I-graph cycle counts and (for independent cycles) weight/directionality,
/// and the proven rank bound when one exists.
fn classification_value(c: &Classification) -> Value {
    let mut class_iter = c.component_classes.iter();
    let components: Vec<Value> = c
        .components
        .iter()
        .filter(|comp| comp.is_nontrivial())
        .map(|comp| {
            let label = class_iter.next().map_or("?", |cl| cl.label());
            let mut fields = vec![
                ("class", Value::string(label)),
                ("cycles", Value::UInt(comp.cycles.len() as u64)),
            ];
            if let ComponentKind::IndependentCycle(cy) = &comp.kind {
                fields.push(("weight", Value::UInt(cy.magnitude())));
                fields.push(("one_directional", Value::Bool(cy.one_directional)));
                fields.push(("rotational", Value::Bool(cy.rotational)));
            }
            Value::object(fields)
        })
        .collect();
    let mut fields = vec![
        ("class", Value::string(c.class.label())),
        ("components", Value::Array(components)),
        (
            "one_directional",
            Value::Bool(c.is_transformable_to_stable()),
        ),
    ];
    if let Some(rank) = c.rank_bound() {
        fields.push(("rank_bound", Value::UInt(rank)));
    }
    Value::object(fields)
}

/// A derivation tree as nested JSON: `{"fact":"P(1, 2)","rule":
/// "recursive","children":[...]}` with leaves labelled `"edb"` and exit
/// rules `"exit[i]"`.
fn tree_value(node: &DerivationNode) -> Value {
    let rule = match node.rule {
        None => "edb".to_string(),
        Some(0) => "recursive".to_string(),
        Some(i) => format!("exit[{}]", i - 1),
    };
    Value::object([
        ("fact", Value::string(node.fact())),
        ("rule", Value::string(rule)),
        (
            "children",
            Value::Array(node.children.iter().map(tree_value).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::relation::tuple_u64;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn tc_service(n: u64, config: ServeConfig) -> QueryService {
        let lr = validate_with_generic_exit(
            &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        QueryService::new(lr, db, config)
    }

    #[test]
    fn repeated_query_hits_the_cache() {
        let service = tc_service(10, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        let first = service.query(&q).unwrap();
        assert_eq!(first.stats.cache, CacheOutcome::Miss);
        let second = service.query(&q).unwrap();
        assert_eq!(second.stats.cache, CacheOutcome::Hit);
        assert_eq!(first.answers, second.answers);
        // Alpha-equivalent query shares the entry.
        let renamed = parse_atom("P(1, z)").unwrap();
        assert_eq!(
            service.query(&renamed).unwrap().stats.cache,
            CacheOutcome::Hit
        );
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 2);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn disabled_cache_reports_bypass() {
        let service = tc_service(
            6,
            ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let q = parse_atom("P(1, y)").unwrap();
        assert_eq!(service.query(&q).unwrap().stats.cache, CacheOutcome::Bypass);
        assert_eq!(service.query(&q).unwrap().stats.cache, CacheOutcome::Bypass);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn update_installs_version_and_invalidates_cache() {
        let service = tc_service(5, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        let before = service.query(&q).unwrap();
        assert_eq!(before.stats.snapshot_version, 0);
        assert!(service.cache_len() > 0);
        // Extend the chain: 5 → 6.
        service
            .update(|db| {
                db.insert("A", tuple_u64([5, 6]))?;
                db.insert("E", tuple_u64([5, 6]))?;
                Ok(())
            })
            .unwrap();
        assert_eq!(service.cache_len(), 0, "stale entries must be invalidated");
        let after = service.query(&q).unwrap();
        assert_eq!(after.stats.cache, CacheOutcome::Miss);
        assert_eq!(after.stats.snapshot_version, 1);
        assert_eq!(after.answers.len(), before.answers.len() + 1);
    }

    #[test]
    fn noop_update_reports_unchanged_without_version_bump() {
        let service = tc_service(5, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        service.query(&q).unwrap();
        assert!(service.cache_len() > 0);
        let a = recurs_datalog::symbol::Symbol::intern("A");
        let ops = vec![FactOp::Insert(a, tuple_u64([1, 2]))]; // already present
        match service.apply_update(&ops).unwrap() {
            UpdateOutcome::Unchanged { version } => assert_eq!(version, 0),
            other => panic!("expected Unchanged, got {other:?}"),
        }
        // Same version, so the warm entry still hits.
        assert_eq!(service.query(&q).unwrap().stats.cache, CacheOutcome::Hit);
        let stats = service.stats();
        assert_eq!(stats.snapshot_version, 0);
        assert_eq!(stats.snapshot_updates, 0);
        assert_eq!(stats.updates_unchanged, 1);
    }

    #[test]
    fn apply_update_patches_view_and_cache_in_place() {
        let service = tc_service(5, ServeConfig::default());
        let a = recurs_datalog::symbol::Symbol::intern("A");
        let e = recurs_datalog::symbol::Symbol::intern("E");
        // First fact update builds the view cold (no patch to carry yet).
        let ops = vec![
            FactOp::Insert(a, tuple_u64([5, 6])),
            FactOp::Insert(e, tuple_u64([5, 6])),
        ];
        match service.apply_update(&ops).unwrap() {
            UpdateOutcome::Installed {
                inserted,
                deleted,
                maintenance,
                ..
            } => {
                assert_eq!((inserted, deleted), (2, 0));
                assert_eq!(maintenance, "saturate");
            }
            other => panic!("expected Installed, got {other:?}"),
        }
        // Warm the cache at version 1, then update again: the entry must be
        // patched across the version bump, not dropped.
        let q = parse_atom("P(1, y)").unwrap();
        let before = service.query(&q).unwrap();
        assert_eq!(before.stats.cache, CacheOutcome::Miss);
        let ops = vec![
            FactOp::Insert(a, tuple_u64([6, 7])),
            FactOp::Insert(e, tuple_u64([6, 7])),
        ];
        match service.apply_update(&ops).unwrap() {
            UpdateOutcome::Installed { maintenance, .. } => assert_eq!(maintenance, "frontier"),
            other => panic!("expected Installed, got {other:?}"),
        }
        let after = service.query(&q).unwrap();
        assert_eq!(after.stats.cache, CacheOutcome::Hit, "entry was carried");
        assert_eq!(after.stats.snapshot_version, 2);
        assert_eq!(after.answers.len(), before.answers.len() + 1);
        assert!(service.stats().cache.patched > 0);
        // Deletion maintains too: drop the chain tail again.
        let ops = vec![
            FactOp::Delete(a, tuple_u64([6, 7])),
            FactOp::Delete(e, tuple_u64([6, 7])),
        ];
        service.apply_update(&ops).unwrap();
        let shrunk = service.query(&q).unwrap();
        assert_eq!(shrunk.stats.cache, CacheOutcome::Hit);
        assert_eq!(shrunk.answers.len(), before.answers.len());
    }

    #[test]
    fn materialized_view_answers_fresh_queries_without_evaluation() {
        let service = tc_service(6, ServeConfig::default());
        let e = recurs_datalog::symbol::Symbol::intern("E");
        service
            .apply_update(&[FactOp::Insert(e, tuple_u64([1, 6]))])
            .unwrap();
        // Fresh query, cache miss, but the view is exact for this version.
        let q = parse_atom("P(2, y)").unwrap();
        let reply = service.query(&q).unwrap();
        assert_eq!(reply.stats.cache, CacheOutcome::Miss);
        assert_eq!(reply.stats.kernel, PointKernelKind::MaterializedView);
        assert_eq!(reply.stats.tuples_derived, 0);
        assert_eq!(reply.answers.len(), 4); // 3, 4, 5, 6
        assert_eq!(service.stats().kernel_materialized, 1);
        // And the answer was admitted to the cache like any complete answer.
        assert_eq!(service.query(&q).unwrap().stats.cache, CacheOutcome::Hit);
    }

    #[test]
    fn updates_to_the_derived_predicate_are_rejected() {
        let service = tc_service(5, ServeConfig::default());
        let p = recurs_datalog::symbol::Symbol::intern("P");
        let err = service
            .apply_update(&[FactOp::Insert(p, tuple_u64([1, 5]))])
            .unwrap_err();
        assert!(err.to_string().contains("derived"), "got {err}");
        assert_eq!(service.stats().snapshot_version, 0);
    }

    #[test]
    fn generic_update_still_invalidates_and_drops_the_view() {
        let service = tc_service(5, ServeConfig::default());
        let e = recurs_datalog::symbol::Symbol::intern("E");
        service
            .apply_update(&[FactOp::Insert(e, tuple_u64([1, 5]))])
            .unwrap();
        let q = parse_atom("P(1, y)").unwrap();
        service.query(&q).unwrap();
        assert!(service.cache_len() > 0);
        // A closure edit is opaque: no patch, no view.
        service
            .update(|db| db.insert("E", tuple_u64([2, 5])).map(|_| ()))
            .unwrap();
        assert_eq!(service.cache_len(), 0);
        let reply = service.query(&q).unwrap();
        assert_ne!(reply.stats.kernel, PointKernelKind::MaterializedView);
        // The next fact update rebuilds the view from the new snapshot.
        match service
            .apply_update(&[FactOp::Insert(e, tuple_u64([3, 5]))])
            .unwrap()
        {
            UpdateOutcome::Installed { maintenance, .. } => assert_eq!(maintenance, "saturate"),
            other => panic!("expected Installed, got {other:?}"),
        }
    }

    #[test]
    fn update_events_pin_the_taxonomy() {
        let capture = std::sync::Arc::new(recurs_obs::CaptureRecorder::new());
        let service = tc_service(
            5,
            ServeConfig {
                obs: recurs_obs::Obs::new(capture.clone()),
                ..ServeConfig::default()
            },
        );
        let a = recurs_datalog::symbol::Symbol::intern("A");
        let e = recurs_datalog::symbol::Symbol::intern("E");
        service
            .apply_update(&[
                FactOp::Insert(a, tuple_u64([5, 6])),
                FactOp::Insert(e, tuple_u64([5, 6])),
            ])
            .unwrap();
        service
            .apply_update(&[FactOp::Delete(e, tuple_u64([5, 6]))])
            .unwrap();
        service
            .apply_update(&[FactOp::Insert(a, tuple_u64([1, 2]))]) // no-op
            .unwrap();
        let updates = capture.events_of("serve.update");
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[0].text("result"), Some("saturate"));
        assert_eq!(updates[0].uint("version"), Some(1));
        assert_eq!(updates[0].uint("inserted"), Some(2));
        assert_eq!(updates[1].text("result"), Some("frontier"));
        assert_eq!(updates[1].uint("deleted"), Some(1));
        assert_eq!(updates[2].text("result"), Some("unchanged"));
        assert_eq!(updates[2].uint("version"), Some(2));
        // The counter taxonomy matches the events, and the maintenance layer
        // reported its patch through the same recorder.
        assert_eq!(
            capture.counter_where("recurs_serve_updates_total", &[("result", "unchanged")]),
            1
        );
        assert_eq!(
            capture.counter_where("recurs_serve_updates_total", &[("result", "frontier")]),
            1
        );
        assert_eq!(capture.events_of("ivm.patch").len(), 1);
        assert_eq!(capture.events_of("ivm.saturate").len(), 1);
    }

    #[test]
    fn truncated_answers_are_not_cached() {
        let service = tc_service(30, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        let tight = EvalBudget::unlimited().with_max_iterations(2);
        let reply = service.query_with_budget(&q, &tight).unwrap();
        assert!(!reply.outcome.is_complete());
        assert_eq!(service.cache_len(), 0);
        // The next (unbudgeted) query must not see the truncated answer.
        let full = service.query(&q).unwrap();
        assert_eq!(full.stats.cache, CacheOutcome::Miss);
        assert!(full.outcome.is_complete());
        assert!(full.answers.len() > reply.answers.len());
    }

    #[test]
    fn external_recorder_sees_query_and_snapshot_events() {
        let capture = std::sync::Arc::new(recurs_obs::CaptureRecorder::new());
        let service = tc_service(
            8,
            ServeConfig {
                obs: recurs_obs::Obs::new(capture.clone()),
                ..ServeConfig::default()
            },
        );
        let q = parse_atom("P(1, y)").unwrap();
        service.query(&q).unwrap();
        service.query(&q).unwrap();
        service
            .update(|db| {
                db.insert("A", tuple_u64([8, 9]))?;
                Ok(())
            })
            .unwrap();
        let queries = capture.events_of("serve.query");
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].text("cache"), Some("miss"));
        assert_eq!(queries[1].text("cache"), Some("hit"));
        assert_eq!(queries[0].text("outcome"), Some("complete"));
        assert_eq!(queries[0].uint("snapshot_version"), Some(0));
        let snaps = capture.events_of("serve.snapshot");
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].uint("version"), Some(1));
        // The external recorder sees the same counters the derived
        // ServiceStats view reads from the service's own aggregator.
        assert_eq!(capture.counter_where("recurs_serve_queries_total", &[]), 2);
        assert_eq!(
            capture.counter_where("recurs_serve_cache_ops_total", &[("op", "hit")]),
            1
        );
    }

    #[test]
    fn derived_stats_match_the_recorder_stream() {
        let service = tc_service(10, ServeConfig::default());
        let q1 = parse_atom("P(1, y)").unwrap();
        let q2 = parse_atom("P(2, y)").unwrap();
        service.query(&q1).unwrap();
        service.query(&q1).unwrap(); // hit
        service.query(&q2).unwrap();
        let stats = service.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.complete, 3);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.kernel_magic, 3);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 2);
        // The Prometheus exposition is fed by the same aggregator.
        let text = service.metrics_text();
        assert!(text.contains("recurs_serve_queries_total"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn traced_query_emits_spans_and_trace_tagged_events() {
        let capture = std::sync::Arc::new(recurs_obs::CaptureRecorder::new());
        let service = tc_service(
            8,
            ServeConfig {
                obs: recurs_obs::Obs::new(capture.clone()),
                ..ServeConfig::default()
            },
        );
        let q = parse_atom("P(1, y)").unwrap();
        let trace = TraceId::from_u64(0xabcd);
        let reply = service
            .query_traced(&q, &EvalBudget::unlimited(), None, trace)
            .unwrap();
        assert_eq!(reply.trace, Some(trace));
        // The request decomposed into spans, all under one root.
        let spans = capture.events_of("span");
        let names: Vec<_> = spans.iter().filter_map(|e| e.text("name")).collect();
        assert!(names.contains(&"request"), "spans: {names:?}");
        assert!(names.contains(&"admission"), "spans: {names:?}");
        assert!(names.contains(&"cache"), "spans: {names:?}");
        assert!(names.contains(&"eval"), "spans: {names:?}");
        assert!(names.contains(&"cache_store"), "spans: {names:?}");
        for span in &spans {
            assert_eq!(span.text("trace"), Some("000000000000abcd"));
        }
        // The request's serve.query event carries the same trace id.
        let queries = capture.events_of("serve.query");
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].text("trace"), Some("000000000000abcd"));
        // A second traced query hits the cache: no eval span this time.
        let reply = service
            .query_traced(&q, &EvalBudget::unlimited(), None, TraceId::from_u64(1))
            .unwrap();
        assert_eq!(reply.stats.cache, CacheOutcome::Hit);
        let hit_spans: Vec<_> = capture
            .events_of("span")
            .iter()
            .filter(|e| e.text("trace") == Some("0000000000000001"))
            .filter_map(|e| e.text("name").map(str::to_string))
            .collect();
        assert!(hit_spans.contains(&"cache".to_string()));
        assert!(!hit_spans.contains(&"eval".to_string()), "{hit_spans:?}");
    }

    #[test]
    fn explain_audits_the_plan_with_span_timings_near_measured_latency() {
        let service = tc_service(800, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        let audit = service
            .explain(
                &q,
                &EvalBudget::unlimited().with_max_iterations(100_000),
                None,
                TraceId::from_u64(9),
            )
            .unwrap();
        let text = serde::json::to_string(&audit);
        assert!(text.contains("\"type\":\"explain\""), "{text}");
        assert!(text.contains("\"trace\":\"0000000000000009\""), "{text}");
        assert!(text.contains("\"classification\""), "{text}");
        assert!(text.contains("\"one_directional\":true"), "{text}");
        assert!(text.contains("\"weight\""), "{text}");
        assert!(text.contains("\"choice\":\"magic\""), "{text}");
        assert!(text.contains("\"reason\""), "{text}");
        assert!(text.contains("\"outcome\":{\"complete\":true"), "{text}");
        assert!(text.contains("\"max_iterations\":100000"), "{text}");
        assert!(text.contains("\"name\":\"request\""), "{text}");
        // The span breakdown accounts for the measured request latency: the
        // root span covers everything between admission and reply.
        let Some(Value::UInt(measured)) = audit.get("measured_us") else {
            panic!("missing measured_us in {text}");
        };
        let Some(Value::Array(spans)) = audit.get("spans") else {
            panic!("missing spans in {text}");
        };
        let root_dur = spans
            .iter()
            .find(|s| s.get("parent") == Some(&Value::UInt(0)))
            .and_then(|s| match s.get("dur_us") {
                Some(Value::UInt(d)) => Some(*d),
                _ => None,
            })
            .expect("root span present");
        let drift = measured.abs_diff(root_dur);
        assert!(
            drift * 10 <= *measured,
            "root span {root_dur}us vs measured {measured}us drifts more than 10%"
        );
    }

    #[test]
    fn why_returns_a_verified_tree_or_not_derived() {
        let service = tc_service(5, ServeConfig::default());
        let p = recurs_datalog::symbol::Symbol::intern("P");
        let derived = service
            .why(p, &tuple_u64([1, 4]), 1_000, &EvalBudget::unlimited())
            .unwrap();
        let text = serde::json::to_string(&derived);
        assert!(text.contains("\"derived\":true"), "{text}");
        assert!(text.contains("\"tree\""), "{text}");
        assert!(text.contains("\"rule\":\"recursive\""), "{text}");
        assert!(text.contains("\"rule\":\"edb\""), "{text}");
        assert!(text.contains("\"view_seeded\":false"), "{text}");
        let missing = service
            .why(p, &tuple_u64([4, 1]), 1_000, &EvalBudget::unlimited())
            .unwrap();
        let text = serde::json::to_string(&missing);
        assert!(text.contains("\"derived\":false"), "{text}");
        // Wrong predicate is a typed error.
        let q = recurs_datalog::symbol::Symbol::intern("Q");
        assert!(matches!(
            service.why(q, &tuple_u64([1, 2]), 10, &EvalBudget::unlimited()),
            Err(ServeError::WrongPredicate { .. })
        ));
    }

    #[test]
    fn why_seeds_from_the_maintained_view_when_exact() {
        let service = tc_service(5, ServeConfig::default());
        let e = recurs_datalog::symbol::Symbol::intern("E");
        // A fact update builds the view, making count() available.
        service
            .apply_update(&[FactOp::Insert(e, tuple_u64([1, 5]))])
            .unwrap();
        let p = recurs_datalog::symbol::Symbol::intern("P");
        let derived = service
            .why(p, &tuple_u64([1, 4]), 1_000, &EvalBudget::unlimited())
            .unwrap();
        let text = serde::json::to_string(&derived);
        assert!(text.contains("\"view_seeded\":true"), "{text}");
        assert!(text.contains("\"derived\":true"), "{text}");
        let missing = service
            .why(p, &tuple_u64([4, 1]), 1_000, &EvalBudget::unlimited())
            .unwrap();
        let text = serde::json::to_string(&missing);
        assert!(text.contains("\"view_seeded\":true"), "{text}");
        assert!(text.contains("\"derived\":false"), "{text}");
    }

    #[test]
    fn flight_recorder_retains_recent_events_for_postmortem() {
        let service = tc_service(6, ServeConfig::default());
        let q = parse_atom("P(1, y)").unwrap();
        service.query(&q).unwrap();
        service
            .update(|db| db.insert("A", tuple_u64([6, 7])).map(|_| ()))
            .unwrap();
        let dump = service.postmortem_jsonl();
        assert!(!dump.is_empty());
        assert!(dump.contains("\"kind\":\"serve.query\""), "{dump}");
        assert!(dump.contains("\"kind\":\"serve.snapshot\""), "{dump}");
        // Every line parses as the trace-sink JSON shape.
        for line in dump.lines() {
            let v = recurs_obs::jsonl::parse(line).unwrap();
            assert!(v.get("seq").is_some() && v.get("kind").is_some(), "{line}");
        }
    }

    #[test]
    fn stats_json_is_one_line_with_expected_fields() {
        let service = tc_service(6, ServeConfig::default());
        let q = parse_atom("P(2, y)").unwrap();
        service.query(&q).unwrap();
        let json = service.stats_json();
        assert!(!json.contains('\n'));
        for field in [
            "\"queries\":1",
            "\"kernels\"",
            "\"cache\"",
            "\"snapshot_version\":0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
