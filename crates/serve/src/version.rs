//! The shared snapshot-version type.
//!
//! Snapshots ([`crate::snapshot`]) stamp each installed database with a
//! version, and the answer cache ([`crate::cache`]) keys entries by the
//! version they were computed against. Both used to carry bare `u64`s; this
//! newtype is the single place the "version 0 is the initial database, each
//! installed update increments by one" convention lives, so the two sides
//! cannot drift (for instance by one bumping per *attempted* update).

use std::fmt;

/// A snapshot version: 0 for the initial database, incremented by one for
/// every installed update. Totally ordered; never reused within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Version(u64);

impl Version {
    /// The initial database's version.
    pub const ZERO: Version = Version(0);

    /// The version the next installed update gets.
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// The raw counter, for wire formats and metrics.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl PartialEq<u64> for Version {
    fn eq(&self, other: &u64) -> bool {
        self.0 == *other
    }
}

impl From<u64> for Version {
    fn from(n: u64) -> Version {
        Version(n)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl serde::Serialize for Version {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_start_at_zero_and_count_up() {
        assert_eq!(Version::ZERO, 0);
        assert_eq!(Version::ZERO.next(), 1);
        assert_eq!(Version::from(41).next().get(), 42);
        assert!(Version::ZERO < Version::ZERO.next());
        assert_eq!(serde::json::to_string(&Version::from(3)), "3");
    }
}
