//! Sharded LRU cache of completed query answers.
//!
//! Entries are keyed by `(program fingerprint, snapshot version, canonical
//! adorned query)` — see [`canonical_query_key`] — so a cache hit is only
//! possible for the *same* program, the *same* database version, and a query
//! that is literally the same selection pattern up to variable renaming.
//! A version bump no longer has to cost the whole cache: when incremental
//! maintenance produces the exact change to the recursive predicate,
//! [`SaturationCache::advance`] *patches* each warm entry's answers through
//! its stored [`QueryPattern`] and rekeys it to the new version. Only when
//! no patch is available (cold fallback, generic edits) does
//! [`SaturationCache::retain_version`] fall back to dropping dead versions.
//!
//! Only [`Outcome::Complete`](recurs_datalog::govern::Outcome) answers are
//! admitted by the service: a truncated answer is a budget-dependent
//! under-approximation and must not be replayed to a caller with a more
//! generous budget.

use crate::version::Version;
use recurs_datalog::fingerprint::{self, Fingerprint};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::term::{Atom, Term, Value};
use recurs_ivm::IdbPatch;
use recurs_obs::Obs;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Cache key: program identity, snapshot version, canonical query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the served program.
    pub program: Fingerprint,
    /// Snapshot version the answer was computed against.
    pub version: Version,
    /// Canonical rendering of the query atom (see [`canonical_query_key`]).
    pub query: String,
}

/// One column of a point query's selection pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PatternCol {
    /// Must equal this constant.
    Const(Value),
    /// Projects into the answer row at this distinct-variable index
    /// (first-occurrence order; a repeated variable repeats the index).
    Var(usize),
}

/// The select/project a point query applies to the recursive predicate —
/// enough to translate a change of a base tuple into a change of the cached
/// answer relation. Answers are the query's distinct variables in
/// first-occurrence order, so a matching base tuple maps to *exactly one*
/// answer row and, conversely, each answer row pins every column (constants
/// from the pattern, the rest from the row): the mapping is one-to-one and
/// deletions are as precise as insertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPattern {
    cols: Vec<PatternCol>,
    vars: usize,
}

impl QueryPattern {
    /// Extracts the pattern from a query atom.
    pub fn of(query: &Atom) -> QueryPattern {
        let mut seen: Vec<recurs_datalog::symbol::Symbol> = Vec::new();
        let cols = query
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => PatternCol::Const(*c),
                Term::Var(v) => match seen.iter().position(|s| s == v) {
                    Some(i) => PatternCol::Var(i),
                    None => {
                        seen.push(*v);
                        PatternCol::Var(seen.len() - 1)
                    }
                },
            })
            .collect();
        QueryPattern {
            cols,
            vars: seen.len(),
        }
    }

    /// Projects a base tuple to its answer row, or `None` when the tuple
    /// does not match the pattern's constants / repeated variables.
    pub fn project(&self, t: &[Value]) -> Option<Tuple> {
        if t.len() != self.cols.len() {
            return None;
        }
        let mut row: Vec<Option<Value>> = vec![None; self.vars];
        for (col, v) in self.cols.iter().zip(t) {
            match col {
                PatternCol::Const(c) => {
                    if c != v {
                        return None;
                    }
                }
                PatternCol::Var(i) => match row[*i] {
                    None => row[*i] = Some(*v),
                    Some(prev) => {
                        if prev != *v {
                            return None;
                        }
                    }
                },
            }
        }
        row.into_iter().collect()
    }
}

/// Renders a query atom canonically: constants verbatim, variables numbered
/// by first occurrence. `P(c, X)` and `P(c, Y)` share a key; `P(x, x)` and
/// `P(x, y)` do not.
pub fn canonical_query_key(query: &Atom) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}(", query.predicate);
    let mut seen: Vec<_> = Vec::new();
    for (i, t) in query.terms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match t {
            Term::Const(c) => {
                let _ = write!(out, "'{c}'");
            }
            Term::Var(v) => {
                let n = match seen.iter().position(|s| s == v) {
                    Some(n) => n,
                    None => {
                        seen.push(*v);
                        seen.len() - 1
                    }
                };
                let _ = write!(out, "${n}");
            }
        }
    }
    out.push(')');
    out
}

/// Monotone counters exposed by [`SaturationCache::counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Completed answers admitted.
    pub insertions: u64,
    /// Entries discarded to stay within capacity (LRU order).
    pub evictions: u64,
    /// Entries discarded because their snapshot version died.
    pub invalidations: u64,
    /// Entries carried across a version bump by patching their answers.
    pub patched: u64,
}

impl serde::Serialize for CacheCounters {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("hits", self.hits.to_value()),
            ("misses", self.misses.to_value()),
            ("insertions", self.insertions.to_value()),
            ("evictions", self.evictions.to_value()),
            ("invalidations", self.invalidations.to_value()),
            ("patched", self.patched.to_value()),
        ])
    }
}

#[derive(Debug)]
struct Entry {
    tick: u64,
    answers: Arc<Relation>,
    pattern: QueryPattern,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    /// Recency tick → key, the LRU order index.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<Arc<Relation>> {
        let entry = self.map.get(key)?;
        let (old_tick, value) = (entry.tick, entry.answers.clone());
        self.order.remove(&old_tick);
        self.tick += 1;
        let tick = self.tick;
        self.order.insert(tick, key.clone());
        if let Some(entry) = self.map.get_mut(key) {
            entry.tick = tick;
        }
        Some(value)
    }

    fn insert(
        &mut self,
        key: CacheKey,
        answers: Arc<Relation>,
        pattern: QueryPattern,
        capacity: usize,
    ) -> u64 {
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.tick);
        }
        self.tick += 1;
        self.order.insert(self.tick, key.clone());
        self.map.insert(
            key,
            Entry {
                tick: self.tick,
                answers,
                pattern,
            },
        );
        let mut evicted = 0;
        while self.map.len() > capacity {
            // BTreeMap iterates ticks in ascending order: pop the oldest.
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            if let Some(key) = self.order.remove(&oldest) {
                self.map.remove(&key);
                evicted += 1;
            }
        }
        evicted
    }

    fn retain_version(&mut self, version: Version) -> u64 {
        let before = self.map.len();
        self.map.retain(|k, _| k.version == version);
        self.order.retain(|_, k| k.version == version);
        (before - self.map.len()) as u64
    }

    /// Rekeys every `from`-version entry to `to`, patching its answers
    /// through its stored pattern. Returns the number of entries carried.
    /// Entries at other versions are untouched (they can no longer hit and
    /// age out by recency). Because the shard index ignores the version,
    /// rekeying never moves an entry across shards.
    fn advance(&mut self, from: Version, to: Version, patch: &IdbPatch) -> u64 {
        let keys: Vec<CacheKey> = self
            .map
            .keys()
            .filter(|k| k.version == from)
            .cloned()
            .collect();
        for key in &keys {
            let Some(mut entry) = self.map.remove(key) else {
                continue;
            };
            if !patch.is_empty() {
                let mut answers = (*entry.answers).clone();
                for t in patch.deleted.iter() {
                    if let Some(row) = entry.pattern.project(t) {
                        answers.remove(&row);
                    }
                }
                for t in patch.inserted.iter() {
                    if let Some(row) = entry.pattern.project(t) {
                        answers.insert(row);
                    }
                }
                entry.answers = Arc::new(answers);
            }
            let mut key = key.clone();
            key.version = to;
            self.order.insert(entry.tick, key.clone());
            self.map.insert(key, entry);
        }
        keys.len() as u64
    }
}

/// A sharded LRU answer cache. Shards are independent mutexes keyed by the
/// query hash, so concurrent lookups for different queries rarely contend.
#[derive(Debug)]
pub struct SaturationCache {
    shards: Box<[Mutex<Shard>]>,
    capacity_per_shard: usize,
    obs: Obs,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    patched: AtomicU64,
}

impl SaturationCache {
    /// Builds a cache with `capacity` total entries spread over `shards`
    /// mutex-protected shards (both floored at 1; per-shard capacity is
    /// rounded up so total capacity is at least `capacity`).
    pub fn new(capacity: usize, shards: usize) -> SaturationCache {
        SaturationCache::with_obs(capacity, shards, Obs::noop())
    }

    /// [`SaturationCache::new`] with an observability handle: every cache
    /// operation is additionally recorded into
    /// `recurs_serve_cache_ops_total{op, shard}` so hit/miss/insert/evict/
    /// invalidate rates are visible per shard.
    pub fn with_obs(capacity: usize, shards: usize, obs: Obs) -> SaturationCache {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.max(1).div_ceil(shards);
        SaturationCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
            obs,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            patched: AtomicU64::new(0),
        }
    }

    /// Deliberately version-independent: an entry carried across a version
    /// bump by [`SaturationCache::advance`] must stay in its shard, so
    /// rekeying can happen under one shard lock.
    fn shard_index(&self, key: &CacheKey) -> usize {
        let h = fingerprint::of_str(&key.query).0 ^ key.program.0;
        (h % self.shards.len() as u64) as usize
    }

    fn record_op(&self, op: &'static str, shard: usize, delta: u64) {
        if delta > 0 && self.obs.enabled() {
            self.obs.counter(
                "recurs_serve_cache_ops_total",
                &[("op", op), ("shard", &shard.to_string())],
                delta,
            );
        }
    }

    /// Looks up a completed answer, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Relation>> {
        let idx = self.shard_index(key);
        let hit = {
            let mut shard = self.shards[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            shard.touch(key)
        };
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.record_op("hit", idx, 1);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.record_op("miss", idx, 1);
                None
            }
        }
    }

    /// Admits a completed answer (with the query's selection pattern, for
    /// later patching), evicting least-recently-used entries of the same
    /// shard if over capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<Relation>, pattern: QueryPattern) {
        let idx = self.shard_index(&key);
        let evicted = {
            let mut shard = self.shards[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            shard.insert(key, value, pattern, self.capacity_per_shard)
        };
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.record_op("insert", idx, 1);
        self.record_op("evict", idx, evicted);
    }

    /// Drops every entry whose snapshot version is not `version`. Called by
    /// the service when a snapshot lands without an exact IDB patch (cold
    /// fallback or a generic edit): old-version keys can never be looked up
    /// again.
    pub fn retain_version(&self, version: Version) {
        let mut dropped = 0;
        for (idx, shard) in self.shards.iter().enumerate() {
            let d = shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .retain_version(version);
            dropped += d;
            self.record_op("invalidate", idx, d);
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Carries every `from`-version entry to version `to` by patching its
    /// answers with the exact change to the recursive predicate — the
    /// incremental-maintenance counterpart of [`retain_version`]
    /// (`retain_version`: a version bump costs the warm cache;
    /// `advance`: it costs one select/project per changed tuple per entry).
    ///
    /// [`retain_version`]: SaturationCache::retain_version
    pub fn advance(&self, from: Version, to: Version, patch: &IdbPatch) {
        let mut carried = 0;
        for (idx, shard) in self.shards.iter().enumerate() {
            let c = shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .advance(from, to, patch);
            carried += c;
            self.record_op("patch", idx, c);
        }
        self.patched.fetch_add(carried, Ordering::Relaxed);
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the monotone counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            patched: self.patched.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_atom;

    fn key(version: u64, query: &str) -> CacheKey {
        CacheKey {
            program: Fingerprint(7),
            version: Version::from(version),
            query: canonical_query_key(&parse_atom(query).unwrap()),
        }
    }

    fn pat(query: &str) -> QueryPattern {
        QueryPattern::of(&parse_atom(query).unwrap())
    }

    fn rel(n: u64) -> Arc<Relation> {
        Arc::new(Relation::from_pairs([(n, n)]))
    }

    #[test]
    fn canonical_key_normalizes_variable_names() {
        let a = parse_atom("P(1, x)").unwrap();
        let b = parse_atom("P(1, y)").unwrap();
        assert_eq!(canonical_query_key(&a), canonical_query_key(&b));
        assert_eq!(canonical_query_key(&a), "P('1',$0)");
    }

    #[test]
    fn canonical_key_distinguishes_repeated_variables() {
        let xy = parse_atom("P(x, y)").unwrap();
        let xx = parse_atom("P(x, x)").unwrap();
        assert_ne!(canonical_query_key(&xy), canonical_query_key(&xx));
        assert_eq!(canonical_query_key(&xx), "P($0,$0)");
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = SaturationCache::new(8, 2);
        let k = key(0, "P(1, x)");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), rel(1), pat("P(1, x)"));
        assert_eq!(cache.get(&k).unwrap().len(), 1);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = SaturationCache::new(2, 1);
        let (k1, k2, k3) = (key(0, "P(1, x)"), key(0, "P(2, x)"), key(0, "P(3, x)"));
        cache.insert(k1.clone(), rel(1), pat("P(1, x)"));
        cache.insert(k2.clone(), rel(2), pat("P(2, x)"));
        // Touch k1 so k2 is the LRU entry when k3 arrives.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3.clone(), rel(3), pat("P(3, x)"));
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k2).is_none());
        assert!(cache.get(&k3).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn version_change_invalidates_precisely() {
        let cache = SaturationCache::new(16, 4);
        cache.insert(key(0, "P(1, x)"), rel(1), pat("P(1, x)"));
        cache.insert(key(0, "P(2, x)"), rel(2), pat("P(2, x)"));
        cache.insert(key(1, "P(1, x)"), rel(3), pat("P(1, x)"));
        cache.retain_version(Version::from(1));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, "P(1, x)")).is_none());
        assert!(cache.get(&key(1, "P(1, x)")).is_some());
        assert_eq!(cache.counters().invalidations, 2);
    }

    #[test]
    fn reinsert_same_key_does_not_grow() {
        let cache = SaturationCache::new(4, 1);
        let k = key(0, "P(1, x)");
        cache.insert(k.clone(), rel(1), pat("P(1, x)"));
        cache.insert(k.clone(), rel(2), pat("P(1, x)"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn pattern_projects_matching_tuples_one_to_one() {
        use recurs_datalog::relation::tuple_u64;
        let p = pat("P(1, x)");
        assert_eq!(p.project(&tuple_u64([1, 5])), Some(tuple_u64([5])));
        assert_eq!(p.project(&tuple_u64([2, 5])), None);
        let p = pat("P(x, x)");
        assert_eq!(p.project(&tuple_u64([4, 4])), Some(tuple_u64([4])));
        assert_eq!(p.project(&tuple_u64([4, 5])), None);
        let p = pat("P(x, y)");
        assert_eq!(p.project(&tuple_u64([4, 5])), Some(tuple_u64([4, 5])));
        assert_eq!(p.project(&tuple_u64([4])), None, "arity mismatch");
    }

    #[test]
    fn advance_patches_warm_entries_to_the_next_version() {
        use recurs_datalog::relation::tuple_u64;
        let cache = SaturationCache::new(16, 4);
        // Answers of P(1, x) over {P(1,2), P(1,3)}, and of P(x, y).
        cache.insert(
            key(0, "P(1, x)"),
            Arc::new(Relation::from_tuples(1, [tuple_u64([2]), tuple_u64([3])])),
            pat("P(1, x)"),
        );
        cache.insert(
            key(0, "P(x, y)"),
            Arc::new(Relation::from_pairs([(1, 2), (1, 3)])),
            pat("P(x, y)"),
        );
        // The recursion gained P(1,4) and P(9,9), and lost P(1,2).
        let mut patch = IdbPatch::empty(2);
        patch.inserted.insert(tuple_u64([1, 4]));
        patch.inserted.insert(tuple_u64([9, 9]));
        patch.deleted.insert(tuple_u64([1, 2]));
        cache.advance(Version::ZERO, Version::from(1), &patch);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0, "P(1, x)")).is_none(), "old keys are dead");
        let bound = cache.get(&key(1, "P(1, x)")).unwrap();
        assert_eq!(
            *bound,
            Relation::from_tuples(1, [tuple_u64([3]), tuple_u64([4])]),
            "constant-bound entry sees only its matching changes"
        );
        let free = cache.get(&key(1, "P(x, y)")).unwrap();
        assert_eq!(*free, Relation::from_pairs([(1, 3), (1, 4), (9, 9)]));
        assert_eq!(cache.counters().patched, 2);
        assert_eq!(cache.counters().invalidations, 0);
    }

    #[test]
    fn advance_with_empty_patch_rekeys_without_copying() {
        let cache = SaturationCache::new(16, 4);
        let answers = rel(1);
        cache.insert(key(0, "P(1, x)"), answers.clone(), pat("P(1, x)"));
        cache.advance(Version::ZERO, Version::from(1), &IdbPatch::empty(2));
        let carried = cache.get(&key(1, "P(1, x)")).unwrap();
        assert!(Arc::ptr_eq(&carried, &answers), "no clone on empty patch");
    }
}
