//! Sharded LRU cache of completed query answers.
//!
//! Entries are keyed by `(program fingerprint, snapshot version, canonical
//! adorned query)` — see [`canonical_query_key`] — so a cache hit is only
//! possible for the *same* program, the *same* database version, and a query
//! that is literally the same selection pattern up to variable renaming.
//! Updates therefore invalidate precisely: installing snapshot version
//! `n + 1` makes every version-`n` key unreachable, and
//! [`SaturationCache::retain_version`] reclaims the dead entries eagerly.
//!
//! Only [`Outcome::Complete`](recurs_datalog::govern::Outcome) answers are
//! admitted by the service: a truncated answer is a budget-dependent
//! under-approximation and must not be replayed to a caller with a more
//! generous budget.

use recurs_datalog::fingerprint::{self, Fingerprint};
use recurs_datalog::relation::Relation;
use recurs_datalog::term::{Atom, Term};
use recurs_obs::Obs;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Cache key: program identity, snapshot version, canonical query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the served program.
    pub program: Fingerprint,
    /// Snapshot version the answer was computed against.
    pub version: u64,
    /// Canonical rendering of the query atom (see [`canonical_query_key`]).
    pub query: String,
}

/// Renders a query atom canonically: constants verbatim, variables numbered
/// by first occurrence. `P(c, X)` and `P(c, Y)` share a key; `P(x, x)` and
/// `P(x, y)` do not.
pub fn canonical_query_key(query: &Atom) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}(", query.predicate);
    let mut seen: Vec<_> = Vec::new();
    for (i, t) in query.terms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match t {
            Term::Const(c) => {
                let _ = write!(out, "'{c}'");
            }
            Term::Var(v) => {
                let n = match seen.iter().position(|s| s == v) {
                    Some(n) => n,
                    None => {
                        seen.push(*v);
                        seen.len() - 1
                    }
                };
                let _ = write!(out, "${n}");
            }
        }
    }
    out.push(')');
    out
}

/// Monotone counters exposed by [`SaturationCache::counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Completed answers admitted.
    pub insertions: u64,
    /// Entries discarded to stay within capacity (LRU order).
    pub evictions: u64,
    /// Entries discarded because their snapshot version died.
    pub invalidations: u64,
}

impl serde::Serialize for CacheCounters {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("hits", self.hits.to_value()),
            ("misses", self.misses.to_value()),
            ("insertions", self.insertions.to_value()),
            ("evictions", self.evictions.to_value()),
            ("invalidations", self.invalidations.to_value()),
        ])
    }
}

#[derive(Debug, Default)]
struct Shard {
    /// Key → (recency tick, answer).
    map: HashMap<CacheKey, (u64, Arc<Relation>)>,
    /// Recency tick → key, the LRU order index.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<Arc<Relation>> {
        let (old_tick, value) = self.map.get(key)?;
        let (old_tick, value) = (*old_tick, value.clone());
        self.order.remove(&old_tick);
        self.tick += 1;
        let tick = self.tick;
        self.order.insert(tick, key.clone());
        if let Some(entry) = self.map.get_mut(key) {
            entry.0 = tick;
        }
        Some(value)
    }

    fn insert(&mut self, key: CacheKey, value: Arc<Relation>, capacity: usize) -> u64 {
        if let Some((old_tick, _)) = self.map.remove(&key) {
            self.order.remove(&old_tick);
        }
        self.tick += 1;
        self.order.insert(self.tick, key.clone());
        self.map.insert(key, (self.tick, value));
        let mut evicted = 0;
        while self.map.len() > capacity {
            // BTreeMap iterates ticks in ascending order: pop the oldest.
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            if let Some(key) = self.order.remove(&oldest) {
                self.map.remove(&key);
                evicted += 1;
            }
        }
        evicted
    }

    fn retain_version(&mut self, version: u64) -> u64 {
        let before = self.map.len();
        self.map.retain(|k, _| k.version == version);
        self.order.retain(|_, k| k.version == version);
        (before - self.map.len()) as u64
    }
}

/// A sharded LRU answer cache. Shards are independent mutexes keyed by the
/// query hash, so concurrent lookups for different queries rarely contend.
#[derive(Debug)]
pub struct SaturationCache {
    shards: Box<[Mutex<Shard>]>,
    capacity_per_shard: usize,
    obs: Obs,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl SaturationCache {
    /// Builds a cache with `capacity` total entries spread over `shards`
    /// mutex-protected shards (both floored at 1; per-shard capacity is
    /// rounded up so total capacity is at least `capacity`).
    pub fn new(capacity: usize, shards: usize) -> SaturationCache {
        SaturationCache::with_obs(capacity, shards, Obs::noop())
    }

    /// [`SaturationCache::new`] with an observability handle: every cache
    /// operation is additionally recorded into
    /// `recurs_serve_cache_ops_total{op, shard}` so hit/miss/insert/evict/
    /// invalidate rates are visible per shard.
    pub fn with_obs(capacity: usize, shards: usize, obs: Obs) -> SaturationCache {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.max(1).div_ceil(shards);
        SaturationCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
            obs,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &CacheKey) -> usize {
        let h = fingerprint::of_str(&key.query).0 ^ key.version ^ key.program.0;
        (h % self.shards.len() as u64) as usize
    }

    fn record_op(&self, op: &'static str, shard: usize, delta: u64) {
        if delta > 0 && self.obs.enabled() {
            self.obs.counter(
                "recurs_serve_cache_ops_total",
                &[("op", op), ("shard", &shard.to_string())],
                delta,
            );
        }
    }

    /// Looks up a completed answer, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Relation>> {
        let idx = self.shard_index(key);
        let hit = {
            let mut shard = self.shards[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            shard.touch(key)
        };
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.record_op("hit", idx, 1);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.record_op("miss", idx, 1);
                None
            }
        }
    }

    /// Admits a completed answer, evicting least-recently-used entries of
    /// the same shard if over capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<Relation>) {
        let idx = self.shard_index(&key);
        let evicted = {
            let mut shard = self.shards[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            shard.insert(key, value, self.capacity_per_shard)
        };
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.record_op("insert", idx, 1);
        self.record_op("evict", idx, evicted);
    }

    /// Drops every entry whose snapshot version is not `version`. Called by
    /// the service when a new snapshot is installed: old-version keys can
    /// never be looked up again.
    pub fn retain_version(&self, version: u64) {
        let mut dropped = 0;
        for (idx, shard) in self.shards.iter().enumerate() {
            let d = shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .retain_version(version);
            dropped += d;
            self.record_op("invalidate", idx, d);
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the monotone counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_atom;

    fn key(version: u64, query: &str) -> CacheKey {
        CacheKey {
            program: Fingerprint(7),
            version,
            query: canonical_query_key(&parse_atom(query).unwrap()),
        }
    }

    fn rel(n: u64) -> Arc<Relation> {
        Arc::new(Relation::from_pairs([(n, n)]))
    }

    #[test]
    fn canonical_key_normalizes_variable_names() {
        let a = parse_atom("P(1, x)").unwrap();
        let b = parse_atom("P(1, y)").unwrap();
        assert_eq!(canonical_query_key(&a), canonical_query_key(&b));
        assert_eq!(canonical_query_key(&a), "P('1',$0)");
    }

    #[test]
    fn canonical_key_distinguishes_repeated_variables() {
        let xy = parse_atom("P(x, y)").unwrap();
        let xx = parse_atom("P(x, x)").unwrap();
        assert_ne!(canonical_query_key(&xy), canonical_query_key(&xx));
        assert_eq!(canonical_query_key(&xx), "P($0,$0)");
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = SaturationCache::new(8, 2);
        let k = key(0, "P(1, x)");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), rel(1));
        assert_eq!(cache.get(&k).unwrap().len(), 1);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = SaturationCache::new(2, 1);
        let (k1, k2, k3) = (key(0, "P(1, x)"), key(0, "P(2, x)"), key(0, "P(3, x)"));
        cache.insert(k1.clone(), rel(1));
        cache.insert(k2.clone(), rel(2));
        // Touch k1 so k2 is the LRU entry when k3 arrives.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3.clone(), rel(3));
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k2).is_none());
        assert!(cache.get(&k3).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn version_change_invalidates_precisely() {
        let cache = SaturationCache::new(16, 4);
        cache.insert(key(0, "P(1, x)"), rel(1));
        cache.insert(key(0, "P(2, x)"), rel(2));
        cache.insert(key(1, "P(1, x)"), rel(3));
        cache.retain_version(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, "P(1, x)")).is_none());
        assert!(cache.get(&key(1, "P(1, x)")).is_some());
        assert_eq!(cache.counters().invalidations, 2);
    }

    #[test]
    fn reinsert_same_key_does_not_grow() {
        let cache = SaturationCache::new(4, 1);
        let k = key(0, "P(1, x)");
        cache.insert(k.clone(), rel(1));
        cache.insert(k.clone(), rel(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().evictions, 0);
    }
}
