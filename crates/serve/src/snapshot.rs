//! Versioned, immutable database snapshots with copy-on-write updates.
//!
//! A [`Snapshot`] is an `Arc`-shared, never-mutated [`Database`] plus a
//! monotonically increasing version number and a content [`Fingerprint`].
//! Readers load the current snapshot in O(1) (an `Arc` clone under a brief
//! read lock) and keep evaluating against it for as long as they like;
//! writers build the *next* database copy-on-write and install it atomically.
//! In-flight queries are never torn: they observe exactly the version they
//! loaded, no matter how many updates land while they run.

use crate::version::Version;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::fingerprint::{self, Fingerprint};
use recurs_ivm::{EdbDelta, FactOp};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// One immutable version of the served database.
#[derive(Debug)]
pub struct Snapshot {
    version: Version,
    fingerprint: Fingerprint,
    db: Arc<Database>,
}

impl Snapshot {
    /// The snapshot's version number; the initial database is version 0 and
    /// every installed update increments it by one.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Stable content hash of this snapshot's database.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The snapshot's database. Immutable: evaluators clone what they must
    /// saturate.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

/// What [`SnapshotStore::apply_delta`] did.
#[derive(Debug)]
pub enum SnapshotUpdate {
    /// The operations were all no-ops (duplicate inserts, absent deletes, or
    /// pairs that cancel): nothing was installed and the version did not
    /// move. Carries the still-current snapshot.
    Unchanged(Arc<Snapshot>),
    /// A new snapshot version was installed.
    Installed {
        /// The version the delta was normalized against.
        previous: Version,
        /// The newly installed snapshot.
        snapshot: Arc<Snapshot>,
        /// The net EDB change from `previous` to the new snapshot — what
        /// incremental maintenance consumes.
        delta: EdbDelta,
    },
}

/// The mutable cell holding the current snapshot.
///
/// Reads (`load`) take a read lock only long enough to clone an `Arc`.
/// Writes serialize on a dedicated writer mutex so two concurrent `update`
/// calls cannot both copy version *n* and race to install version *n + 1*
/// (one would silently lose its edit).
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    writer: Mutex<()>,
}

impl SnapshotStore {
    /// Wraps an initial database as version 0.
    pub fn new(db: Database) -> SnapshotStore {
        let fingerprint = fingerprint::of_database(&db);
        SnapshotStore {
            current: RwLock::new(Arc::new(Snapshot {
                version: Version::ZERO,
                fingerprint,
                db: Arc::new(db),
            })),
            writer: Mutex::new(()),
        }
    }

    /// The current snapshot. Cheap; the returned `Arc` stays valid (and
    /// unchanged) however many updates are installed afterwards.
    pub fn load(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Builds and installs the next version copy-on-write: clones the
    /// current database, applies `edit`, and swaps the new snapshot in.
    /// Returns the installed snapshot. If `edit` fails nothing is installed
    /// and the current version is unchanged. Concurrent updates serialize;
    /// concurrent readers are never blocked by the database copy (only by
    /// the final pointer swap).
    pub fn update(
        &self,
        edit: impl FnOnce(&mut Database) -> Result<(), DatalogError>,
    ) -> Result<Arc<Snapshot>, DatalogError> {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let base = self.load();
        let mut db = (*base.db).clone();
        edit(&mut db)?;
        let next = Arc::new(Snapshot {
            version: base.version.next(),
            fingerprint: fingerprint::of_database(&db),
            db: Arc::new(db),
        });
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next.clone();
        Ok(next)
    }

    /// Normalizes a group of fact operations against the current snapshot
    /// (inside the writer lock, so the membership check and the install are
    /// one atomic step) and installs the next version if — and only if — the
    /// net delta is non-empty. Duplicate inserts and absent-fact deletes are
    /// no-ops: an all-no-op group reports [`SnapshotUpdate::Unchanged`]
    /// without bumping the version. The returned delta is exactly the EDB
    /// difference between the two snapshots.
    pub fn apply_delta(&self, ops: &[FactOp]) -> Result<SnapshotUpdate, DatalogError> {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let base = self.load();
        let delta = EdbDelta::normalize(ops, &base.db)?;
        if delta.is_empty() {
            return Ok(SnapshotUpdate::Unchanged(base));
        }
        let mut db = (*base.db).clone();
        delta.apply_to(&mut db)?;
        let next = Arc::new(Snapshot {
            version: base.version.next(),
            fingerprint: fingerprint::of_database(&db),
            db: Arc::new(db),
        });
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next.clone();
        Ok(SnapshotUpdate::Installed {
            previous: base.version,
            snapshot: next,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::relation::{tuple_u64, Relation};

    fn store() -> SnapshotStore {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        SnapshotStore::new(db)
    }

    #[test]
    fn initial_version_is_zero() {
        let s = store();
        let snap = s.load();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.database().require("A").unwrap().len(), 2);
    }

    #[test]
    fn update_installs_next_version_and_readers_keep_theirs() {
        let s = store();
        let before = s.load();
        let installed = s
            .update(|db| db.insert("A", tuple_u64([3, 4])).map(|_| ()))
            .unwrap();
        assert_eq!(installed.version(), 1);
        assert_ne!(before.fingerprint(), installed.fingerprint());
        // The old snapshot is untouched (copy-on-write).
        assert_eq!(before.database().require("A").unwrap().len(), 2);
        assert_eq!(installed.database().require("A").unwrap().len(), 3);
        assert_eq!(s.load().version(), 1);
    }

    #[test]
    fn failed_update_installs_nothing() {
        let s = store();
        let err = s.update(|db| db.insert("A", tuple_u64([1])).map(|_| ()));
        assert!(err.is_err());
        assert_eq!(s.load().version(), 0);
        assert_eq!(s.load().database().require("A").unwrap().len(), 2);
    }

    #[test]
    fn no_op_delta_does_not_bump_the_version() {
        let s = store();
        let a = recurs_datalog::symbol::Symbol::intern("A");
        let ops = vec![
            FactOp::Insert(a, tuple_u64([1, 2])), // already present
            FactOp::Delete(a, tuple_u64([9, 9])), // absent
        ];
        match s.apply_delta(&ops).unwrap() {
            SnapshotUpdate::Unchanged(snap) => assert_eq!(snap.version(), 0),
            other => panic!("expected Unchanged, got {other:?}"),
        }
        assert_eq!(s.load().version(), 0);
    }

    #[test]
    fn delta_install_carries_the_net_change() {
        let s = store();
        let a = recurs_datalog::symbol::Symbol::intern("A");
        let ops = vec![
            FactOp::Insert(a, tuple_u64([3, 4])),
            FactOp::Delete(a, tuple_u64([1, 2])),
            FactOp::Insert(a, tuple_u64([1, 2])), // cancels the delete
        ];
        match s.apply_delta(&ops).unwrap() {
            SnapshotUpdate::Installed {
                previous,
                snapshot,
                delta,
            } => {
                assert_eq!(previous, Version::ZERO);
                assert_eq!(snapshot.version(), 1);
                assert_eq!(delta.inserted_count(), 1);
                assert_eq!(delta.deleted_count(), 0);
                assert!(snapshot.database().require("A").unwrap().len() == 3);
            }
            other => panic!("expected Installed, got {other:?}"),
        }
    }

    #[test]
    fn identical_content_has_identical_fingerprint_across_versions() {
        let s = store();
        let v0 = s.load();
        let v1 = s
            .update(|db| db.insert("A", tuple_u64([9, 9])).map(|_| ()))
            .unwrap();
        // Removing is not supported through insert, so rebuild the original.
        let v2 = s
            .update(|db| {
                db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
                Ok(())
            })
            .unwrap();
        assert_ne!(v0.fingerprint(), v1.fingerprint());
        assert_eq!(v0.fingerprint(), v2.fingerprint());
        assert_eq!(v2.version(), 2);
    }
}
