//! The `recurs serve --stdin` line protocol: one request per line, one JSON
//! reply per line.
//!
//! Requests:
//!
//! * `?- P(c, X).` (the `?-` and trailing `.` are optional) — answer a query;
//! * `+ A(1, 2).` — insert a ground fact, installing a new snapshot version;
//! * `- A(1, 2).` — delete a ground fact;
//! * `+A(1, 2) -E(2, 3) +B(7, 8).` — a batched update group: any mix of
//!   signed ground facts on one line, applied atomically as one snapshot
//!   version (one maintenance pass, one version bump). Duplicate inserts and
//!   absent deletes are no-ops: an all-no-op group replies
//!   `{"type":"unchanged",...}` without bumping the version;
//! * `!explain P(c, X)` — answer the query *and* audit the plan: the reply
//!   carries the classification verdict (with I-graph cycle weights), the
//!   kernel choice and why, cache participation, budget headroom, and the
//!   request's span breakdown;
//! * `why P(1, 3)` — derivation provenance for a ground fact: a
//!   depth-bounded backward reconstruction of a derivation tree (or
//!   `"derived":false`), structurally verified before it is returned;
//! * `!stats` — dump the service-wide statistics;
//! * `!metrics` — dump the service metrics in Prometheus text exposition
//!   format (the one multi-line reply; its `# EOF` terminator line is the
//!   framing marker);
//! * `!snapshot` — report the current snapshot version and fingerprints;
//! * `!quit` — end the session;
//! * blank lines and `%`/`#` comments are ignored (no reply).
//!
//! Any request may carry a leading `@trace=<id>` directive (1–16 hex
//! chars) naming the request's trace id; without one a fresh id is minted
//! per query. A malformed or duplicated directive is a typed error.
//!
//! Every reply except `!metrics` is a single-line JSON object with an
//! `"ok"` field; errors are `{"ok":false,"error":"..."}` and never kill the
//! session.

use crate::error::ServeError;
use crate::service::{QueryService, Reply, UpdateOutcome};
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_atom;
use recurs_datalog::relation::Tuple;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::term::Term;
use recurs_ivm::{FactOp, DEFAULT_WHY_DEPTH};
use recurs_obs::TraceId;
use serde::{Serialize as _, Value};
use std::io::{BufRead, Write};
use std::time::Duration;

/// Outcome of handling one protocol line.
pub enum LineOutcome {
    /// A reply to print.
    Reply(String),
    /// Nothing to print (blank line or comment).
    Silent,
    /// The client asked to end the session (`!quit`).
    Quit,
}

/// How a transport wants one request line evaluated. The stdin loop uses
/// the defaults (service budget, unbounded admission); the TCP front end
/// derives a per-request budget from the deadline and bounds the admission
/// wait so overload sheds instead of queueing.
#[derive(Debug, Clone, Default)]
pub struct LineOptions {
    /// Evaluate queries under this budget instead of the service default.
    pub budget: Option<EvalBudget>,
    /// Bound the admission wait; past it the query is shed with a typed
    /// `overloaded` reply. `None` queues unboundedly (the stdin behavior).
    pub max_queue_wait: Option<Duration>,
    /// The client backoff hint rendered into shed replies, in milliseconds.
    pub retry_after_ms: u64,
    /// The request's trace id, when the transport already resolved one
    /// (e.g. from a TCP frame's `@trace=` directive). A directive on the
    /// line itself takes precedence; with neither, queries mint a fresh id.
    pub trace: Option<TraceId>,
}

/// A typed protocol-level failure, rendered as a one-line JSON error reply.
enum ProtoError {
    /// A plain error message (`{"ok":false,"error":...}`).
    Message(String),
    /// Admission shed the request; the reply carries the retry-after hint.
    Overloaded {
        /// How long the request queued before being shed.
        waited: Duration,
    },
}

impl From<String> for ProtoError {
    fn from(msg: String) -> ProtoError {
        ProtoError::Message(msg)
    }
}

/// Handles one request line against the service under the default
/// [`LineOptions`] (service budget, unbounded admission).
pub fn handle_line(service: &QueryService, line: &str) -> LineOutcome {
    handle_line_with(service, line, &LineOptions::default())
}

/// Handles one request line under transport-supplied [`LineOptions`].
pub fn handle_line_with(service: &QueryService, line: &str, opts: &LineOptions) -> LineOutcome {
    let line = line.trim();
    if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
        return LineOutcome::Silent;
    }
    if line == "!quit" {
        return LineOutcome::Quit;
    }
    if line == "!metrics" {
        // Prometheus text is inherently multi-line; its `# EOF` terminator
        // (not line count) frames the reply. Trailing newline is trimmed
        // because the run loop appends one.
        return LineOutcome::Reply(service.metrics_text().trim_end().to_string());
    }
    LineOutcome::Reply(match handle_request(service, line, opts) {
        Ok(v) => serde::json::to_string(&v),
        Err(ProtoError::Message(e)) => serde::json::to_string(&Value::object([
            ("ok", Value::Bool(false)),
            ("error", Value::string(e)),
        ])),
        Err(ProtoError::Overloaded { waited }) => serde::json::to_string(&Value::object([
            ("ok", Value::Bool(false)),
            ("type", Value::string("overloaded")),
            (
                "error",
                Value::string(format!(
                    "overloaded: no evaluation slot within {} ms, request shed",
                    waited.as_millis()
                )),
            ),
            ("retry_after_ms", opts.retry_after_ms.to_value()),
        ])),
    })
}

/// Strips leading `@trace=<id>` directives. A duplicate or malformed
/// directive is a typed error; the id (if any) and the remaining request
/// text are returned.
fn strip_trace_directive(line: &str) -> Result<(&str, Option<TraceId>), ProtoError> {
    let mut rest = line;
    let mut trace = None;
    while let Some(after) = rest.strip_prefix("@trace=") {
        let (token, remainder) = match after.split_once(char::is_whitespace) {
            Some((t, r)) => (t, r),
            None => (after, ""),
        };
        if trace.is_some() {
            return Err("duplicate @trace directive".to_string().into());
        }
        let id = TraceId::parse(token).map_err(|e| format!("bad @trace directive: {e}"))?;
        trace = Some(id);
        rest = remainder.trim_start();
    }
    Ok((rest, trace))
}

/// Strips the optional `?-` prefix and trailing `.` from a query body.
fn query_text(line: &str) -> &str {
    let text = line.strip_prefix("?-").unwrap_or(line).trim();
    text.strip_suffix('.').unwrap_or(text).trim()
}

fn handle_request(
    service: &QueryService,
    line: &str,
    opts: &LineOptions,
) -> Result<Value, ProtoError> {
    let (line, directive_trace) = strip_trace_directive(line)?;
    let line = line.trim();
    let trace = directive_trace.or(opts.trace);
    if line.is_empty() {
        return Err("empty request after @trace directive".to_string().into());
    }
    if line == "!stats" {
        return Ok(Value::object([
            ("ok", Value::Bool(true)),
            ("type", Value::string("stats")),
            ("stats", service.stats().to_value()),
        ]));
    }
    if line == "!snapshot" {
        let snap = service.snapshot();
        return Ok(Value::object([
            ("ok", Value::Bool(true)),
            ("type", Value::string("snapshot")),
            ("version", snap.version().to_value()),
            ("fingerprint", Value::string(snap.fingerprint().to_string())),
            (
                "program_fingerprint",
                Value::string(service.program_fingerprint().to_string()),
            ),
        ]));
    }
    if line == "!explain" {
        return Err("usage: !explain <query>".to_string().into());
    }
    if let Some(rest) = line.strip_prefix("!explain ") {
        let query = parse_atom(query_text(rest.trim())).map_err(|e| e.to_string())?;
        let default;
        let budget = match &opts.budget {
            Some(b) => b,
            None => {
                default = service.default_budget().clone();
                &default
            }
        };
        let trace = trace.unwrap_or_else(TraceId::mint);
        return match service.explain(&query, budget, opts.max_queue_wait, trace) {
            Ok(audit) => Ok(audit),
            Err(ServeError::Overloaded { waited }) => Err(ProtoError::Overloaded { waited }),
            Err(e) => Err(e.to_string().into()),
        };
    }
    if line.starts_with('+') || line.starts_with('-') {
        return apply_update_group(service, line).map_err(ProtoError::from);
    }
    if line.starts_with('!') {
        return Err(format!("unknown command: {line}").into());
    }
    if line == "why" {
        return Err("usage: why <ground fact>".to_string().into());
    }
    if let Some(rest) = line.strip_prefix("why ") {
        let text = rest.trim();
        let text = text.strip_suffix('.').unwrap_or(text).trim();
        let (pred, tuple) = parse_ground_fact(text)?;
        let default;
        let budget = match &opts.budget {
            Some(b) => b,
            None => {
                default = service.default_budget().clone();
                &default
            }
        };
        return service
            .why(pred, &tuple, DEFAULT_WHY_DEPTH, budget)
            .map_err(|e| e.to_string().into());
    }
    let text = query_text(line);
    let query = parse_atom(text).map_err(|e| e.to_string())?;
    let default;
    let budget = match &opts.budget {
        Some(b) => b,
        None => {
            default = service.default_budget().clone();
            &default
        }
    };
    let trace = trace.unwrap_or_else(TraceId::mint);
    let reply = match service.query_traced(&query, budget, opts.max_queue_wait, trace) {
        Ok(reply) => reply,
        Err(ServeError::Overloaded { waited }) => return Err(ProtoError::Overloaded { waited }),
        Err(e) => return Err(e.to_string().into()),
    };
    Ok(render_reply(text, &reply))
}

/// Splits one line into signed ground facts by scanning for `+`/`-` at
/// parenthesis depth 0, parses each, and applies the whole group as one
/// atomic update through the service's incremental-maintenance path.
fn apply_update_group(service: &QueryService, line: &str) -> Result<Value, String> {
    let ops = parse_update_group(line)?;
    match service.apply_update(&ops).map_err(|e| e.to_string())? {
        UpdateOutcome::Unchanged { version } => Ok(Value::object([
            ("ok", Value::Bool(true)),
            ("type", Value::string("unchanged")),
            ("version", version.to_value()),
        ])),
        UpdateOutcome::Installed {
            snapshot,
            inserted,
            deleted,
            maintenance,
        } => Ok(Value::object([
            ("ok", Value::Bool(true)),
            ("type", Value::string("snapshot")),
            ("version", snapshot.version().to_value()),
            (
                "fingerprint",
                Value::string(snapshot.fingerprint().to_string()),
            ),
            ("inserted", inserted.to_value()),
            ("deleted", deleted.to_value()),
            ("maintenance", Value::string(maintenance)),
        ])),
    }
}

fn parse_update_group(line: &str) -> Result<Vec<FactOp>, String> {
    // Sign positions at paren depth 0 delimit the facts; signs inside
    // argument lists (future negative numerals) stay untouched.
    let mut starts = Vec::new();
    let mut depth = 0usize;
    for (i, c) in line.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '+' | '-' if depth == 0 => starts.push(i),
            _ => {}
        }
    }
    debug_assert!(!starts.is_empty(), "caller checked the leading sign");
    let mut ops = Vec::with_capacity(starts.len());
    for (n, &start) in starts.iter().enumerate() {
        let end = starts.get(n + 1).copied().unwrap_or(line.len());
        let insert = line[start..].starts_with('+');
        let text = line[start + 1..end].trim();
        let text = text.strip_suffix('.').unwrap_or(text).trim();
        let (pred, tuple) = parse_ground_fact(text)?;
        ops.push(if insert {
            FactOp::Insert(pred, tuple)
        } else {
            FactOp::Delete(pred, tuple)
        });
    }
    Ok(ops)
}

fn parse_ground_fact(text: &str) -> Result<(Symbol, Tuple), String> {
    let atom = parse_atom(text).map_err(|e| e.to_string())?;
    let mut values = Vec::with_capacity(atom.terms.len());
    for t in &atom.terms {
        match t {
            Term::Const(c) => values.push(*c),
            Term::Var(v) => return Err(format!("fact {text} is not ground: variable {v}")),
        }
    }
    Ok((atom.predicate, Tuple::from(values.as_slice())))
}

fn render_reply(query: &str, reply: &Reply) -> Value {
    let rows: Vec<Value> = reply
        .answers
        .iter_sorted()
        .into_iter()
        .map(|t| Value::array(t.iter().map(|v| Value::string(v.as_str()))))
        .collect();
    let mut fields = vec![
        ("ok", Value::Bool(true)),
        ("type", Value::string("answers")),
        ("query", Value::string(query)),
        ("count", reply.answers.len().to_value()),
        ("answers", Value::Array(rows)),
        ("stats", reply.stats.to_value()),
    ];
    if let Some(trace) = reply.trace {
        fields.push(("trace", Value::string(trace.to_string())));
    }
    Value::object(fields)
}

/// Serves the line protocol until EOF or `!quit`: one request per input
/// line, one JSON reply per output line (flushed after each).
pub fn run_loop(
    service: &QueryService,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        match handle_line(service, &line?) {
            LineOutcome::Reply(reply) => {
                writeln!(output, "{reply}")?;
                output.flush()?;
            }
            LineOutcome::Silent => {}
            LineOutcome::Quit => break,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use recurs_datalog::database::Database;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::relation::Relation;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn service() -> QueryService {
        let lr = validate_with_generic_exit(
            &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
        QueryService::new(lr, db, ServeConfig::default())
    }

    fn reply(service: &QueryService, line: &str) -> String {
        match handle_line(service, line) {
            LineOutcome::Reply(r) => r,
            _ => panic!("expected a reply for {line}"),
        }
    }

    #[test]
    fn query_reply_lists_sorted_answers() {
        let s = service();
        let r = reply(&s, "?- P(1, y).");
        assert!(r.contains("\"ok\":true"));
        assert!(r.contains("\"count\":2"));
        assert!(r.contains("[[\"2\"],[\"3\"]]"));
    }

    #[test]
    fn insert_installs_a_new_version_and_queries_see_it() {
        let s = service();
        let r = reply(&s, "+A(3, 4).");
        assert!(r.contains("\"version\":1"), "got {r}");
        let r = reply(&s, "+E(3, 4).");
        assert!(r.contains("\"version\":2"), "got {r}");
        let r = reply(&s, "P(1, y)");
        assert!(r.contains("\"count\":3"), "got {r}");
    }

    #[test]
    fn delete_fact_installs_a_new_version_and_queries_see_it() {
        let s = service();
        let r = reply(&s, "-E(2, 3).");
        assert!(r.contains("\"version\":1"), "got {r}");
        assert!(r.contains("\"deleted\":1"), "got {r}");
        assert!(r.contains("\"maintenance\":"), "got {r}");
        let r = reply(&s, "P(1, y)");
        assert!(r.contains("\"count\":1"), "got {r}"); // only E(1,2) is left
    }

    #[test]
    fn noop_updates_reply_unchanged_without_a_version_bump() {
        let s = service();
        let r = reply(&s, "+A(1, 2).");
        assert!(r.contains("\"type\":\"unchanged\""), "got {r}");
        assert!(r.contains("\"version\":0"), "got {r}");
        let r = reply(&s, "-A(9, 9).");
        assert!(r.contains("\"type\":\"unchanged\""), "got {r}");
        // Cancelling pair inside one group: also a no-op.
        let r = reply(&s, "+A(7, 8) -A(7, 8).");
        assert!(r.contains("\"type\":\"unchanged\""), "got {r}");
        assert!(reply(&s, "!snapshot").contains("\"version\":0"));
    }

    #[test]
    fn batched_update_group_is_one_atomic_version() {
        let s = service();
        let r = reply(&s, "+A(3, 4) +E(3, 4) -E(2, 3).");
        assert!(r.contains("\"version\":1"), "got {r}");
        assert!(r.contains("\"inserted\":2"), "got {r}");
        assert!(r.contains("\"deleted\":1"), "got {r}");
        // 1→2 (E), 3→4 (E), 1→2→3→4 via A-chain... E(2,3) is gone, so
        // P(1,*) = {2} ∪ A(1,2)∘P(2,*) and P(2,*) = A(2,3)∘P(3,*) = {4}.
        let r = reply(&s, "P(1, y)");
        assert!(r.contains("\"count\":2"), "got {r}");
        assert!(r.contains("[[\"2\"],[\"4\"]]"), "got {r}");
    }

    #[test]
    fn updates_to_the_served_predicate_are_rejected() {
        let s = service();
        let r = reply(&s, "+P(1, 3).");
        assert!(r.contains("\"ok\":false"), "got {r}");
        assert!(r.contains("derived"), "got {r}");
        let r = reply(&s, "-P(1, 2).");
        assert!(r.contains("\"ok\":false"), "got {r}");
    }

    #[test]
    fn malformed_lines_report_errors_without_ending_the_session() {
        let s = service();
        let r = reply(&s, "?- P(1, y");
        assert!(r.contains("\"ok\":false"), "got {r}");
        let r = reply(&s, "+A(x, y).");
        assert!(r.contains("not ground"), "got {r}");
        let r = reply(&s, "!bogus");
        assert!(r.contains("unknown command"), "got {r}");
        // Still serving.
        assert!(reply(&s, "?- P(1, y).").contains("\"ok\":true"));
    }

    #[test]
    fn comments_and_blanks_are_silent_and_quit_quits() {
        let s = service();
        assert!(matches!(handle_line(&s, ""), LineOutcome::Silent));
        assert!(matches!(handle_line(&s, "% note"), LineOutcome::Silent));
        assert!(matches!(handle_line(&s, "# note"), LineOutcome::Silent));
        assert!(matches!(handle_line(&s, "!quit"), LineOutcome::Quit));
    }

    #[test]
    fn metrics_reply_is_prometheus_text_ending_in_eof() {
        let s = service();
        reply(&s, "?- P(1, y).");
        let r = reply(&s, "!metrics");
        assert!(r.starts_with("# TYPE"), "got {r}");
        assert!(r.ends_with("# EOF"), "got {r}");
        assert!(
            r.contains("recurs_serve_queries_total{cache=\"miss\",kernel=\"magic\",outcome=\"complete\"} 1"),
            "got {r}"
        );
        assert!(r.contains("recurs_serve_query_seconds_bucket"), "got {r}");
    }

    #[test]
    fn trace_directive_tags_the_reply_and_minted_ids_appear_otherwise() {
        let s = service();
        let r = reply(&s, "@trace=deadbeef ?- P(1, y).");
        assert!(r.contains("\"ok\":true"), "got {r}");
        assert!(r.contains("\"trace\":\"00000000deadbeef\""), "got {r}");
        // Without a directive the service mints one — a 16-hex-digit id.
        let r = reply(&s, "?- P(1, y).");
        let tag = r.split("\"trace\":\"").nth(1).expect("minted trace id");
        assert_eq!(tag.split('"').next().unwrap().len(), 16, "got {r}");
    }

    #[test]
    fn malformed_trace_directives_are_typed_errors() {
        let s = service();
        let r = reply(&s, "@trace= ?- P(1, y).");
        assert!(r.contains("\"ok\":false"), "got {r}");
        assert!(r.contains("bad @trace directive"), "got {r}");
        let r = reply(&s, "@trace=xyz ?- P(1, y).");
        assert!(r.contains("bad @trace directive"), "got {r}");
        let r = reply(&s, "@trace=00112233445566778 ?- P(1, y).");
        assert!(r.contains("bad @trace directive"), "got {r}");
        let r = reply(&s, "@trace=1 @trace=2 ?- P(1, y).");
        assert!(r.contains("duplicate @trace directive"), "got {r}");
        let r = reply(&s, "@trace=1");
        assert!(r.contains("\"ok\":false"), "got {r}");
        // Still serving.
        assert!(reply(&s, "?- P(1, y).").contains("\"ok\":true"));
    }

    #[test]
    fn explain_replies_with_a_plan_audit() {
        let s = service();
        let r = reply(&s, "!explain P(1, y)");
        assert!(r.contains("\"ok\":true"), "got {r}");
        assert!(r.contains("\"type\":\"explain\""), "got {r}");
        assert!(r.contains("\"classification\""), "got {r}");
        assert!(r.contains("\"kernel\""), "got {r}");
        assert!(r.contains("\"cache\""), "got {r}");
        assert!(r.contains("\"spans\""), "got {r}");
        let r = reply(&s, "@trace=feed !explain P(1, y)");
        assert!(r.contains("\"trace\":\"000000000000feed\""), "got {r}");
        let r = reply(&s, "!explain");
        assert!(r.contains("usage"), "got {r}");
        let r = reply(&s, "!explain Q(1, y)");
        assert!(r.contains("\"ok\":false"), "got {r}");
    }

    #[test]
    fn why_replies_with_a_derivation_tree_or_not_derived() {
        let s = service();
        let r = reply(&s, "why P(1, 3).");
        assert!(r.contains("\"ok\":true"), "got {r}");
        assert!(r.contains("\"type\":\"why\""), "got {r}");
        assert!(r.contains("\"derived\":true"), "got {r}");
        assert!(r.contains("\"tree\""), "got {r}");
        assert!(r.contains("\"rule\":\"recursive\""), "got {r}");
        let r = reply(&s, "why P(3, 1).");
        assert!(r.contains("\"derived\":false"), "got {r}");
        let r = reply(&s, "why");
        assert!(r.contains("usage"), "got {r}");
        let r = reply(&s, "why P(x, y).");
        assert!(r.contains("\"ok\":false"), "got {r}");
        let r = reply(&s, "why Q(1, 2).");
        assert!(r.contains("\"ok\":false"), "got {r}");
        assert!(r.contains("not served"), "got {r}");
    }

    #[test]
    fn run_loop_replies_per_line_until_quit() {
        let s = service();
        let input = b"?- P(1, y).\n!stats\n!quit\n?- P(2, y).\n" as &[u8];
        let mut out = Vec::new();
        run_loop(&s, input, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "quit must end the session: {text}");
        assert!(lines[0].contains("\"type\":\"answers\""));
        assert!(lines[1].contains("\"type\":\"stats\""));
    }
}
