//! Acceptance tests for the bounded point-query kernel: provably bounded
//! classes (permutational A2/A4, bounded B, acyclic D) must be answered by
//! rank-bounded unrolling — `fixpoint_iterations` is 0 ≤ rank, and the
//! answer is complete even under an iteration budget no fixpoint loop
//! could survive.

use recurs_datalog::database::Database;
use recurs_datalog::eval::{answer_query, semi_naive};
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::relation::{tuple_u64, Relation};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::term::Atom;
use recurs_serve::{PointKernelKind, QueryService, ServeConfig};

fn lr(src: &str) -> LinearRecursion {
    recurs_datalog::validate::validate_with_generic_exit(&parse_program(src).unwrap())
        .expect("formula validates")
}

fn oracle(f: &LinearRecursion, db: &Database, query: &Atom) -> Relation {
    let mut db = db.clone();
    semi_naive(&mut db, &f.to_program(), None).expect("oracle saturates");
    answer_query(&db, query).expect("oracle answers")
}

/// Asserts the full bounded contract for one (formula, db, query) triple.
fn assert_bounded(f: &LinearRecursion, db: &Database, query_text: &str, rank: u64) {
    let query = parse_atom(query_text).expect("query parses");
    let service = QueryService::new(f.clone(), db.clone(), ServeConfig::default());
    assert_eq!(
        service.kernel_for(&query),
        PointKernelKind::BoundedUnroll { rank },
        "dispatch must pick the bounded kernel for {query_text}"
    );
    assert!(service.classification().is_bounded());

    // An iteration cap of 1 kills any fixpoint loop after its first pass;
    // the bounded kernel never enters one, so the answer stays Complete.
    let one_iteration = EvalBudget::iteration_cap(Some(1));
    let reply = service
        .query_with_budget(&query, &one_iteration)
        .expect("bounded query succeeds");
    assert!(
        reply.outcome.is_complete(),
        "bounded kernel must not be budget-sensitive: it runs no fixpoint loop"
    );
    let iters = reply.stats.fixpoint_iterations as u64;
    assert_eq!(
        iters, 0,
        "bounded kernel must report zero fixpoint iterations"
    );
    assert!(
        iters <= rank,
        "iterations must never exceed the computed rank"
    );
    assert_eq!(
        *reply.answers,
        oracle(f, db, &query),
        "bounded unrolling diverged from the saturation oracle for {query_text}"
    );
}

#[test]
fn s5_rotation_is_answered_by_rank_2_unrolling() {
    // Pure permutational A2: P(x,y,z) :- P(y,z,x); rank = lcm(3) − 1 = 2.
    let f = lr("P(x, y, z) :- P(y, z, x).");
    let mut db = Database::new();
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([4, 5, 6])]),
    );
    assert_bounded(&f, &db, "P(2, y, z)", 2);
    assert_bounded(&f, &db, "P(x, y, z)", 2);
    assert_bounded(&f, &db, "P(3, 1, z)", 2);
}

#[test]
fn s8_class_b_is_answered_by_rank_2_unrolling() {
    // The paper's s8, class B (bounded cycle): proven upper bound 2.
    let f = lr("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).");
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
    db.insert_relation("B", Relation::from_pairs([(2, 5), (3, 6)]));
    db.insert_relation("C", Relation::from_pairs([(4, 7), (5, 8)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(4, [tuple_u64([1, 2, 4, 5]), tuple_u64([2, 3, 5, 6])]),
    );
    assert_bounded(&f, &db, "P(1, y, z, u)", 2);
    assert_bounded(&f, &db, "P(x, y, z, u)", 2);
}

#[test]
fn s10_acyclic_is_answered_by_rank_2_unrolling() {
    // The paper's s10, class D (no nontrivial cycles): proven upper bound 2.
    let f = lr("P(x, y) :- B(y), C(x, y1), P(x1, y1).");
    let mut db = Database::new();
    db.insert_relation(
        "B",
        Relation::from_tuples(1, [tuple_u64([2]), tuple_u64([5])]),
    );
    db.insert_relation("C", Relation::from_pairs([(1, 2), (3, 5), (4, 2)]));
    db.insert_relation("E", Relation::from_pairs([(1, 2), (3, 5)]));
    assert_bounded(&f, &db, "P(1, y)", 2);
    assert_bounded(&f, &db, "P(x, y)", 2);
    assert_bounded(&f, &db, "P(3, 5)", 2);
}

#[test]
fn unbounded_tc_never_selects_the_bounded_kernel() {
    // Sanity check of the dispatch boundary: transitive closure is A1-style
    // unbounded, so a bound query must go to magic, not bounded unrolling.
    let f = lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs((1..6).map(|i| (i, i + 1))));
    db.insert_relation("E", Relation::from_pairs((1..6).map(|i| (i, i + 1))));
    let service = QueryService::new(f, db, ServeConfig::default());
    let bound = parse_atom("P(1, y)").unwrap();
    assert_eq!(service.kernel_for(&bound), PointKernelKind::MagicIterate);
    let free = parse_atom("P(x, y)").unwrap();
    assert_eq!(service.kernel_for(&free), PointKernelKind::FullSaturation);
}
