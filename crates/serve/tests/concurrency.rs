//! Concurrency suite: N reader threads issuing mixed bound/free queries
//! while a writer installs new snapshot versions. Every reply must be
//! internally consistent — answered entirely against the single snapshot
//! version it reports (no torn reads), never served stale from the cache,
//! and `Complete` or a sound `Truncated` under-approximation.

use recurs_datalog::database::Database;
use recurs_datalog::eval::{answer_query, semi_naive};
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::relation::{tuple_u64, Relation};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::term::{Atom, Term, Value};
use recurs_serve::{QueryService, ServeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

const BASE: u64 = 16; // base chain 1 → … → BASE
const UPDATES: u64 = 5; // writer extends the chain this many times

fn tc() -> LinearRecursion {
    recurs_datalog::validate::validate_with_generic_exit(
        &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
    )
    .expect("TC validates")
}

/// The chain database after `v` writer updates (version `v`).
fn db_at_version(v: u64) -> Database {
    let mut db = Database::new();
    let n = BASE + v;
    db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db
}

/// Oracle fixpoints for every version the writer will install.
fn oracles() -> Vec<Database> {
    let lr = tc();
    (0..=UPDATES)
        .map(|v| {
            let mut db = db_at_version(v);
            semi_naive(&mut db, &lr.to_program(), None).expect("oracle saturates");
            db
        })
        .collect()
}

fn reader_queries() -> Vec<Atom> {
    let mut queries = Vec::new();
    for c in 1..=BASE {
        queries.push(Atom::new(
            "P",
            vec![Term::Const(Value::from_u64(c)), Term::var("y")],
        ));
    }
    queries.push(parse_atom("P(x, y)").expect("query parses"));
    queries.push(parse_atom("P(1, 5)").expect("query parses"));
    queries
}

#[test]
fn readers_and_writer_never_tear_or_serve_stale() {
    let service = QueryService::new(tc(), db_at_version(0), ServeConfig::default());
    let oracles = oracles();
    let queries = reader_queries();
    let readers = 6;
    let rounds = 24;
    let checked = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for r in 0..readers {
            let service = &service;
            let oracles = &oracles;
            let queries = &queries;
            let checked = &checked;
            s.spawn(move || {
                for i in 0..rounds {
                    let q = &queries[(r * 7 + i * 3) % queries.len()];
                    let reply = service.query(q).expect("query succeeds");
                    assert!(
                        reply.outcome.is_complete(),
                        "unbudgeted query reported truncation"
                    );
                    // No torn read: the answers must equal the oracle for
                    // exactly the version the reply claims it used.
                    let v = reply.stats.snapshot_version as usize;
                    assert!(v < oracles.len(), "impossible version {v}");
                    let want = answer_query(&oracles[v], q).expect("oracle answers");
                    assert_eq!(
                        *reply.answers, want,
                        "reply diverges from version {v} (query {q}, cache {:?})",
                        reply.stats.cache
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(|| {
            for v in 0..UPDATES {
                std::thread::sleep(std::time::Duration::from_millis(3));
                let n = BASE + v;
                let snap = service
                    .update(|db| {
                        db.insert("A", tuple_u64([n, n + 1]))?;
                        db.insert("E", tuple_u64([n, n + 1]))?;
                        Ok(())
                    })
                    .expect("update succeeds");
                assert_eq!(snap.version(), v + 1);
            }
        });
    });

    assert_eq!(checked.load(Ordering::Relaxed), readers * rounds);
    let stats = service.stats();
    assert_eq!(stats.queries, (readers * rounds) as u64);
    assert_eq!(stats.truncated, 0);
    assert_eq!(stats.snapshot_version, UPDATES);
    assert_eq!(stats.snapshot_updates, UPDATES);
    // The final cache only holds entries for the final version: re-asking
    // any query must produce answers for the live snapshot.
    for q in &queries {
        let reply = service.query(q).expect("post-run query succeeds");
        assert_eq!(reply.stats.snapshot_version, UPDATES);
        let want = answer_query(&oracles[UPDATES as usize], q).expect("oracle answers");
        assert_eq!(*reply.answers, want, "stale cache entry for {q}");
    }
}

#[test]
fn budgeted_concurrent_replies_are_sound_underapproximations() {
    let tight = EvalBudget::unlimited().with_max_tuples(40);
    let service = QueryService::new(
        tc(),
        db_at_version(0),
        ServeConfig {
            budget: tight,
            ..ServeConfig::default()
        },
    );
    let oracles = oracles();
    let queries = reader_queries();

    std::thread::scope(|s| {
        for r in 0..4 {
            let service = &service;
            let oracles = &oracles;
            let queries = &queries;
            s.spawn(move || {
                for i in 0..16 {
                    let q = &queries[(r * 5 + i) % queries.len()];
                    let reply = service.query(q).expect("query succeeds");
                    let v = reply.stats.snapshot_version as usize;
                    let want = answer_query(&oracles[v], q).expect("oracle answers");
                    if reply.outcome.is_complete() {
                        assert_eq!(*reply.answers, want, "Complete reply missed tuples");
                    } else {
                        // Soundly truncated: a subset of the true answers.
                        for t in reply.answers.iter() {
                            assert!(
                                want.contains(t),
                                "truncated reply over-approximated for {q}"
                            );
                        }
                    }
                }
            });
        }
        s.spawn(|| {
            for v in 0..UPDATES {
                std::thread::sleep(std::time::Duration::from_millis(2));
                let n = BASE + v;
                service
                    .update(|db| {
                        db.insert("A", tuple_u64([n, n + 1]))?;
                        db.insert("E", tuple_u64([n, n + 1]))?;
                        Ok(())
                    })
                    .expect("update succeeds");
            }
        });
    });

    // Truncated answers must never have been cached.
    let stats = service.stats();
    assert_eq!(stats.cache.insertions, stats.complete - stats.cache.hits);
}
