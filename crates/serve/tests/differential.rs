//! Differential property tests for the serving layer: for random bound
//! queries over random workloads, the class-aware point-query kernel must
//! return exactly what filtering the full governed saturation returns —
//! with the cache on and off, and across a snapshot update.

use proptest::prelude::*;
use recurs_datalog::database::Database;
use recurs_datalog::eval::{answer_query, semi_naive};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::term::{Atom, Value};
use recurs_serve::{CacheOutcome, QueryService, ServeConfig};
use recurs_workload::{random_database, random_linear_recursion, random_query, RuleConfig};

/// The reference: saturate a copy of the database with the plain oracle,
/// then select/project the query over the fixpoint.
fn filtered_saturation(
    lr: &recurs_datalog::rule::LinearRecursion,
    db: &Database,
    query: &Atom,
) -> Relation {
    let mut db = db.clone();
    semi_naive(&mut db, &lr.to_program(), None).expect("oracle saturates generated workloads");
    answer_query(&db, query).expect("oracle answers the query")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn point_kernel_equals_filtered_saturation(
        rule_seed in 0u64..10_000,
        db_seed in 0u64..10_000,
        query_seed in 0u64..10_000,
        tuples in 1usize..30,
        domain in 2u64..7,
        bound_prob in 0u32..=100,
        cache_on in 0usize..2,
    ) {
        let lr = random_linear_recursion(rule_seed, RuleConfig::default());
        let edb = random_database(&lr, tuples, domain, db_seed);
        let query = random_query(&lr, domain, bound_prob, query_seed);
        let config = ServeConfig {
            cache_capacity: if cache_on == 1 { 256 } else { 0 },
            ..ServeConfig::default()
        };
        let service = QueryService::new(lr.clone(), edb.clone(), config);
        let kernel = service.kernel_for(&query);

        // First ask: computed by the dispatched kernel.
        let first = service.query(&query).expect("service answers the query");
        prop_assert!(first.outcome.is_complete(), "unbudgeted query truncated");
        let want = filtered_saturation(&lr, &edb, &query);
        prop_assert_eq!(
            &*first.answers, &want,
            "kernel {:?} ≠ filtered saturation (rule_seed={} db_seed={} query={} rule={})",
            kernel, rule_seed, db_seed, query, lr.recursive_rule
        );

        // Second ask: served from cache when enabled; identical either way.
        let second = service.query(&query).expect("repeat query succeeds");
        prop_assert_eq!(&*second.answers, &want);
        if cache_on == 1 {
            prop_assert_eq!(second.stats.cache, CacheOutcome::Hit);
        } else {
            prop_assert_eq!(second.stats.cache, CacheOutcome::Bypass);
        }

        // Install a new snapshot (one extra random tuple in the first EDB
        // relation) and re-check equivalence against the *new* database.
        let (rel_name, arity) = {
            let snap = service.snapshot();
            let (name, rel) = snap
                .database()
                .iter()
                .next()
                .expect("generated workloads have at least one EDB relation");
            (name, rel.arity())
        };
        let extra: Tuple = (0..arity)
            .map(|i| Value::from_u64((db_seed + query_seed + i as u64) % domain + 1))
            .collect();
        service
            .update(|db| db.insert(rel_name, extra.clone()).map(|_| ()))
            .expect("snapshot update succeeds");

        let new_db = {
            let snap = service.snapshot();
            prop_assert_eq!(snap.version(), 1);
            snap.database().clone()
        };
        let want_after = filtered_saturation(&lr, &new_db, &query);
        let third = service.query(&query).expect("post-update query succeeds");
        prop_assert!(third.outcome.is_complete());
        if cache_on == 1 {
            // A new version must never be served from the old version's cache.
            prop_assert_eq!(third.stats.cache, CacheOutcome::Miss);
        }
        prop_assert_eq!(third.stats.snapshot_version, 1);
        prop_assert_eq!(
            &*third.answers, &want_after,
            "post-update answers diverge (rule_seed={} db_seed={} query={})",
            rule_seed, db_seed, query
        );
    }
}
