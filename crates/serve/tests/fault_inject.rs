//! Fault-injection suite for the serving layer (requires
//! `--features fault-inject`, which forwards to the engine's fault module):
//! injected worker panics inside a parallel saturation kernel must be
//! contained by the engine's degradation ladder without corrupting a
//! served reply or poisoning the cache.

#![cfg(feature = "fault-inject")]

use recurs_datalog::database::Database;
use recurs_datalog::eval::{answer_query, semi_naive};
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::LinearRecursion;
use recurs_engine::fault::{arm, FaultPlan, PanicMode};
use recurs_engine::EngineMode;
use recurs_obs::{CaptureRecorder, Obs};
use recurs_serve::{CacheOutcome, QueryService, ServeConfig};
use std::sync::Arc;

fn tc() -> LinearRecursion {
    recurs_datalog::validate::validate_with_generic_exit(
        &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
    )
    .expect("TC validates")
}

fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db
}

fn parallel_service(n: u64) -> QueryService {
    parallel_service_obs(n, Obs::noop())
}

fn parallel_service_obs(n: u64, obs: Obs) -> QueryService {
    QueryService::new(
        tc(),
        tc_db(n),
        ServeConfig {
            mode: EngineMode::Parallel { threads: 3 },
            obs,
            ..ServeConfig::default()
        },
    )
}

#[test]
fn worker_panic_during_saturation_still_serves_complete_answers() {
    let _g = arm(FaultPlan {
        panic_mode: Some(PanicMode::OnceInWorker(0)),
        ..FaultPlan::default()
    });
    let capture = Arc::new(CaptureRecorder::new());
    let service = parallel_service_obs(12, Obs::new(capture.clone()));
    // All-free query → FullSaturation path → parallel engine kernel, where
    // the armed panic fires. The engine degrades and retries; the reply must
    // still be complete and correct.
    let q = parse_atom("P(x, y)").expect("query parses");
    let reply = service.query(&q).expect("fault is contained, not surfaced");
    assert!(reply.outcome.is_complete());

    let mut oracle = tc_db(12);
    semi_naive(&mut oracle, &tc().to_program(), None).expect("oracle saturates");
    let want = answer_query(&oracle, &q).expect("oracle answers");
    assert_eq!(
        *reply.answers, want,
        "degraded run diverged from the oracle"
    );

    // The (correct) answer was cached; the repeat ask is a hit with the
    // same tuples even though the first run degraded.
    let again = service.query(&q).expect("repeat query succeeds");
    assert_eq!(again.stats.cache, CacheOutcome::Hit);
    assert_eq!(again.answers, reply.answers);

    // The injected fault travelled through the serving layer's recorder:
    // the trace shows the fault firing inside the engine kernel *and* the
    // served query that contained it, so an operator can correlate the two.
    let injected = capture.events_of("fault.injected");
    assert_eq!(injected.len(), 1, "one armed fault → one fault.injected");
    assert_eq!(injected[0].text("kind"), Some("panic"));
    assert_eq!(injected[0].text("site"), Some("worker"));
    assert_eq!(capture.events_of("engine.worker_panic").len(), 1);
    assert_eq!(
        capture.events_of("serve.query").len(),
        2,
        "both the degraded miss and the cache hit are traced"
    );
}

#[test]
fn worker_panic_during_magic_iteration_is_contained() {
    let _g = arm(FaultPlan {
        panic_mode: Some(PanicMode::OnceInWorker(0)),
        ..FaultPlan::default()
    });
    let service = parallel_service(12);
    // Bound query → MagicIterate path, also engine-driven under the
    // parallel mode; the panic must be contained there too.
    let q = parse_atom("P(1, y)").expect("query parses");
    let reply = service.query(&q).expect("fault is contained, not surfaced");
    assert!(reply.outcome.is_complete());

    let mut oracle = tc_db(12);
    semi_naive(&mut oracle, &tc().to_program(), None).expect("oracle saturates");
    let want = answer_query(&oracle, &q).expect("oracle answers");
    assert_eq!(*reply.answers, want);
}
