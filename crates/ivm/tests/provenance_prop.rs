//! Differential property tests for derivation provenance: over random
//! small EDBs for a representative formula of each paper class (A1–A5, B,
//! D), `explain_fact` must return a derivation tree for **exactly** the
//! tuples a from-scratch oracle derives, and every returned tree must
//! verify structurally — all leaves EDB facts, every internal node a valid
//! ground rule instance under one simultaneous substitution.

use proptest::prelude::*;
use recurs_datalog::database::Database;
use recurs_datalog::eval::semi_naive;
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Value;
use recurs_ivm::{explain_fact, verify_tree, WhyOutcome, DEFAULT_WHY_DEPTH};

/// One EDB insertion drawn by proptest (provenance is read-only, so the
/// stream has no deletes — coverage comes from database shape).
#[derive(Debug, Clone, Copy)]
struct RawFact {
    rel: usize,
    vals: [u64; 4],
}

fn arb_fact(nrels: usize) -> impl Strategy<Value = RawFact> {
    (0..nrels, (1u64..=4, 1u64..=4, 1u64..=4, 1u64..=4)).prop_map(|(rel, (a, b, c, d))| RawFact {
        rel,
        vals: [a, b, c, d],
    })
}

fn lr(src: &str) -> LinearRecursion {
    validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
}

fn tuple_of(vals: &[u64; 4], arity: usize) -> Tuple {
    vals[..arity].iter().map(|&v| Value::from_u64(v)).collect()
}

/// From-scratch fixpoint of the recursive predicate over `edb`.
fn oracle_relation(lr: &LinearRecursion, edb: &Database) -> Relation {
    let mut db = edb.clone();
    db.insert_relation(lr.predicate, Relation::new(lr.dimension()));
    semi_naive(&mut db, &lr.to_program(), None).unwrap();
    db.get(lr.predicate).unwrap().clone()
}

/// Every value combination of the recursive predicate's arity over the
/// tiny test domain — so NotDerived is exercised on exactly the complement
/// of the fixpoint.
fn full_domain(dim: usize) -> Vec<Tuple> {
    let mut out: Vec<Vec<u64>> = vec![Vec::new()];
    for _ in 0..dim {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                (1u64..=4).map(move |v| {
                    let mut next = prefix.clone();
                    next.push(v);
                    next
                })
            })
            .collect();
    }
    out.iter()
        .map(|vals| vals.iter().map(|&v| Value::from_u64(v)).collect())
        .collect()
}

fn run_provenance_differential(
    src: &str,
    rels: &[(&str, usize)],
    facts: &[RawFact],
) -> Result<(), TestCaseError> {
    let lr = lr(src);
    let mut db = Database::new();
    for &(name, arity) in rels {
        db.insert_relation(name, Relation::new(arity));
    }
    for f in facts {
        let (name, arity) = rels[f.rel];
        db.get_mut(name).unwrap().insert(tuple_of(&f.vals, arity));
    }
    let budget = EvalBudget::unlimited();
    let oracle = oracle_relation(&lr, &db);

    for fact in full_domain(lr.dimension()) {
        let outcome = explain_fact(&lr, &db, &fact, DEFAULT_WHY_DEPTH, &budget).unwrap();
        if oracle.contains(&fact) {
            let WhyOutcome::Derived(tree) = outcome else {
                return Err(TestCaseError::fail(format!(
                    "oracle derives {fact:?} but explain_fact said {outcome:?}"
                )));
            };
            prop_assert_eq!(&tree.tuple, &fact);
            if let Err(defect) = verify_tree(&lr, &db, &tree) {
                return Err(TestCaseError::fail(format!(
                    "tree for {fact:?} failed verification: {defect}"
                )));
            }
        } else {
            prop_assert!(
                matches!(outcome, WhyOutcome::NotDerived),
                "oracle does not derive {:?} but explain_fact said {:?}",
                fact,
                outcome
            );
        }
    }
    Ok(())
}

macro_rules! provenance_class {
    ($test:ident, $src:expr, $rels:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn $test(facts in prop::collection::vec(arb_fact($rels.len()), 0..14)) {
                run_provenance_differential($src, &$rels, &facts)?;
            }
        }
    };
}

// Example 3 — class A1 (stable).
provenance_class!(
    class_a1_trees_verify_and_match_oracle,
    "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).\nP(x, y, z) :- E(x, y, z).",
    [("A", 2), ("B", 2), ("C", 2), ("E", 3)]
);

// Class A2 — pure self-support: the recursive rule re-derives only what
// it already has, so every tree must bottom out in an exit rule.
provenance_class!(
    class_a2_trees_verify_and_match_oracle,
    "P(x, y) :- A(x), B(y), P(x, y).\nP(x, y) :- E(x, y).",
    [("A", 1), ("B", 1), ("E", 2)]
);

// Example 4 — class A3 (stable after 3 unfoldings).
provenance_class!(
    class_a3_trees_verify_and_match_oracle,
    "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).\nP(x1, x2, x3) :- E(x1, x2, x3).",
    [("A", 2), ("B", 2), ("C", 2), ("E", 3)]
);

// Example 5 — class A4 (permutational, rank 2): derivations rotate the
// exit tuple, a pure cycle with no EDB atoms in the recursive rule.
provenance_class!(
    class_a4_trees_verify_and_match_oracle,
    "P(x, y, z) :- P(y, z, x).\nP(x, y, z) :- E(x, y, z).",
    [("E", 3)]
);

// Transitive closure — class A5 (one-directional); cyclic data gives
// unbounded forward derivations that backward reconstruction must cut.
provenance_class!(
    class_a5_trees_verify_and_match_oracle,
    "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).",
    [("A", 2), ("E", 2)]
);

// Example 8 — class B (bounded, rank 2).
provenance_class!(
    class_b_trees_verify_and_match_oracle,
    "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).\nP(x, y, z, u) :- E(x, y, z, u).",
    [("A", 2), ("B", 2), ("C", 2), ("E", 4)]
);

// Example 10 — class D (acyclic, rank 2).
provenance_class!(
    class_d_trees_verify_and_match_oracle,
    "P(x, y) :- B(y), C(x, y1), P(x1, y1).\nP(x, y) :- E(x, y).",
    [("B", 1), ("C", 2), ("E", 2)]
);
