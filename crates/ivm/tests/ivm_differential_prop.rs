//! Differential property tests: random mixed insert/delete streams over a
//! representative formula of every paper class (A1–A5, B, C, D), asserting
//! after every step that the incrementally patched materialization is
//! tuple-for-tuple identical to a from-scratch saturation of the updated
//! database. Streams draw from a tiny domain so duplicate inserts and
//! absent deletes (the no-op paths) occur constantly.

use proptest::prelude::*;
use recurs_datalog::database::Database;
use recurs_datalog::eval::semi_naive;
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Value;
use recurs_ivm::{EdbDelta, FactOp, Materialization};
use recurs_obs::Obs;

/// One EDB mutation drawn by proptest: the relation is an index into the
/// class's schema, and the first `arity` values of `vals` form the tuple.
#[derive(Debug, Clone, Copy)]
struct RawOp {
    insert: bool,
    rel: usize,
    vals: [u64; 4],
}

fn arb_op(nrels: usize) -> impl Strategy<Value = RawOp> {
    (0u64..=1, 0..nrels, (1u64..=4, 1u64..=4, 1u64..=4, 1u64..=4)).prop_map(
        |(insert, rel, (a, b, c, d))| RawOp {
            insert: insert == 1,
            rel,
            vals: [a, b, c, d],
        },
    )
}

fn arb_stream(nrels: usize) -> impl Strategy<Value = (Vec<RawOp>, Vec<Vec<RawOp>>)> {
    (
        prop::collection::vec(arb_op(nrels), 0..10),
        prop::collection::vec(prop::collection::vec(arb_op(nrels), 1..4), 1..5),
    )
}

fn lr(src: &str) -> LinearRecursion {
    validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
}

fn tuple_of(op: &RawOp, arity: usize) -> Tuple {
    op.vals[..arity]
        .iter()
        .map(|&v| Value::from_u64(v))
        .collect()
}

fn fact_of(op: &RawOp, rels: &[(&str, usize)]) -> FactOp {
    let (name, arity) = rels[op.rel];
    let t = tuple_of(op, arity);
    if op.insert {
        FactOp::Insert(Symbol::intern(name), t)
    } else {
        FactOp::Delete(Symbol::intern(name), t)
    }
}

/// From-scratch fixpoint of the recursive predicate over `edb`.
fn oracle_relation(lr: &LinearRecursion, edb: &Database) -> Relation {
    let mut db = edb.clone();
    db.insert_relation(lr.predicate, Relation::new(lr.dimension()));
    semi_naive(&mut db, &lr.to_program(), None).unwrap();
    db.get(lr.predicate).unwrap().clone()
}

/// Drive one random stream: saturate the initial database, then patch the
/// materialization step by step while replaying the same net deltas onto a
/// shadow database that a from-scratch oracle saturates after every step.
fn run_differential(
    src: &str,
    rels: &[(&str, usize)],
    initial: &[RawOp],
    steps: &[Vec<RawOp>],
) -> Result<(), TestCaseError> {
    let lr = lr(src);
    let mut db = Database::new();
    for &(name, arity) in rels {
        db.insert_relation(name, Relation::new(arity));
    }
    for op in initial {
        let (name, arity) = rels[op.rel];
        db.get_mut(name).unwrap().insert(tuple_of(op, arity));
    }
    let budget = EvalBudget::unlimited();
    let mut mat = Materialization::saturate(&lr, &db, &budget, &Obs::noop()).unwrap();
    prop_assert_eq!(mat.relation(), &oracle_relation(&lr, &db));

    for step in steps {
        let ops: Vec<FactOp> = step.iter().map(|op| fact_of(op, rels)).collect();
        let delta = EdbDelta::normalize(&ops, &db).unwrap();
        let report = mat.apply(&delta, &budget).unwrap();
        if delta.is_empty() {
            // No-op groups must not move the materialization at all.
            prop_assert!(report.idb.as_ref().is_some_and(|p| p.is_empty()));
        }
        delta.apply_to(&mut db).unwrap();
        prop_assert_eq!(
            mat.relation(),
            &oracle_relation(&lr, &db),
            "patched != from-scratch after {:?}",
            step
        );
    }
    Ok(())
}

macro_rules! differential_class {
    ($test:ident, $src:expr, $rels:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn $test(stream in arb_stream($rels.len())) {
                let (initial, steps) = stream;
                run_differential($src, &$rels, &initial, &steps)?;
            }
        }
    };
}

// Example 3 — class A1 (stable).
differential_class!(
    class_a1_patches_match_from_scratch,
    "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).\nP(x, y, z) :- E(x, y, z).",
    [("A", 2), ("B", 2), ("C", 2), ("E", 3)]
);

// Class A2 — pure self-support: every derived tuple supports itself.
differential_class!(
    class_a2_patches_match_from_scratch,
    "P(x, y) :- A(x), B(y), P(x, y).\nP(x, y) :- E(x, y).",
    [("A", 1), ("B", 1), ("E", 2)]
);

// Example 4 — class A3 (stable after 3 unfoldings).
differential_class!(
    class_a3_patches_match_from_scratch,
    "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).\nP(x1, x2, x3) :- E(x1, x2, x3).",
    [("A", 2), ("B", 2), ("C", 2), ("E", 3)]
);

// Example 5 — class A4 (permutational, rank 2): no EDB atom in the
// recursive rule, so only the exit relation ever changes.
differential_class!(
    class_a4_patches_match_from_scratch,
    "P(x, y, z) :- P(y, z, x).\nP(x, y, z) :- E(x, y, z).",
    [("E", 3)]
);

// Transitive closure — class A5 (one-directional).
differential_class!(
    class_a5_patches_match_from_scratch,
    "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).",
    [("A", 2), ("E", 2)]
);

// Example 8 — class B (bounded, rank 2).
differential_class!(
    class_b_patches_match_from_scratch,
    "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).\nP(x, y, z, u) :- E(x, y, z, u).",
    [("A", 2), ("B", 2), ("C", 2), ("E", 4)]
);

// Example 9 — class C (unbounded cycle, generic DRed path).
differential_class!(
    class_c_patches_match_from_scratch,
    "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\nP(x, y, z) :- E(x, y, z).",
    [("A", 2), ("B", 2), ("E", 3)]
);

// Example 10 — class D (acyclic, rank 2).
differential_class!(
    class_d_patches_match_from_scratch,
    "P(x, y) :- B(y), C(x, y1), P(x1, y1).\nP(x, y) :- E(x, y).",
    [("B", 1), ("C", 2), ("E", 2)]
);

// Under fault injection the patch path may trip mid-maintenance and fall
// back to cold saturation; either way the result must equal the oracle.
#[cfg(feature = "fault-inject")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn tripped_patches_still_match_from_scratch(
        stream in arb_stream(2),
        trip_round in 1u64..4,
    ) {
        let (initial, steps) = stream;
        let _guard = recurs_ivm::fault::exclusive();
        let rels = [("A", 2), ("E", 2)];
        let src = "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).";
        let lr = lr(src);
        let mut db = Database::new();
        for &(name, arity) in &rels {
            db.insert_relation(name, Relation::new(arity));
        }
        for op in &initial {
            let (name, arity) = rels[op.rel];
            db.get_mut(name).unwrap().insert(tuple_of(op, arity));
        }
        let budget = EvalBudget::unlimited();
        let mut mat = Materialization::saturate(&lr, &db, &budget, &Obs::noop()).unwrap();
        for step in &steps {
            let ops: Vec<FactOp> = step.iter().map(|op| fact_of(op, &rels)).collect();
            let delta = EdbDelta::normalize(&ops, &db).unwrap();
            // Arm a one-shot fault before every patch; whether it fires
            // (cold fallback) or not (stream too short), parity must hold.
            recurs_ivm::fault::arm_round_trip(trip_round);
            let outcome = mat.apply(&delta, &budget);
            recurs_ivm::fault::disarm();
            outcome.unwrap();
            delta.apply_to(&mut db).unwrap();
            prop_assert_eq!(mat.relation(), &oracle_relation(&lr, &db));
        }
    }
}
