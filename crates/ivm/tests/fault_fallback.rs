//! Fault-injection drills: an armed round hook trips maintenance loops
//! mid-patch, and the cold-saturation fallback must still land the
//! materialization on the exact from-scratch state.

#![cfg(feature = "fault-inject")]

use recurs_datalog::database::Database;
use recurs_datalog::eval::semi_naive;
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::{tuple_u64, Relation};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_ivm::{fault, EdbDelta, FactOp, MaintenancePath, Materialization};
use recurs_obs::Obs;

fn tc() -> LinearRecursion {
    let program =
        parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").expect("tc parses");
    validate_with_generic_exit(&program).expect("tc is linear")
}

fn chain_db(n: u64) -> Database {
    let mut db = Database::new();
    let pairs: Vec<(u64, u64)> = (1..n).map(|i| (i, i + 1)).collect();
    db.insert_relation("A", Relation::from_pairs(pairs.iter().copied()));
    db.insert_relation("E", Relation::from_pairs(pairs.iter().copied()));
    db
}

fn oracle(lr: &LinearRecursion, edb: &Database) -> Relation {
    let mut db = edb.clone();
    db.insert_relation(lr.predicate, Relation::new(lr.dimension()));
    semi_naive(&mut db, &lr.to_program(), None).expect("oracle saturates");
    db.get(lr.predicate).expect("oracle relation").clone()
}

#[test]
fn tripped_insert_propagation_falls_back_cold_and_stays_exact() {
    let _gate = fault::exclusive();
    let lr = tc();
    let mut db = chain_db(48);
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let e = Symbol::intern("E");
    let ops = vec![FactOp::Insert(e, tuple_u64([48, 49]))];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    fault::arm_round_trip(3);
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    fault::disarm();
    assert_eq!(report.path, MaintenancePath::ColdFallback);
    assert!(report.truncation.is_some());
    assert!(report.idb.is_none());
    delta.apply_to(&mut db).unwrap();
    assert_eq!(mat.relation(), &oracle(&lr, &db));
}

#[test]
fn tripped_overdeletion_falls_back_cold_and_stays_exact() {
    let _gate = fault::exclusive();
    let lr = tc();
    let mut db = chain_db(48);
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let a = Symbol::intern("A");
    // Deleting an interior edge drives a multi-round overdeletion closure.
    let ops = vec![FactOp::Delete(a, tuple_u64([2, 3]))];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    fault::arm_round_trip(1);
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    fault::disarm();
    assert_eq!(report.path, MaintenancePath::ColdFallback);
    assert!(report.truncation.is_some());
    delta.apply_to(&mut db).unwrap();
    assert_eq!(mat.relation(), &oracle(&lr, &db));
}

#[test]
fn disarmed_hook_leaves_patches_alone() {
    let _gate = fault::exclusive();
    fault::disarm();
    let lr = tc();
    let mut db = chain_db(16);
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let e = Symbol::intern("E");
    let ops = vec![FactOp::Insert(e, tuple_u64([16, 17]))];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    assert_ne!(report.path, MaintenancePath::ColdFallback);
    assert!(report.truncation.is_none());
    delta.apply_to(&mut db).unwrap();
    assert_eq!(mat.relation(), &oracle(&lr, &db));
}
