//! Correctness of counted saturation and patch maintenance on hand-built
//! examples: exact counts, insertion/deletion parity with from-scratch
//! evaluation, self-support cycles, and the `ivm.patch` event taxonomy.

use recurs_datalog::database::Database;
use recurs_datalog::eval::{eval_body, semi_naive};
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::{tuple_u64, Relation, Tuple};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::term::Term;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_ivm::{EdbDelta, FactOp, MaintenancePath, Materialization};
use recurs_obs::{CaptureRecorder, Obs};
use std::collections::HashMap;
use std::sync::Arc;

fn lr(src: &str) -> LinearRecursion {
    validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
}

fn tc() -> LinearRecursion {
    lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
}

fn chain_db(n: u64) -> Database {
    let mut db = Database::new();
    let pairs: Vec<(u64, u64)> = (1..n).map(|i| (i, i + 1)).collect();
    db.insert_relation("A", Relation::from_pairs(pairs.iter().copied()));
    db.insert_relation("E", Relation::from_pairs(pairs.iter().copied()));
    db
}

/// From-scratch fixpoint of the recursive predicate over `edb`.
fn oracle_relation(lr: &LinearRecursion, edb: &Database) -> Relation {
    let mut db = edb.clone();
    let program = lr.to_program();
    for rule in &program.rules {
        for atom in &rule.body {
            if atom.predicate != lr.predicate {
                db.declare(atom.predicate, atom.arity()).unwrap();
            }
        }
    }
    db.insert_relation(lr.predicate, Relation::new(lr.dimension()));
    semi_naive(&mut db, &program, None).unwrap();
    db.get(lr.predicate).unwrap().clone()
}

/// Independent count oracle: forward-enumerates every rule's body bindings
/// over the *saturated* database and tallies instantiations per head tuple.
fn oracle_counts(lr: &LinearRecursion, saturated: &Database) -> HashMap<Tuple, u64> {
    let mut counts: HashMap<Tuple, u64> = HashMap::new();
    for rule in std::iter::once(&lr.recursive_rule).chain(lr.exit_rules.iter()) {
        let bindings = eval_body(saturated, &rule.body, &HashMap::new()).unwrap();
        let cols: Vec<usize> = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => bindings.column_of(*v).unwrap(),
                Term::Const(_) => panic!("constant heads not used in these tests"),
            })
            .collect();
        for row in bindings.rel.iter() {
            let head: Tuple = cols.iter().map(|&c| row[c]).collect();
            *counts.entry(head).or_insert(0) += 1;
        }
    }
    counts
}

fn assert_counts_exact(mat: &Materialization, lr: &LinearRecursion) {
    let oracle = oracle_counts(lr, mat.database());
    for t in mat.relation().iter() {
        assert_eq!(
            mat.count(t),
            oracle.get(t).copied().unwrap_or(0),
            "count mismatch for {t:?}"
        );
    }
    assert_eq!(
        mat.relation().len(),
        oracle.len(),
        "materialized relation and count support differ"
    );
}

#[test]
fn saturation_counts_are_exact_on_tc() {
    let lr = tc();
    let mat = Materialization::saturate(&lr, &chain_db(6), &EvalBudget::unlimited(), &Obs::noop())
        .unwrap();
    assert_eq!(mat.relation(), &oracle_relation(&lr, &chain_db(6)));
    assert_counts_exact(&mat, &lr);
    // Spot-check: P(1,2) has exactly one derivation (the E edge); P(1,3)
    // has one (through A(1,2), P(2,3)).
    assert_eq!(mat.count(&tuple_u64([1, 2])), 1);
    assert_eq!(mat.count(&tuple_u64([1, 3])), 1);
    assert_eq!(mat.path(), MaintenancePath::Frontier); // TC is class A5
}

#[test]
fn insert_patch_matches_from_scratch() {
    let lr = tc();
    let mut db = chain_db(5);
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let a = Symbol::intern("A");
    let e = Symbol::intern("E");
    let ops = vec![
        FactOp::Insert(e, tuple_u64([5, 6])),
        FactOp::Insert(a, tuple_u64([5, 6])),
    ];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    assert!(report.truncation.is_none());
    delta.apply_to(&mut db).unwrap();
    assert_eq!(mat.relation(), &oracle_relation(&lr, &db));
    assert_counts_exact(&mat, &lr);
    let patch = report.idb.unwrap();
    assert!(patch.inserted.contains(&tuple_u64([1, 6])));
    assert!(patch.deleted.is_empty());
}

#[test]
fn delete_patch_matches_from_scratch() {
    let lr = tc();
    let mut db = chain_db(6);
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let e = Symbol::intern("E");
    let ops = vec![FactOp::Delete(e, tuple_u64([5, 6]))];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    assert!(report.truncation.is_none());
    delta.apply_to(&mut db).unwrap();
    assert_eq!(mat.relation(), &oracle_relation(&lr, &db));
    assert_counts_exact(&mat, &lr);
    let patch = report.idb.unwrap();
    // Deleting the last exit edge kills P(x,6) for every x: the A-chain
    // still reaches 6, but nothing grounds it.
    assert!(patch.deleted.contains(&tuple_u64([1, 6])));
    assert!(patch.inserted.is_empty());
    assert!(report.stats.overdeleted >= 5);
}

#[test]
fn interior_delete_rederives_surviving_tuples() {
    // Chain 1→…→6 plus a shortcut exit edge E(2,4). Deleting A(2,3)
    // overdeletes P(2,y) and P(1,y) for y ≥ 4 (their chains pass the
    // deleted edge), but P(2,4) recounts positive through E(2,4) and then
    // P(1,4) comes back through the forward pass (A(1,2) ∧ P(2,4)).
    let lr = tc();
    let mut db = chain_db(6);
    db.get_mut("E").unwrap().insert(tuple_u64([2, 4]));
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let a = Symbol::intern("A");
    let ops = vec![FactOp::Delete(a, tuple_u64([2, 3]))];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    delta.apply_to(&mut db).unwrap();
    assert_eq!(mat.relation(), &oracle_relation(&lr, &db));
    assert_counts_exact(&mat, &lr);
    assert!(mat.relation().contains(&tuple_u64([2, 4])));
    assert!(mat.relation().contains(&tuple_u64([1, 4])));
    assert!(!mat.relation().contains(&tuple_u64([2, 5])));
    assert!(report.stats.overdeleted > report.stats.rederived);
    assert!(report.stats.rederived >= 2);
}

#[test]
fn pure_self_support_dies_with_its_ground_support() {
    // Class A2: P(x,y) :- A(x), B(y), P(x,y). The recursive rule supports
    // every tuple it derives *with itself*; deleting the exit support must
    // kill the tuple even though its count includes the self-loop.
    let lr = lr("P(x, y) :- A(x), B(y), P(x, y).\nP(x, y) :- E(x, y).");
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_tuples(1, [tuple_u64([1])]));
    db.insert_relation("B", Relation::from_tuples(1, [tuple_u64([2])]));
    db.insert_relation("E", Relation::from_pairs([(1, 2), (7, 8)]));
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    assert!(matches!(mat.path(), MaintenancePath::BoundedRecount { .. }));
    // P(1,2): exit derivation + self-support = 2. P(7,8): exit only.
    assert_eq!(mat.count(&tuple_u64([1, 2])), 2);
    assert_eq!(mat.count(&tuple_u64([7, 8])), 1);
    let e = Symbol::intern("E");
    let ops = vec![FactOp::Delete(e, tuple_u64([1, 2]))];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    assert!(report.truncation.is_none(), "bounded path must not trip");
    delta.apply_to(&mut db).unwrap();
    assert!(!mat.relation().contains(&tuple_u64([1, 2])));
    assert!(mat.relation().contains(&tuple_u64([7, 8])));
    assert_eq!(mat.relation(), &oracle_relation(&lr, &db));
    assert_counts_exact(&mat, &lr);
}

#[test]
fn duplicate_inserts_and_absent_deletes_are_noop_patches() {
    let lr = tc();
    let db = chain_db(4);
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let before = mat.relation().clone();
    let a = Symbol::intern("A");
    let ops = vec![
        FactOp::Insert(a, tuple_u64([1, 2])), // already present
        FactOp::Delete(a, tuple_u64([9, 9])), // absent
    ];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    assert!(delta.is_empty());
    let report = mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    assert!(report.idb.unwrap().is_empty());
    assert_eq!(mat.relation(), &before);
}

#[test]
fn updating_the_derived_predicate_is_rejected() {
    let lr = tc();
    let mut mat =
        Materialization::saturate(&lr, &chain_db(3), &EvalBudget::unlimited(), &Obs::noop())
            .unwrap();
    let p = Symbol::intern("P");
    let mut delta = EdbDelta::default();
    delta.inserted.insert(p, Relation::from_pairs([(1, 9)]));
    assert!(mat.apply(&delta, &EvalBudget::unlimited()).is_err());
    // Saturating over a database that already stores P is likewise refused.
    let mut db = chain_db(3);
    db.insert_relation("P", Relation::from_pairs([(1, 9)]));
    assert!(Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).is_err());
}

#[test]
fn truncated_patch_falls_back_to_cold_saturation() {
    let lr = tc();
    let mut db = chain_db(64);
    let mut mat =
        Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &Obs::noop()).unwrap();
    let e = Symbol::intern("E");
    // A tight iteration cap trips the insertion propagation loop (the
    // chain tip needs ~63 rounds to close).
    let ops = vec![FactOp::Insert(e, tuple_u64([64, 65]))];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    let budget = EvalBudget::unlimited().with_max_iterations(2);
    let report = mat.apply(&delta, &budget).unwrap();
    assert_eq!(report.path, MaintenancePath::ColdFallback);
    assert!(report.truncation.is_some());
    assert!(
        report.idb.is_none(),
        "fallback reports an unknown IDB delta"
    );
    delta.apply_to(&mut db).unwrap();
    assert_eq!(mat.relation(), &oracle_relation(&lr, &db));
    assert_counts_exact(&mat, &lr);
}

#[test]
fn patch_events_pin_the_taxonomy() {
    let capture = Arc::new(CaptureRecorder::new());
    let obs = Obs::new(capture.clone());
    let lr = tc();
    let db = chain_db(5);
    let mut mat = Materialization::saturate(&lr, &db, &EvalBudget::unlimited(), &obs).unwrap();
    let sat = capture.events_of("ivm.saturate");
    assert_eq!(sat.len(), 1);
    assert_eq!(sat[0].text("path"), Some("frontier"));
    assert!(sat[0].uint("tuples").is_some());

    let e = Symbol::intern("E");
    let ops = vec![
        FactOp::Insert(e, tuple_u64([5, 6])),
        FactOp::Delete(e, tuple_u64([1, 2])),
    ];
    let delta = EdbDelta::normalize(&ops, &db).unwrap();
    mat.apply(&delta, &EvalBudget::unlimited()).unwrap();
    let events = capture.events_of("ivm.patch");
    assert_eq!(events.len(), 1);
    let ev = &events[0];
    assert_eq!(ev.text("path"), Some("frontier"));
    for field in [
        "edb_inserted",
        "edb_deleted",
        "idb_inserted",
        "idb_deleted",
        "overdeleted",
        "rederived",
        "rounds",
    ] {
        assert!(ev.uint(field).is_some(), "missing field {field}");
    }
    assert_eq!(ev.uint("edb_inserted"), Some(1));
    assert_eq!(ev.uint("edb_deleted"), Some(1));
    assert_eq!(
        capture.counter_where("recurs_ivm_patches_total", &[("path", "frontier")]),
        1
    );
}
