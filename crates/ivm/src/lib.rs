//! Incremental view maintenance for materialized linear-recursion fixpoints.
//!
//! A [`Materialization`] holds the saturated recursive predicate together
//! with a *derivation count* per tuple — the number of ground rule
//! instantiations whose head is that tuple, over the current database. The
//! counts are what make maintenance exact:
//!
//! * **Insertions** are counting-based. New EDB tuples are differentiated
//!   per body position (new relations before the delta position, old ones
//!   after — the standard inclusion–exclusion that enumerates every *new*
//!   instantiation exactly once even when a batch touches several positions
//!   of one body, or one relation twice), then fresh recursive tuples
//!   propagate through the engine's compiled delta pipeline, whose output
//!   rows are per-instantiation precisely because the rule is linear.
//! * **Deletions** are DRed (delete-and-rederive): a set-based overdeletion
//!   pass marks everything whose support might have passed through a deleted
//!   tuple, then candidates are recounted backward against the shrunken
//!   database and reinserted forward in sequence order so each surviving
//!   instantiation is counted exactly once — including self- and
//!   mutual-support cycles, which the recount correctly refuses to revive.
//!
//! The classification picks a maintenance path ([`MaintenancePath`]): a
//! proven rank bound (A2/A4, bounded B, acyclic D) caps every propagation
//! loop the way it caps unroll depth; one-directional formulas (A1/A3/A5)
//! rederive along the overdeletion frontier in discovery order; everything
//! else runs generic governed DRed. All paths run under an
//! [`EvalBudget`](recurs_datalog::govern::EvalBudget) — a truncated patch
//! never surfaces: [`Materialization::apply`] falls back to cold saturation
//! of the new database and reports that it did.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use recurs_core::Classification;

pub mod delta;
pub mod materialize;
mod patch;
pub mod provenance;

pub use delta::{EdbDelta, FactOp, IdbPatch};
pub use materialize::Materialization;
pub use patch::{PatchReport, PatchStats};
pub use provenance::{
    explain_fact, render_tree, verify_tree, DerivationNode, WhyOutcome, DEFAULT_WHY_DEPTH,
};

use recurs_datalog::error::DatalogError;
use recurs_datalog::govern::TruncationReason;
use recurs_datalog::symbol::Symbol;
use recurs_engine::EngineError;
use std::fmt;

/// How a patch is (or was) maintained, mirroring the engine's kernel
/// selection: the classification theorems that bound evaluation also bound
/// maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePath {
    /// A proven rank bound (classes A2/A4, bounded B, acyclic D) caps every
    /// propagation and rederivation loop; exceeding the cap means the bound
    /// was violated, which is treated as truncation and falls back cold.
    BoundedRecount {
        /// The rank bound from the classification.
        rank: u64,
    },
    /// One-directional formulas (A1/A3/A5): rederivation candidates are
    /// processed in overdeletion-frontier discovery order, so most rederive
    /// on their first recount instead of waiting on the forward pass.
    Frontier,
    /// Generic governed DRed for everything else (class C and mixtures).
    GenericDred,
    /// The patch was abandoned (budget truncation or a tripped loop cap)
    /// and the materialization was rebuilt by cold saturation instead.
    ColdFallback,
}

impl MaintenancePath {
    /// Selects the maintenance path for a classified recursive rule.
    pub fn select(classification: &Classification) -> MaintenancePath {
        if let Some(rank) = classification.rank_bound() {
            return MaintenancePath::BoundedRecount { rank };
        }
        if classification.is_transformable_to_stable() {
            return MaintenancePath::Frontier;
        }
        MaintenancePath::GenericDred
    }

    /// Stable label for metrics and protocol replies.
    pub fn label(&self) -> &'static str {
        match self {
            MaintenancePath::BoundedRecount { .. } => "bounded-recount",
            MaintenancePath::Frontier => "frontier",
            MaintenancePath::GenericDred => "generic-dred",
            MaintenancePath::ColdFallback => "cold-fallback",
        }
    }

    /// The cap on productive propagation rounds, when the class proves one.
    /// A bounded formula reaches fixpoint from *any* seed within `rank`
    /// productive rounds, so `rank + 2` rounds (one extra to observe the
    /// empty delta, one of slack) is a correctness tripwire, not a budget.
    pub(crate) fn round_cap(&self) -> Option<u64> {
        match self {
            MaintenancePath::BoundedRecount { rank } => Some(rank + 2),
            _ => None,
        }
    }
}

impl fmt::Display for MaintenancePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors from building or patching a materialization.
#[derive(Debug)]
pub enum IvmError {
    /// A substrate error from the Datalog layer.
    Datalog(DatalogError),
    /// A substrate error from the execution engine.
    Engine(EngineError),
    /// Initial saturation was truncated by its budget — no materialization
    /// exists to maintain. (Patch-time truncation never surfaces as an
    /// error; it falls back to cold saturation inside `apply`.)
    Truncated(TruncationReason),
    /// An update tried to touch the recursive predicate directly; the
    /// materialized relation is derived, never stored.
    IdbUpdate(Symbol),
}

impl fmt::Display for IvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IvmError::Datalog(e) => write!(f, "{e}"),
            IvmError::Engine(e) => write!(f, "{e}"),
            IvmError::Truncated(r) => write!(f, "initial saturation truncated: {r}"),
            IvmError::IdbUpdate(p) => {
                write!(f, "relation {p} is derived and cannot be updated directly")
            }
        }
    }
}

impl std::error::Error for IvmError {}

impl From<DatalogError> for IvmError {
    fn from(e: DatalogError) -> IvmError {
        IvmError::Datalog(e)
    }
}

impl From<EngineError> for IvmError {
    fn from(e: EngineError) -> IvmError {
        IvmError::Engine(e)
    }
}

/// Deterministic fault hooks for exercising the cold-saturation fallback.
/// Compiled only for tests and the `fault-inject` feature; the hooks are
/// process-global, so tests arming them serialize on [`fault::exclusive`].
#[cfg(any(test, feature = "fault-inject"))]
pub mod fault {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static TRIP_AT_ROUND: AtomicU64 = AtomicU64::new(u64::MAX);
    static GATE: Mutex<()> = Mutex::new(());

    /// Serializes tests that arm the global hooks.
    pub fn exclusive() -> MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms the hook: the first maintenance loop reaching `round` (0-based)
    /// reports truncation, forcing the cold fallback. The hook is one-shot —
    /// it disarms itself when it fires, so the fallback's own saturation is
    /// not re-tripped (the fault it models is transient).
    pub fn arm_round_trip(round: u64) {
        TRIP_AT_ROUND.store(round, Ordering::SeqCst);
    }

    /// Disarms the hook.
    pub fn disarm() {
        TRIP_AT_ROUND.store(u64::MAX, Ordering::SeqCst);
    }

    pub(crate) fn round_trips(round: u64) -> bool {
        let armed = TRIP_AT_ROUND.load(Ordering::SeqCst);
        if round >= armed {
            return TRIP_AT_ROUND
                .compare_exchange(armed, u64::MAX, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
        }
        false
    }
}

/// True when an armed fault hook wants this round to fail.
#[inline]
pub(crate) fn fault_round_trips(round: u64) -> bool {
    #[cfg(any(test, feature = "fault-inject"))]
    {
        fault::round_trips(round)
    }
    #[cfg(not(any(test, feature = "fault-inject")))]
    {
        let _ = round;
        false
    }
}
