//! Patch application: counting-based insertion maintenance, DRed deletions,
//! and the cold-saturation fallback.

use crate::delta::{EdbDelta, IdbPatch};
use crate::materialize::{delta_rows, head_rows, Materialization};
use crate::{IvmError, MaintenancePath};
use recurs_datalog::eval::eval_body;
use recurs_datalog::govern::{EvalBudget, Governor, Progress, TruncationReason};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::symbol::Symbol;
use recurs_engine::compile::ProbeCounters;
use recurs_obs::field;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Work counters for one patch application.
#[derive(Debug, Clone, Copy, Default)]
pub struct PatchStats {
    /// EDB tuples inserted by the delta.
    pub edb_inserted: usize,
    /// EDB tuples deleted by the delta.
    pub edb_deleted: usize,
    /// Derived tuples that entered the fixpoint.
    pub idb_inserted: usize,
    /// Derived tuples that left the fixpoint.
    pub idb_deleted: usize,
    /// Tuples the overdeletion pass marked as possibly unsupported.
    pub overdeleted: usize,
    /// Overdeleted tuples that were rederived (still supported).
    pub rederived: usize,
    /// Propagation rounds across all loops.
    pub rounds: u64,
}

/// What one [`Materialization::apply`] call did.
#[derive(Debug)]
pub struct PatchReport {
    /// The path that produced the final state — the class-selected path on
    /// success, [`MaintenancePath::ColdFallback`] when the patch was
    /// abandoned and the fixpoint rebuilt from scratch.
    pub path: MaintenancePath,
    /// Why the incremental patch was abandoned, when it was.
    pub truncation: Option<TruncationReason>,
    /// The net change to the materialized relation; `None` after a cold
    /// fallback (the delta is then unknown and caches must invalidate).
    pub idb: Option<IdbPatch>,
    /// Work counters.
    pub stats: PatchStats,
}

impl Materialization {
    /// Applies a normalized EDB delta, maintaining the fixpoint and counts
    /// in place. Deletions run first (DRed), then insertions (counting).
    ///
    /// Truncation — by the budget or by a tripped rank-bound cap — never
    /// yields a partial result: the materialization is rebuilt by cold
    /// saturation of the fully-updated EDB under an unlimited budget, and
    /// the report says so. On `Err` the materialization may be inconsistent
    /// and must be discarded by the caller.
    pub fn apply(
        &mut self,
        delta: &EdbDelta,
        budget: &EvalBudget,
    ) -> Result<PatchReport, IvmError> {
        if delta.touches(self.lr.predicate) {
            return Err(IvmError::IdbUpdate(self.lr.predicate));
        }
        let mut stats = PatchStats {
            edb_inserted: delta.inserted_count(),
            edb_deleted: delta.deleted_count(),
            ..PatchStats::default()
        };
        if delta.is_empty() {
            return Ok(PatchReport {
                path: self.path,
                truncation: None,
                idb: Some(IdbPatch::empty(self.lr.dimension())),
                stats,
            });
        }
        let governor = budget.start();
        let mut patch = IdbPatch::empty(self.lr.dimension());
        let mut truncation = None;
        if !delta.deleted.is_empty() {
            truncation = self.dred_delete(&delta.deleted, &governor, &mut patch, &mut stats)?;
        }
        if truncation.is_none() && !delta.inserted.is_empty() {
            truncation = self.count_insert(&delta.inserted, &governor, &mut patch, &mut stats)?;
        }
        let report = match truncation {
            None => {
                stats.idb_inserted = patch.inserted.len();
                stats.idb_deleted = patch.deleted.len();
                PatchReport {
                    path: self.path,
                    truncation: None,
                    idb: Some(patch),
                    stats,
                }
            }
            Some(reason) => {
                self.rebuild_cold(delta)?;
                PatchReport {
                    path: MaintenancePath::ColdFallback,
                    truncation: Some(reason),
                    idb: None,
                    stats,
                }
            }
        };
        self.emit_patch_event(&report);
        Ok(report)
    }

    /// Counting-based insertion maintenance.
    ///
    /// Per rule and per body position `i` whose relation gained tuples, the
    /// body is evaluated with positions `< i` overridden to their *new*
    /// relations, position `i` to the delta alone, and positions `> i` left
    /// at the old state — the standard differentiation that enumerates each
    /// *new* instantiation exactly once even when one batch (or one
    /// relation, used twice) touches several positions of a body. The
    /// recursive position is never overridden (it is not an EDB relation),
    /// so instantiations through fresh recursive tuples are left to the
    /// delta pipeline, which sees the fully-updated EDB.
    fn count_insert(
        &mut self,
        ins: &BTreeMap<Symbol, Relation>,
        governor: &Governor,
        patch: &mut IdbPatch,
        stats: &mut PatchStats,
    ) -> Result<Option<TruncationReason>, IvmError> {
        // Declare brand-new relations (empty, so "old" reads are empty).
        for (&pred, rel) in ins {
            self.db.declare(pred, rel.arity())?;
            self.engine.declare(pred, rel.arity());
        }
        let mut new_rels: HashMap<Symbol, Relation> = HashMap::new();
        for (&pred, dr) in ins {
            let mut merged = self
                .db
                .get(pred)
                .cloned()
                .unwrap_or_else(|| Relation::new(dr.arity()));
            merged.union_in_place(dr);
            new_rels.insert(pred, merged);
        }
        // Enumerate new instantiations against the *old* database state.
        let rules: Vec<_> = (0..self.rule_count())
            .map(|ri| self.rule_at(ri).clone())
            .collect();
        let mut fresh: Vec<Tuple> = Vec::new();
        for rule in &rules {
            if let Some(reason) = governor.poll() {
                return Ok(Some(reason));
            }
            for (i, atom) in rule.body.iter().enumerate() {
                let Some(delta_rel) = ins.get(&atom.predicate) else {
                    continue;
                };
                let mut overrides: HashMap<usize, &Relation> = HashMap::new();
                for (j, earlier) in rule.body.iter().enumerate().take(i) {
                    if let Some(merged) = new_rels.get(&earlier.predicate) {
                        overrides.insert(j, merged);
                    }
                }
                overrides.insert(i, delta_rel);
                let bindings = eval_body(&self.db, &rule.body, &overrides)?;
                for h in head_rows(&rule.head, &bindings)? {
                    let c = self.counts.entry(h.clone()).or_insert(0);
                    *c += 1;
                    if *c == 1 {
                        fresh.push(h);
                    }
                }
            }
        }
        // Install the EDB delta, then the fresh tuples, then propagate.
        for (&pred, dr) in ins {
            if let Some(rel) = self.db.get_mut(pred) {
                for t in dr.iter() {
                    rel.insert(t.clone());
                }
            }
            if let Some(rel) = self.engine.get_mut(pred) {
                for t in dr.iter() {
                    rel.insert(t.clone());
                }
            }
        }
        for t in &fresh {
            self.insert_p(t.clone());
            patch.record_insert(t.clone());
        }
        let prop = self.propagate(fresh, governor, Some(patch))?;
        stats.rounds += prop.rounds;
        Ok(prop.truncation)
    }

    /// DRed deletion maintenance: overdelete, remove, rederive.
    ///
    /// *Overdelete* runs set-based over the old, untouched state: compiled
    /// delta pipelines differentiated at each deleted relation's body
    /// positions seed the affected set, and the recursive delta pipeline
    /// closes it (a support chain among candidates is a delta chain at the
    /// recursive position). Counts are irrelevant here — marking is
    /// idempotent — which is why pipeline duplicates are harmless.
    ///
    /// *Rederive* makes the counts exact again. Every candidate is
    /// recounted backward (head bound into the body, bindings counted over
    /// the shrunken database) at a global timestamp; positive counts
    /// reinsert immediately. A forward pass then replays support among
    /// candidates in reinsertion order: an instantiation through subgoal
    /// `v` with head `h` is added to `h`'s count only when `v` entered the
    /// relation *after* `h`'s recount — exactly the instantiations the
    /// backward pass could not see. Pure self-support dies (the backward
    /// recount never sees the tuple itself), and mutual-support cycles
    /// revive only if some member rederives independently.
    fn dred_delete(
        &mut self,
        del: &BTreeMap<Symbol, Relation>,
        governor: &Governor,
        patch: &mut IdbPatch,
        stats: &mut PatchStats,
    ) -> Result<Option<TruncationReason>, IvmError> {
        let p = self.lr.predicate;
        // --- Overdelete: seed from deleted EDB positions.
        let mut seeds: Vec<(usize, usize)> = Vec::new();
        for ri in 0..self.rule_count() {
            for (i, atom) in self.rule_at(ri).body.iter().enumerate() {
                if atom.predicate != p && del.contains_key(&atom.predicate) {
                    seeds.push((ri, i));
                }
            }
        }
        for &(ri, i) in &seeds {
            self.ensure_variant(ri, i)?;
        }
        let mut cand_set: HashSet<Tuple> = HashSet::new();
        let mut cand_order: Vec<Tuple> = Vec::new();
        let p_rel = self
            .db
            .get(p)
            .cloned()
            .unwrap_or_else(|| Relation::new(self.lr.dimension()));
        for &(ri, i) in &seeds {
            if let Some(reason) = governor.poll() {
                return Ok(Some(reason));
            }
            let pred = self.rule_at(ri).body[i].predicate;
            let deleted: Vec<Tuple> = del[&pred].iter().cloned().collect();
            let variant = &self.variants[&(ri, i)];
            let rows = delta_rows(variant, &deleted);
            let mut out = Vec::new();
            let mut counters = ProbeCounters::default();
            if let Some(reason) =
                variant.execute(&self.engine, rows, &mut counters, Some(governor), &mut out)?
            {
                return Ok(Some(reason));
            }
            for h in out {
                if p_rel.contains(&h) && cand_set.insert(h.clone()) {
                    cand_order.push(h);
                }
            }
        }
        // --- Overdelete: close over recursive support chains (old state).
        let cap = self.path.round_cap();
        let mut rounds: u64 = 0;
        let mut frontier = cand_order.clone();
        while !frontier.is_empty() {
            let progress = Progress {
                iterations: rounds as usize,
                tuples: cand_set.len(),
                delta: frontier.len(),
                memory_bytes: self.engine.approx_bytes(),
            };
            if let Some(reason) = governor.check(progress) {
                return Ok(Some(reason));
            }
            if crate::fault_round_trips(rounds) {
                return Ok(Some(TruncationReason::Cancelled));
            }
            if cap.is_some_and(|c| rounds >= c) {
                return Ok(Some(TruncationReason::IterationCap));
            }
            rounds += 1;
            let rows = delta_rows(&self.rec_delta, &frontier);
            let mut out = Vec::new();
            let mut counters = ProbeCounters::default();
            if let Some(reason) = self.rec_delta.execute(
                &self.engine,
                rows,
                &mut counters,
                Some(governor),
                &mut out,
            )? {
                return Ok(Some(reason));
            }
            let mut next = Vec::new();
            for h in out {
                if p_rel.contains(&h) && cand_set.insert(h.clone()) {
                    cand_order.push(h.clone());
                    next.push(h);
                }
            }
            frontier = next;
        }
        stats.overdeleted = cand_set.len();
        stats.rounds += rounds;

        // --- Physically remove the deleted EDB tuples and every candidate.
        for (&pred, dr) in del {
            for t in dr.iter() {
                self.db.remove(pred, t)?;
                if let Some(rel) = self.engine.get_mut(pred) {
                    rel.remove(t);
                }
            }
        }
        for t in &cand_order {
            self.remove_p(t);
            self.counts.remove(t);
            patch.record_delete(t.clone());
        }

        // --- Rederive, phase 1: batch backward recount. Every candidate is
        // physically removed at this point, so seeding the recount pipeline
        // with the whole candidate set tallies, per candidate, exactly its
        // support from *surviving* tuples — candidate-to-candidate support
        // contributes nothing here and is replayed in phase 2. One indexed
        // pipeline run per rule replaces one hash-join rebuild per
        // candidate.
        let mut recount: HashMap<Tuple, u64> = HashMap::new();
        for ri in 0..self.rule_count() {
            if let Some(reason) = governor.poll() {
                return Ok(Some(reason));
            }
            self.ensure_recount(ri)?;
            // `recounts` is append-only, so the entry just ensured exists.
            let pipeline = &self.recounts[&ri];
            let rows = delta_rows(pipeline, &cand_order);
            let mut out = Vec::new();
            let mut counters = ProbeCounters::default();
            if let Some(reason) =
                pipeline.execute(&self.engine, rows, &mut counters, Some(governor), &mut out)?
            {
                return Ok(Some(reason));
            }
            for h in out {
                *recount.entry(h).or_insert(0) += 1;
            }
        }
        let mut wave: Vec<Tuple> = Vec::new();
        for c in &cand_order {
            if let Some(&cnt) = recount.get(c) {
                self.counts.insert(c.clone(), cnt);
                self.insert_p(c.clone());
                patch.record_insert(c.clone());
                wave.push(c.clone());
                stats.rederived += 1;
            }
        }
        // --- Rederive, phase 2: replay support among revived candidates in
        // waves. The rule is linear — each instantiation has exactly one
        // recursive subgoal — so every candidate-supported instantiation is
        // enumerated exactly once, in the wave where its subgoal revived.
        // Surviving heads are skipped: any tuple with support through a
        // candidate was itself enumerated by the overdeletion closure.
        while !wave.is_empty() {
            if let Some(reason) = governor.poll() {
                return Ok(Some(reason));
            }
            stats.rounds += 1;
            let rows = delta_rows(&self.rec_delta, &wave);
            let mut out = Vec::new();
            let mut counters = ProbeCounters::default();
            if let Some(reason) = self.rec_delta.execute(
                &self.engine,
                rows,
                &mut counters,
                Some(governor),
                &mut out,
            )? {
                return Ok(Some(reason));
            }
            let mut next = Vec::new();
            for h in out {
                if !cand_set.contains(&h) {
                    continue;
                }
                let c = self.counts.entry(h.clone()).or_insert(0);
                *c += 1;
                if *c == 1 {
                    self.insert_p(h.clone());
                    patch.record_insert(h.clone());
                    next.push(h.clone());
                    stats.rederived += 1;
                }
            }
            wave = next;
        }
        Ok(None)
    }

    /// Abandons the incremental patch: finishes applying the delta to the
    /// EDB (idempotently — parts may already be in) and re-saturates from
    /// scratch under an unlimited budget.
    fn rebuild_cold(&mut self, delta: &EdbDelta) -> Result<(), IvmError> {
        let mut edb = self.current_edb();
        delta.apply_to(&mut edb)?;
        let lr = self.lr.clone();
        let obs = self.obs.clone();
        *self = Materialization::saturate(&lr, &edb, &EvalBudget::unlimited(), &obs)?;
        Ok(())
    }

    fn emit_patch_event(&self, report: &PatchReport) {
        self.obs.counter(
            "recurs_ivm_patches_total",
            &[("path", report.path.label())],
            1,
        );
        if !self.obs.enabled() {
            return;
        }
        let stats = &report.stats;
        let mut fields = vec![
            ("path", field::s(report.path.label())),
            ("edb_inserted", field::uz(stats.edb_inserted)),
            ("edb_deleted", field::uz(stats.edb_deleted)),
            ("idb_inserted", field::uz(stats.idb_inserted)),
            ("idb_deleted", field::uz(stats.idb_deleted)),
            ("overdeleted", field::uz(stats.overdeleted)),
            ("rederived", field::uz(stats.rederived)),
            ("rounds", field::u(stats.rounds)),
        ];
        if let Some(reason) = report.truncation {
            fields.push(("truncation", field::s(reason.to_string())));
        }
        self.obs.event("ivm.patch", &fields);
    }
}
