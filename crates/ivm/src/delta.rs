//! Update deltas: ground fact operations, their normalization against a
//! database, and the IDB patch a maintenance pass reports back.

use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::symbol::Symbol;
use std::collections::{BTreeMap, HashMap};

/// One ground fact operation from an update stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactOp {
    /// Insert a ground tuple into the named EDB relation.
    Insert(Symbol, Tuple),
    /// Delete a ground tuple from the named EDB relation.
    Delete(Symbol, Tuple),
}

impl FactOp {
    /// The relation the operation touches.
    pub fn predicate(&self) -> Symbol {
        match self {
            FactOp::Insert(p, _) | FactOp::Delete(p, _) => *p,
        }
    }
}

/// The net effect of an update group on the EDB, normalized against a
/// concrete database: inserted tuples are genuinely new, deleted tuples were
/// genuinely present, and a tuple appears on at most one side.
#[derive(Debug, Clone, Default)]
pub struct EdbDelta {
    /// Tuples to add, per relation. Disjoint from the database.
    pub inserted: BTreeMap<Symbol, Relation>,
    /// Tuples to drop, per relation. Subset of the database.
    pub deleted: BTreeMap<Symbol, Relation>,
}

impl EdbDelta {
    /// Replays `ops` in order against the membership state of `db` and keeps
    /// only the net changes: duplicate inserts, absent-fact deletes, and
    /// insert/delete pairs that cancel out all normalize away. Arity
    /// conflicts (against the database or within the ops) are errors.
    pub fn normalize(ops: &[FactOp], db: &Database) -> Result<EdbDelta, DatalogError> {
        // Current membership of every touched fact, starting from `db`.
        let mut state: HashMap<(Symbol, Tuple), bool> = HashMap::new();
        let mut arities: HashMap<Symbol, usize> = HashMap::new();
        for op in ops {
            let (pred, tuple, target) = match op {
                FactOp::Insert(p, t) => (*p, t, true),
                FactOp::Delete(p, t) => (*p, t, false),
            };
            let expected = match db.get(pred) {
                Some(rel) => rel.arity(),
                None => *arities.entry(pred).or_insert(tuple.len()),
            };
            if expected != tuple.len() {
                return Err(DatalogError::TupleArity {
                    relation: pred,
                    expected,
                    found: tuple.len(),
                });
            }
            state
                .entry((pred, tuple.clone()))
                .or_insert_with(|| db.get(pred).is_some_and(|r| r.contains(tuple)));
            if let Some(present) = state.get_mut(&(pred, tuple.clone())) {
                *present = target;
            }
        }
        let mut delta = EdbDelta::default();
        for ((pred, tuple), now) in state {
            let before = db.get(pred).is_some_and(|r| r.contains(&tuple));
            if now == before {
                continue;
            }
            let side = if now {
                &mut delta.inserted
            } else {
                &mut delta.deleted
            };
            side.entry(pred)
                .or_insert_with(|| Relation::new(tuple.len()))
                .insert(tuple);
        }
        Ok(delta)
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Total number of inserted tuples.
    pub fn inserted_count(&self) -> usize {
        self.inserted.values().map(Relation::len).sum()
    }

    /// Total number of deleted tuples.
    pub fn deleted_count(&self) -> usize {
        self.deleted.values().map(Relation::len).sum()
    }

    /// True when the delta touches `pred` on either side.
    pub fn touches(&self, pred: Symbol) -> bool {
        self.inserted.contains_key(&pred) || self.deleted.contains_key(&pred)
    }

    /// Applies the delta to a plain database (declaring inserted relations
    /// on first use). Used both to install the new snapshot and to finish
    /// applying a partially applied delta before a cold-saturation fallback.
    /// Idempotent: re-inserting present tuples and re-deleting absent ones
    /// are no-ops.
    pub fn apply_to(&self, db: &mut Database) -> Result<(), DatalogError> {
        for (&pred, rel) in &self.inserted {
            db.declare(pred, rel.arity())?;
            for t in rel.iter() {
                db.insert(pred, t.clone())?;
            }
        }
        for (&pred, rel) in &self.deleted {
            for t in rel.iter() {
                db.remove(pred, t)?;
            }
        }
        Ok(())
    }
}

/// The net change a maintenance pass made to the recursive predicate's
/// materialized relation — what a cache can apply to patch stored answers.
#[derive(Debug, Clone)]
pub struct IdbPatch {
    /// Tuples newly derived by the patch.
    pub inserted: Relation,
    /// Tuples no longer derivable after the patch.
    pub deleted: Relation,
}

impl IdbPatch {
    /// An empty patch for a predicate of the given arity.
    pub fn empty(arity: usize) -> IdbPatch {
        IdbPatch {
            inserted: Relation::new(arity),
            deleted: Relation::new(arity),
        }
    }

    /// Records a tuple as (re)derived, cancelling a pending deletion first.
    pub(crate) fn record_insert(&mut self, t: Tuple) {
        if !self.deleted.remove(&t) {
            self.inserted.insert(t);
        }
    }

    /// Records a tuple as removed, cancelling a pending insertion first.
    pub(crate) fn record_delete(&mut self, t: Tuple) {
        if !self.inserted.remove(&t) {
            self.deleted.insert(t);
        }
    }

    /// True when the patch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::relation::tuple_u64;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db
    }

    #[test]
    fn duplicate_inserts_and_absent_deletes_normalize_away() {
        let a = Symbol::intern("A");
        let ops = vec![
            FactOp::Insert(a, tuple_u64([1, 2])), // already present
            FactOp::Delete(a, tuple_u64([9, 9])), // absent
        ];
        let delta = EdbDelta::normalize(&ops, &db()).unwrap();
        assert!(delta.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let a = Symbol::intern("A");
        let ops = vec![
            FactOp::Insert(a, tuple_u64([5, 6])),
            FactOp::Delete(a, tuple_u64([5, 6])),
        ];
        let delta = EdbDelta::normalize(&ops, &db()).unwrap();
        assert!(delta.is_empty());
        // The other order nets out to a pure delete of a present tuple.
        let ops = vec![
            FactOp::Delete(a, tuple_u64([1, 2])),
            FactOp::Insert(a, tuple_u64([1, 2])),
        ];
        let delta = EdbDelta::normalize(&ops, &db()).unwrap();
        assert!(delta.is_empty());
    }

    #[test]
    fn net_changes_survive_normalization() {
        let a = Symbol::intern("A");
        let b = Symbol::intern("B");
        let ops = vec![
            FactOp::Insert(a, tuple_u64([3, 4])),
            FactOp::Delete(a, tuple_u64([1, 2])),
            FactOp::Insert(b, tuple_u64([7, 8])), // declares B
        ];
        let delta = EdbDelta::normalize(&ops, &db()).unwrap();
        assert_eq!(delta.inserted_count(), 2);
        assert_eq!(delta.deleted_count(), 1);
        assert!(delta.inserted[&a].contains(&tuple_u64([3, 4])));
        assert!(delta.deleted[&a].contains(&tuple_u64([1, 2])));
        let mut db = db();
        delta.apply_to(&mut db).unwrap();
        assert!(db.get("A").unwrap().contains(&tuple_u64([3, 4])));
        assert!(!db.get("A").unwrap().contains(&tuple_u64([1, 2])));
        assert!(db.get("B").unwrap().contains(&tuple_u64([7, 8])));
    }

    #[test]
    fn arity_conflicts_are_errors() {
        let a = Symbol::intern("A");
        let ops = vec![FactOp::Insert(a, tuple_u64([1]))];
        assert!(EdbDelta::normalize(&ops, &db()).is_err());
        let n = Symbol::intern("New");
        let ops = vec![
            FactOp::Insert(n, tuple_u64([1])),
            FactOp::Insert(n, tuple_u64([1, 2])),
        ];
        assert!(EdbDelta::normalize(&ops, &Database::new()).is_err());
    }

    #[test]
    fn idb_patch_cancels_opposing_records() {
        let mut patch = IdbPatch::empty(2);
        patch.record_delete(tuple_u64([1, 2]));
        patch.record_insert(tuple_u64([1, 2]));
        assert!(patch.is_empty());
        patch.record_insert(tuple_u64([3, 4]));
        patch.record_delete(tuple_u64([3, 4]));
        assert!(patch.is_empty());
    }
}
