//! A materialized fixpoint with per-tuple derivation counts.
//!
//! The *count* of a tuple `t` is the number of ground rule instantiations
//! (assignments to all body variables over the current database) whose head
//! is `t`, summed over every rule. A tuple belongs to the fixpoint exactly
//! when its count is positive, which is what lets deletions be maintained
//! without re-deriving the world: supports are removed one instantiation at
//! a time, and only tuples whose count reaches zero disappear.
//!
//! Two engine facts make the counts exact and cheap to maintain:
//!
//! * [`CompiledRule::execute`] output rows are per-instantiation — the
//!   pipeline carries every distinct body variable and never dedupes — so
//!   seeding a delta pipeline at the recursive position enumerates each new
//!   instantiation exactly once (the rule is linear: one recursive atom).
//! * [`eval_body`]'s bindings are distinct assignments to all body
//!   variables, so exit-rule seeding and backward recounts read the same
//!   count definition.

use crate::delta::IdbPatch;
use crate::{IvmError, MaintenancePath};
use recurs_core::Classification;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::{eval_body, Bindings};
use recurs_datalog::govern::{EvalBudget, Governor, Progress, TruncationReason};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::rule::{LinearRecursion, Rule};
use recurs_datalog::symbol::Symbol;
use recurs_datalog::term::{Atom, Term, Value};
use recurs_engine::compile::{CompiledRule, ProbeCounters, Row};
use recurs_engine::EngineDb;
use recurs_obs::{field, Obs};
use std::collections::HashMap;

/// A saturated linear recursion kept consistent under EDB deltas.
///
/// Owns a full [`Database`] (EDB relations plus the derived predicate), an
/// engine mirror with persistent indexes, and the per-tuple derivation
/// counts. Built by [`Materialization::saturate`]; maintained by
/// [`Materialization::apply`].
pub struct Materialization {
    pub(crate) lr: LinearRecursion,
    pub(crate) path: MaintenancePath,
    pub(crate) db: Database,
    pub(crate) engine: EngineDb,
    pub(crate) counts: HashMap<Tuple, u64>,
    /// The recursive rule's delta pipeline, differentiated at the recursive
    /// body position. Reused by insertion propagation, overdeletion, and
    /// forward rederivation — all three are "what follows from these
    /// recursive tuples" questions.
    pub(crate) rec_delta: CompiledRule,
    /// Delta pipelines differentiated at non-recursive body positions,
    /// compiled lazily for overdeletion. Keyed by (rule index, body
    /// position); rule index 0 is the recursive rule, `i + 1` is
    /// `exit_rules[i]`.
    pub(crate) variants: HashMap<(usize, usize), CompiledRule>,
    /// Backward-recount pipelines, one per rule, compiled lazily for DRed
    /// rederivation: the rule's body prefixed with a synthetic candidate
    /// atom mirroring the head, differentiated at that atom. Seeding it
    /// with the candidate set enumerates, per candidate, every surviving
    /// instantiation through the engine's persistent indexes — instead of
    /// one hash-join rebuild per candidate.
    pub(crate) recounts: HashMap<usize, CompiledRule>,
    pub(crate) obs: Obs,
}

/// Reserved relation name for the synthetic candidate seed atom of the
/// recount pipelines. The relation itself stays empty forever — the
/// pipeline reads its seed rows from the candidate batch, never from
/// storage — it exists only so compilation can resolve the atom.
pub(crate) const CAND: &str = "__ivm_cand";

impl std::fmt::Debug for Materialization {
    // Compact by hand: the engine mirror and compiled pipelines would drown
    // any log line, and `LinearRecursion` has no `Debug` of its own.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Materialization")
            .field("predicate", &self.lr.predicate)
            .field("path", &self.path)
            .field("tuples", &self.counts.len())
            .finish_non_exhaustive()
    }
}

impl Materialization {
    /// Saturates `lr` over `edb` from scratch, tracking derivation counts.
    ///
    /// The database must not already contain tuples for the recursive
    /// predicate — the materialized relation is derived, never stored. A
    /// budget truncation here is an error (there is nothing valid to fall
    /// back to); patch-time truncation is handled inside `apply` instead.
    pub fn saturate(
        lr: &LinearRecursion,
        edb: &Database,
        budget: &EvalBudget,
        obs: &Obs,
    ) -> Result<Materialization, IvmError> {
        let p = lr.predicate;
        if edb.get(p).is_some_and(|r| !r.is_empty()) {
            return Err(IvmError::IdbUpdate(p));
        }
        let governor = budget.start();
        let mut db = edb.clone();
        for rule in std::iter::once(&lr.recursive_rule).chain(lr.exit_rules.iter()) {
            for atom in &rule.body {
                if atom.predicate != p {
                    db.declare(atom.predicate, atom.arity())?;
                }
            }
        }
        db.insert_relation(p, Relation::new(lr.dimension()));

        // Exit seeding: one count per exit-rule instantiation.
        let mut counts: HashMap<Tuple, u64> = HashMap::new();
        let mut fresh: Vec<Tuple> = Vec::new();
        for rule in &lr.exit_rules {
            if let Some(reason) = governor.poll() {
                return Err(IvmError::Truncated(reason));
            }
            let bindings = eval_body(&db, &rule.body, &HashMap::new())?;
            for h in head_rows(&rule.head, &bindings)? {
                let c = counts.entry(h.clone()).or_insert(0);
                *c += 1;
                if *c == 1 {
                    fresh.push(h);
                }
            }
        }
        if let Some(rel) = db.get_mut(p) {
            for t in &fresh {
                rel.insert(t.clone());
            }
        }

        let mut engine = EngineDb::new();
        for (name, rel) in db.iter() {
            engine.load(name, rel);
        }
        let p_pos = lr
            .recursive_rule
            .body
            .iter()
            .position(|a| a.predicate == p)
            .ok_or(DatalogError::UnknownRelation(p))?;
        let rec_delta = CompiledRule::compile(&lr.recursive_rule, Some(p_pos), &db)?;
        for (pred, cols) in rec_delta.required_indexes() {
            if let Some(rel) = engine.get_mut(pred) {
                rel.ensure_index(cols);
            }
        }
        let path = MaintenancePath::select(&Classification::of(&lr.recursive_rule));

        let mut mat = Materialization {
            lr: lr.clone(),
            path,
            db,
            engine,
            counts,
            rec_delta,
            variants: HashMap::new(),
            recounts: HashMap::new(),
            obs: obs.clone(),
        };
        let prop = mat.propagate(fresh, &governor, None)?;
        if let Some(reason) = prop.truncation {
            return Err(IvmError::Truncated(reason));
        }
        mat.obs.event(
            "ivm.saturate",
            &[
                ("path", field::s(mat.path.label())),
                ("tuples", field::uz(mat.counts.len())),
                ("rounds", field::u(prop.rounds)),
            ],
        );
        Ok(mat)
    }

    /// The recursive predicate.
    pub fn predicate(&self) -> Symbol {
        self.lr.predicate
    }

    /// The maintenance path the classification selected.
    pub fn path(&self) -> MaintenancePath {
        self.path
    }

    /// The full database: EDB relations plus the saturated predicate.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The materialized relation.
    pub fn relation(&self) -> &Relation {
        // The predicate is declared in every constructor path.
        self.db
            .get(self.lr.predicate)
            .unwrap_or_else(|| unreachable!("materialized predicate is always declared"))
    }

    /// The derivation count of a tuple (0 when underivable).
    pub fn count(&self, t: &[Value]) -> u64 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// The EDB part of the current database (everything but the recursive
    /// predicate and the synthetic recount seed), cloned — the seed for a
    /// cold rebuild.
    pub(crate) fn current_edb(&self) -> Database {
        let cand = Symbol::intern(CAND);
        let mut edb = Database::new();
        for (name, rel) in self.db.iter() {
            if name != self.lr.predicate && name != cand {
                edb.insert_relation(name, rel.clone());
            }
        }
        edb
    }

    /// The rule with the given index: 0 is the recursive rule, `i + 1` is
    /// `exit_rules[i]`.
    pub(crate) fn rule_at(&self, ri: usize) -> &Rule {
        if ri == 0 {
            &self.lr.recursive_rule
        } else {
            &self.lr.exit_rules[ri - 1]
        }
    }

    /// Number of rules (recursive + exits).
    pub(crate) fn rule_count(&self) -> usize {
        1 + self.lr.exit_rules.len()
    }

    /// Inserts a derived tuple into both the database and the engine mirror.
    pub(crate) fn insert_p(&mut self, t: Tuple) {
        if let Some(rel) = self.db.get_mut(self.lr.predicate) {
            rel.insert(t.clone());
        }
        if let Some(rel) = self.engine.get_mut(self.lr.predicate) {
            rel.insert(t);
        }
    }

    /// Removes a derived tuple from both the database and the engine mirror.
    pub(crate) fn remove_p(&mut self, t: &Tuple) {
        if let Some(rel) = self.db.get_mut(self.lr.predicate) {
            rel.remove(t);
        }
        if let Some(rel) = self.engine.get_mut(self.lr.predicate) {
            rel.remove(t);
        }
    }

    /// Compiles (once) the delta pipeline for rule `ri` differentiated at
    /// body position `pos`, and makes sure its probe indexes exist.
    pub(crate) fn ensure_variant(&mut self, ri: usize, pos: usize) -> Result<(), IvmError> {
        if self.variants.contains_key(&(ri, pos)) {
            return Ok(());
        }
        let rule = self.rule_at(ri).clone();
        let compiled = CompiledRule::compile(&rule, Some(pos), &self.db)?;
        for (pred, cols) in compiled.required_indexes() {
            if let Some(rel) = self.engine.get_mut(pred) {
                rel.ensure_index(cols);
            }
        }
        self.variants.insert((ri, pos), compiled);
        Ok(())
    }

    /// Semi-naive propagation of fresh recursive tuples through the
    /// compiled delta pipeline, incrementing counts per enumerated
    /// instantiation. Exactly-once is guaranteed by linearity: each new
    /// instantiation contains exactly one recursive subgoal, enumerated in
    /// the round where that subgoal was fresh.
    pub(crate) fn propagate(
        &mut self,
        mut delta: Vec<Tuple>,
        governor: &Governor,
        mut patch: Option<&mut IdbPatch>,
    ) -> Result<Propagation, IvmError> {
        let cap = self.path.round_cap();
        let mut rounds: u64 = 0;
        while !delta.is_empty() {
            let progress = Progress {
                iterations: rounds as usize,
                tuples: self.counts.len(),
                delta: delta.len(),
                memory_bytes: self.engine.approx_bytes(),
            };
            if let Some(reason) = governor.check(progress) {
                return Ok(Propagation::stopped(rounds, reason));
            }
            if crate::fault_round_trips(rounds) {
                return Ok(Propagation::stopped(rounds, TruncationReason::Cancelled));
            }
            if cap.is_some_and(|c| rounds >= c) {
                // The class's rank bound says this cannot happen; treat a
                // violation as truncation so the caller rebuilds cold.
                return Ok(Propagation::stopped(rounds, TruncationReason::IterationCap));
            }
            rounds += 1;
            let rows = delta_rows(&self.rec_delta, &delta);
            let mut out = Vec::new();
            let mut counters = ProbeCounters::default();
            if let Some(reason) = self.rec_delta.execute(
                &self.engine,
                rows,
                &mut counters,
                Some(governor),
                &mut out,
            )? {
                return Ok(Propagation::stopped(rounds, reason));
            }
            let mut fresh = Vec::new();
            for h in out {
                let c = self.counts.entry(h.clone()).or_insert(0);
                *c += 1;
                if *c == 1 {
                    fresh.push(h);
                }
            }
            for t in &fresh {
                self.insert_p(t.clone());
                if let Some(p) = patch.as_deref_mut() {
                    p.record_insert(t.clone());
                }
            }
            delta = fresh;
        }
        Ok(Propagation {
            rounds,
            truncation: None,
        })
    }

    /// Compiles (once) the backward-recount pipeline for rule `ri`: the
    /// rule's body prefixed with a synthetic [`CAND`] atom carrying the
    /// head's terms, differentiated at that atom. Seeded with candidate
    /// tuples, it emits one head row per (candidate, surviving body
    /// instantiation) pair; a candidate that conflicts with a head constant
    /// or repeated head variable simply fails the seed match, the same
    /// cases a per-candidate head unification would reject.
    pub(crate) fn ensure_recount(&mut self, ri: usize) -> Result<(), IvmError> {
        if self.recounts.contains_key(&ri) {
            return Ok(());
        }
        let cand = Symbol::intern(CAND);
        self.db.declare(cand, self.lr.dimension())?;
        self.engine.declare(cand, self.lr.dimension());
        let rule = self.rule_at(ri);
        let mut body = Vec::with_capacity(rule.body.len() + 1);
        body.push(Atom::new(cand, rule.head.terms.clone()));
        body.extend(rule.body.iter().cloned());
        let recount = Rule {
            head: rule.head.clone(),
            body,
        };
        let compiled = CompiledRule::compile(&recount, Some(0), &self.db)?;
        for (pred, cols) in compiled.required_indexes() {
            if let Some(rel) = self.engine.get_mut(pred) {
                rel.ensure_index(cols);
            }
        }
        self.recounts.insert(ri, compiled);
        Ok(())
    }
}

/// Result of one propagation run.
pub(crate) struct Propagation {
    pub rounds: u64,
    pub truncation: Option<TruncationReason>,
}

impl Propagation {
    fn stopped(rounds: u64, reason: TruncationReason) -> Propagation {
        Propagation {
            rounds,
            truncation: Some(reason),
        }
    }
}

/// Seed rows for a delta pipeline from a batch of delta tuples.
pub(crate) fn delta_rows(rule: &CompiledRule, delta: &[Tuple]) -> Vec<Row> {
    match &rule.seed {
        Some(seed) => seed.rows(delta.iter()),
        None => Vec::new(),
    }
}

/// Instantiates a rule head once per binding row — *without* deduplication,
/// because each row is one instantiation and counting needs them all.
pub(crate) fn head_rows(head: &Atom, bindings: &Bindings) -> Result<Vec<Tuple>, DatalogError> {
    enum Col {
        Fixed(Value),
        Bound(usize),
    }
    let cols: Vec<Col> = head
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Ok(Col::Fixed(*c)),
            Term::Var(v) => bindings
                .column_of(*v)
                .map(Col::Bound)
                .ok_or(DatalogError::UnboundVariable(*v)),
        })
        .collect::<Result<_, _>>()?;
    let mut rows = Vec::with_capacity(bindings.rel.len());
    for row in bindings.rel.iter() {
        rows.push(
            cols.iter()
                .map(|c| match c {
                    Col::Fixed(v) => *v,
                    Col::Bound(i) => row[*i],
                })
                .collect(),
        );
    }
    Ok(rows)
}
