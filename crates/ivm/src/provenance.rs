//! Derivation provenance: `why <fact>` answered by backward rule
//! inversion.
//!
//! [`explain_fact`] reconstructs a **derivation tree** for a tuple of the
//! recursive predicate: every leaf is an EDB fact, every internal node a
//! ground instance of one of the program's rules. The reconstruction is
//! sound by construction and cheap by stratification:
//!
//! 1. A **rank-tracked saturation** runs semi-naive to fixpoint, recording
//!    for each derived tuple the round in which it first appeared (rank 0 =
//!    exit-rule seeding). Ranks strictly decrease along any derivation, so
//!    they are the well-founded measure that makes backward search loop-free
//!    even on cyclic data.
//! 2. **One-step rule inversion**: to explain a tuple of rank `r`, unify a
//!    rule head with it, evaluate the instantiated body against the
//!    saturated database, and pick a witness row whose recursive subgoal has
//!    rank `< r` (rank 0 tuples invert an exit rule instead, making every
//!    subgoal an EDB leaf). Only the recursive subgoal recurses — the rule
//!    is linear — so tree size is `O(rank × body width)`.
//!
//! The recursion is depth-bounded ([`WhyOutcome::DepthExceeded`]) and the
//! whole reconstruction runs under an
//! [`EvalBudget`](recurs_datalog::govern::EvalBudget). [`verify_tree`]
//! re-checks a finished tree against the *EDB only* — every leaf present,
//! every internal node a valid rule instance under a single simultaneous
//! substitution — which is what the differential property suite and the
//! serve layer's cross-check call.

use crate::IvmError;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::eval_body;
use recurs_datalog::govern::{EvalBudget, Governor, Progress};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::subst::Subst;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::term::{Atom, Term, Value};
use std::collections::HashMap;

/// Default depth bound for backward reconstruction: enough for any chain a
/// governed evaluation can produce, while still guaranteeing termination
/// against adversarial inputs.
pub const DEFAULT_WHY_DEPTH: u64 = 10_000;

/// One node of a derivation tree.
#[derive(Debug, Clone)]
pub struct DerivationNode {
    /// The predicate of this node's tuple.
    pub predicate: Symbol,
    /// The ground tuple being derived.
    pub tuple: Tuple,
    /// `None` for an EDB leaf; `Some(0)` for the recursive rule,
    /// `Some(i + 1)` for `exit_rules[i]` (the materialization's rule-index
    /// convention).
    pub rule: Option<usize>,
    /// One child per body atom of the rule, in body order (empty for
    /// leaves and for fact rules with empty bodies).
    pub children: Vec<DerivationNode>,
}

impl DerivationNode {
    /// Total number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(DerivationNode::size)
            .sum::<usize>()
    }

    /// Length of the longest root-to-leaf path (a leaf is depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(DerivationNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Renders `pred(c1, c2)` for this node's tuple.
    pub fn fact(&self) -> String {
        let args: Vec<&str> = self.tuple.iter().map(|v| v.as_str()).collect();
        format!("{}({})", self.predicate, args.join(", "))
    }
}

/// The answer to `why <fact>`.
#[derive(Debug, Clone)]
pub enum WhyOutcome {
    /// The fact is derivable; here is a derivation tree.
    Derived(DerivationNode),
    /// The fact is not in the fixpoint over the current database.
    NotDerived,
    /// The fact is derivable but its shortest derivation needs more
    /// recursive steps than the bound allowed.
    DepthExceeded {
        /// The fact's rank (recursive steps its reconstruction needs).
        rank: u64,
        /// The bound that was exceeded.
        max_depth: u64,
    },
}

/// Extends `subst` so `atom` matches the ground `tuple`; false on clash
/// (constant mismatch or a variable already bound to something else).
fn unify_ground(subst: &mut Subst, atom: &Atom, tuple: &[Value]) -> bool {
    if atom.arity() != tuple.len() {
        return false;
    }
    for (t, v) in atom.terms.iter().zip(tuple.iter()) {
        match subst.resolve(*t) {
            Term::Const(c) => {
                if c != *v {
                    return false;
                }
            }
            Term::Var(var) => subst.bind(var, Term::Const(*v)),
        }
    }
    true
}

/// Grounds `atom` under `subst`, which must bind all its variables.
fn ground_tuple(subst: &Subst, atom: &Atom) -> Result<Tuple, DatalogError> {
    atom.terms
        .iter()
        .map(|t| match subst.resolve(*t) {
            Term::Const(c) => Ok(c),
            Term::Var(v) => Err(DatalogError::UnboundVariable(v)),
        })
        .collect()
}

/// Rank-tracked semi-naive saturation: the saturated database plus, for
/// every derived tuple, the round in which it first appeared.
fn saturate_with_ranks(
    lr: &LinearRecursion,
    edb: &Database,
    governor: &Governor,
) -> Result<(Database, HashMap<Tuple, u64>), IvmError> {
    let p = lr.predicate;
    let mut db = edb.clone();
    for rule in std::iter::once(&lr.recursive_rule).chain(lr.exit_rules.iter()) {
        for atom in &rule.body {
            if atom.predicate != p {
                db.declare(atom.predicate, atom.arity())?;
            }
        }
    }
    // The derived predicate is rebuilt here even if the caller's database
    // already carried a saturated copy — ranks must match this run.
    db.insert_relation(p, Relation::new(lr.dimension()));

    let mut ranks: HashMap<Tuple, u64> = HashMap::new();
    let mut delta: Vec<Tuple> = Vec::new();
    for rule in &lr.exit_rules {
        if let Some(reason) = governor.poll() {
            return Err(IvmError::Truncated(reason));
        }
        let bindings = eval_body(&db, &rule.body, &HashMap::new())?;
        let heads = crate::materialize::head_rows(&rule.head, &bindings)?;
        for t in heads {
            if !ranks.contains_key(&t) {
                ranks.insert(t.clone(), 0);
                delta.push(t);
            }
        }
    }
    if let Some(rel) = db.get_mut(p) {
        for t in &delta {
            rel.insert(t.clone());
        }
    }

    let p_pos = lr
        .recursive_rule
        .body
        .iter()
        .position(|a| a.predicate == p)
        .ok_or(DatalogError::UnknownRelation(p))?;
    let mut round: u64 = 0;
    while !delta.is_empty() {
        round += 1;
        let progress = Progress {
            iterations: round as usize,
            tuples: ranks.len(),
            delta: delta.len(),
            memory_bytes: 0,
        };
        if let Some(reason) = governor.check(progress) {
            return Err(IvmError::Truncated(reason));
        }
        let delta_rel = Relation::from_tuples(lr.dimension(), delta.iter().cloned());
        let mut overrides: HashMap<usize, &Relation> = HashMap::new();
        overrides.insert(p_pos, &delta_rel);
        // Semi-naive is exact with a single override: the rule is linear,
        // so every new instantiation contains exactly one recursive
        // subgoal, which was fresh last round.
        let bindings = eval_body(&db, &lr.recursive_rule.body, &overrides)?;
        let heads = crate::materialize::head_rows(&lr.recursive_rule.head, &bindings)?;
        let mut fresh: Vec<Tuple> = Vec::new();
        for t in heads {
            if !ranks.contains_key(&t) {
                ranks.insert(t.clone(), round);
                fresh.push(t);
            }
        }
        if let Some(rel) = db.get_mut(p) {
            for t in &fresh {
                rel.insert(t.clone());
            }
        }
        delta = fresh;
    }
    Ok((db, ranks))
}

/// Explains one fact of the recursive predicate over `edb`.
///
/// Any derived-`P` tuples already present in `edb` are ignored — the
/// saturation is re-run so ranks are consistent — which lets callers pass a
/// snapshot database that carries a materialized copy. `max_depth` bounds
/// the number of recursive inversion steps; the budget governs both the
/// saturation and the backward walk.
pub fn explain_fact(
    lr: &LinearRecursion,
    edb: &Database,
    fact: &[Value],
    max_depth: u64,
    budget: &EvalBudget,
) -> Result<WhyOutcome, IvmError> {
    if fact.len() != lr.dimension() {
        return Err(IvmError::Datalog(DatalogError::ArityMismatch {
            predicate: lr.predicate,
            expected: lr.dimension(),
            found: fact.len(),
        }));
    }
    let governor = budget.start();
    let (db, ranks) = saturate_with_ranks(lr, edb, &governor)?;
    let Some(&rank) = ranks.get(fact) else {
        return Ok(WhyOutcome::NotDerived);
    };
    if rank > max_depth {
        return Ok(WhyOutcome::DepthExceeded { rank, max_depth });
    }
    let p_pos = lr
        .recursive_rule
        .body
        .iter()
        .position(|a| a.predicate == lr.predicate)
        .ok_or(DatalogError::UnknownRelation(lr.predicate))?;
    let node = reconstruct(lr, &db, &ranks, fact, rank, p_pos, &governor)?;
    Ok(WhyOutcome::Derived(node))
}

/// Inverts one rule application for `tuple` (of rank `rank`) and recurses
/// on the recursive subgoal. Ranks strictly decrease, so this terminates
/// in at most `rank` steps.
fn reconstruct(
    lr: &LinearRecursion,
    db: &Database,
    ranks: &HashMap<Tuple, u64>,
    tuple: &[Value],
    rank: u64,
    p_pos: usize,
    governor: &Governor,
) -> Result<DerivationNode, IvmError> {
    if let Some(reason) = governor.poll() {
        return Err(IvmError::Truncated(reason));
    }
    if rank == 0 {
        // Exit-seeded: find the exit rule (and witness row) that derives it.
        for (i, rule) in lr.exit_rules.iter().enumerate() {
            let mut subst = Subst::new();
            if !unify_ground(&mut subst, &rule.head, tuple) {
                continue;
            }
            let body: Vec<Atom> = rule.body.iter().map(|a| subst.apply_atom(a)).collect();
            let bindings = eval_body(db, &body, &HashMap::new())?;
            let Some(row) = bindings.rel.iter_sorted().into_iter().next() else {
                continue;
            };
            let mut witness = subst;
            for (col, v) in bindings.vars.iter().zip(row.iter()) {
                witness.bind(*col, Term::Const(*v));
            }
            let children = rule
                .body
                .iter()
                .map(|atom| {
                    Ok(DerivationNode {
                        predicate: atom.predicate,
                        tuple: ground_tuple(&witness, atom)?,
                        rule: None,
                        children: Vec::new(),
                    })
                })
                .collect::<Result<Vec<_>, DatalogError>>()?;
            return Ok(DerivationNode {
                predicate: lr.predicate,
                tuple: tuple.into(),
                rule: Some(i + 1),
                children,
            });
        }
        // Unreachable for a rank map produced by `saturate_with_ranks`
        // over the same database; surface as a substrate error rather
        // than panicking.
        return Err(IvmError::Datalog(DatalogError::UnknownRelation(
            lr.predicate,
        )));
    }

    let rule = &lr.recursive_rule;
    let mut subst = Subst::new();
    if !unify_ground(&mut subst, &rule.head, tuple) {
        return Err(IvmError::Datalog(DatalogError::UnknownRelation(
            lr.predicate,
        )));
    }
    let body: Vec<Atom> = rule.body.iter().map(|a| subst.apply_atom(a)).collect();
    let bindings = eval_body(db, &body, &HashMap::new())?;
    // Pick the witness whose recursive subgoal has minimal rank; the rank
    // definition guarantees one with rank < `rank` exists.
    let mut best: Option<(u64, Subst, Tuple)> = None;
    for row in bindings.rel.iter_sorted() {
        let mut witness = subst.clone();
        for (col, v) in bindings.vars.iter().zip(row.iter()) {
            witness.bind(*col, Term::Const(*v));
        }
        let sub = ground_tuple(&witness, &rule.body[p_pos])?;
        let Some(&sub_rank) = ranks.get(&sub) else {
            continue;
        };
        if sub_rank >= rank {
            continue;
        }
        if best.as_ref().is_none_or(|(r, _, _)| sub_rank < *r) {
            best = Some((sub_rank, witness, sub));
        }
        if sub_rank + 1 == rank {
            // Cannot do better: the tuple first appeared in round `rank`,
            // so some witness has a subgoal from round `rank - 1` — and
            // rows are sorted, so the first such witness is deterministic.
            break;
        }
    }
    let Some((sub_rank, witness, sub)) = best else {
        return Err(IvmError::Datalog(DatalogError::UnknownRelation(
            lr.predicate,
        )));
    };
    let mut children = Vec::with_capacity(rule.body.len());
    for (i, atom) in rule.body.iter().enumerate() {
        if i == p_pos {
            children.push(reconstruct(lr, db, ranks, &sub, sub_rank, p_pos, governor)?);
        } else {
            children.push(DerivationNode {
                predicate: atom.predicate,
                tuple: ground_tuple(&witness, atom)?,
                rule: None,
                children: Vec::new(),
            });
        }
    }
    Ok(DerivationNode {
        predicate: lr.predicate,
        tuple: tuple.into(),
        rule: Some(0),
        children,
    })
}

/// Structurally verifies a derivation tree against the **EDB only**: every
/// leaf must be a stored fact of a non-recursive predicate, and every
/// internal node must be a ground instance of its claimed rule under one
/// simultaneous substitution (head matches the node's tuple, body atom `i`
/// matches child `i`'s tuple). Returns a description of the first defect.
pub fn verify_tree(
    lr: &LinearRecursion,
    edb: &Database,
    node: &DerivationNode,
) -> Result<(), String> {
    match node.rule {
        None => {
            if node.predicate == lr.predicate {
                return Err(format!(
                    "leaf {} claims the recursive predicate",
                    node.fact()
                ));
            }
            if !node.children.is_empty() {
                return Err(format!("leaf {} has children", node.fact()));
            }
            let present = edb
                .get(node.predicate)
                .is_some_and(|rel| rel.contains(&node.tuple));
            if !present {
                return Err(format!("leaf {} is not an EDB fact", node.fact()));
            }
            Ok(())
        }
        Some(ri) => {
            if node.predicate != lr.predicate {
                return Err(format!(
                    "internal node {} is not the recursive predicate",
                    node.fact()
                ));
            }
            let rule = if ri == 0 {
                &lr.recursive_rule
            } else {
                match lr.exit_rules.get(ri - 1) {
                    Some(r) => r,
                    None => {
                        return Err(format!(
                            "node {} cites rule {ri} (no such rule)",
                            node.fact()
                        ))
                    }
                }
            };
            if node.children.len() != rule.body.len() {
                return Err(format!(
                    "node {} has {} children for a {}-atom body",
                    node.fact(),
                    node.children.len(),
                    rule.body.len()
                ));
            }
            let mut subst = Subst::new();
            if !unify_ground(&mut subst, &rule.head, &node.tuple) {
                return Err(format!("rule {ri} head does not match {}", node.fact()));
            }
            for (atom, child) in rule.body.iter().zip(&node.children) {
                if atom.predicate != child.predicate {
                    return Err(format!(
                        "child {} under {} does not match body atom {}",
                        child.fact(),
                        node.fact(),
                        atom
                    ));
                }
                if !unify_ground(&mut subst, atom, &child.tuple) {
                    return Err(format!(
                        "child {} under {} is not a consistent instantiation of {}",
                        child.fact(),
                        node.fact(),
                        atom
                    ));
                }
            }
            for child in &node.children {
                verify_tree(lr, edb, child)?;
            }
            Ok(())
        }
    }
}

/// Renders the tree as indented text for the CLI:
///
/// ```text
/// tc(1, 3)  [recursive rule]
///   edge(1, 2)  [edb]
///   tc(2, 3)  [exit rule 1]
///     edge(2, 3)  [edb]
/// ```
pub fn render_tree(node: &DerivationNode) -> String {
    fn walk(node: &DerivationNode, depth: usize, out: &mut String) {
        let tag = match node.rule {
            None => "edb".to_string(),
            Some(0) => "recursive rule".to_string(),
            Some(i) => format!("exit rule {i}"),
        };
        out.push_str(&format!(
            "{}{}  [{}]\n",
            "  ".repeat(depth),
            node.fact(),
            tag
        ));
        for child in &node.children {
            walk(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(node, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::relation::tuple_u64;
    use recurs_datalog::rule::LinearRecursion;

    fn tc() -> (LinearRecursion, Database) {
        let program =
            parse_program("tc(x, y) :- edge(x, y).\ntc(x, y) :- edge(x, z), tc(z, y).").unwrap();
        let lr = LinearRecursion::from_program(&program).unwrap();
        let mut db = Database::new();
        db.insert_relation(
            "edge",
            Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 2)]),
        );
        (lr, db)
    }

    #[test]
    fn derives_a_chain_and_verifies() {
        let (lr, db) = tc();
        let budget = EvalBudget::unlimited();
        let out = explain_fact(&lr, &db, &tuple_u64([1, 4]), DEFAULT_WHY_DEPTH, &budget).unwrap();
        let WhyOutcome::Derived(tree) = out else {
            panic!("expected Derived, got {out:?}");
        };
        assert_eq!(tree.fact(), "tc(1, 4)");
        verify_tree(&lr, &db, &tree).unwrap();
        // The chain 1→2→3→4 needs rank 2: three edges, two recursive steps.
        assert_eq!(tree.depth(), 4);
        let text = render_tree(&tree);
        assert!(text.starts_with("tc(1, 4)  [recursive rule]\n"));
        assert!(text.contains("edge(1, 2)  [edb]"));
    }

    #[test]
    fn underivable_facts_say_so() {
        let (lr, db) = tc();
        let budget = EvalBudget::unlimited();
        let out = explain_fact(&lr, &db, &tuple_u64([4, 1]), DEFAULT_WHY_DEPTH, &budget).unwrap();
        assert!(matches!(out, WhyOutcome::NotDerived));
    }

    #[test]
    fn cyclic_data_still_terminates() {
        let (lr, db) = tc(); // contains the cycle 2→3→4→2
        let budget = EvalBudget::unlimited();
        let out = explain_fact(&lr, &db, &tuple_u64([2, 2]), DEFAULT_WHY_DEPTH, &budget).unwrap();
        let WhyOutcome::Derived(tree) = out else {
            panic!("expected Derived, got {out:?}");
        };
        verify_tree(&lr, &db, &tree).unwrap();
    }

    #[test]
    fn depth_bound_is_honored() {
        let (lr, db) = tc();
        let budget = EvalBudget::unlimited();
        let out = explain_fact(&lr, &db, &tuple_u64([1, 4]), 1, &budget).unwrap();
        match out {
            WhyOutcome::DepthExceeded { rank, max_depth } => {
                assert_eq!(rank, 2);
                assert_eq!(max_depth, 1);
            }
            other => panic!("expected DepthExceeded, got {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let (lr, db) = tc();
        let budget = EvalBudget::unlimited();
        assert!(explain_fact(&lr, &db, &tuple_u64([1]), 10, &budget).is_err());
    }

    #[test]
    fn verify_rejects_forged_trees() {
        let (lr, db) = tc();
        // A leaf claiming an edge that is not stored.
        let forged = DerivationNode {
            predicate: lr.predicate,
            tuple: tuple_u64([1, 2]),
            rule: Some(1),
            children: vec![DerivationNode {
                predicate: Symbol::intern("edge"),
                tuple: tuple_u64([1, 7]),
                rule: None,
                children: Vec::new(),
            }],
        };
        let err = verify_tree(&lr, &db, &forged).unwrap_err();
        assert!(err.contains("not a consistent instantiation") || err.contains("not an EDB fact"));
        // An inconsistent instantiation: head says (1,2) but child is (2,3).
        let inconsistent = DerivationNode {
            predicate: lr.predicate,
            tuple: tuple_u64([1, 2]),
            rule: Some(1),
            children: vec![DerivationNode {
                predicate: Symbol::intern("edge"),
                tuple: tuple_u64([2, 3]),
                rule: None,
                children: Vec::new(),
            }],
        };
        assert!(verify_tree(&lr, &db, &inconsistent).is_err());
    }
}
