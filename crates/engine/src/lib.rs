//! `recurs-engine` — an indexed, optionally parallel semi-naive execution
//! engine with class-aware kernels.
//!
//! The oracle evaluator in `recurs_datalog::eval` is written for clarity: it
//! re-plans the join order, re-normalizes atoms, and rebuilds hash indexes
//! on every fixpoint iteration. This crate keeps the same semantics (it is
//! differentially tested against the oracle) but moves all of that work out
//! of the loop:
//!
//! * **Storage** ([`storage`]): [`storage::IndexedRelation`] keeps
//!   *persistent* hash indexes on the columns rules join on. Each index is
//!   built once and maintained incrementally as deltas merge, so iteration
//!   cost tracks the delta, not the accumulated relation.
//! * **Compilation** ([`compile`]): each rule (differentiated per delta
//!   position) becomes a fixed [`compile::CompiledRule`] pipeline — seed
//!   selection/projection, then hash-probe join steps with constants folded
//!   into the index keys.
//! * **Parallelism**: in [`EngineMode::Parallel`] the delta is sharded by
//!   the hash of each row's first join key onto `std::thread::scope`
//!   workers; per-worker result buffers are merged and deduped against the
//!   total relation on the main thread, so shared storage stays read-only
//!   while workers run.
//! * **Kernels** ([`kernel`]): the dispatcher inspects the formula's
//!   [`Classification`] — one-directional classes (A1/A3/A5) run the
//!   frontier kernel, formulas with a proven rank bound (A2/A4/B/D) run
//!   bounded unrolling that stops at the rank *without fixpoint detection*,
//!   and everything else (C/E/F) takes the generic semi-naive fallback.
//!
//! [`EngineStats`] reports per-iteration timings, delta sizes, index hit
//! counts, and worker utilization.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod kernel;
pub mod stats;
pub mod storage;

pub use kernel::select_kernel;
pub use stats::{EngineStats, IterationStats, KernelKind};
pub use storage::{EngineDb, IndexedRelation};

use compile::{CompiledRule, ProbeCounters, Row};
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::relation::Tuple;
use recurs_datalog::rule::{LinearRecursion, Program};
use recurs_datalog::symbol::Symbol;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// How the engine executes each iteration's joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Single-threaded execution over persistent indexes.
    Indexed,
    /// Delta-sharded execution on scoped worker threads.
    Parallel {
        /// Number of worker threads (at least 1).
        threads: usize,
    },
}

impl EngineMode {
    fn threads(self) -> usize {
        match self {
            EngineMode::Indexed => 1,
            EngineMode::Parallel { threads } => threads.max(1),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Execution mode.
    pub mode: EngineMode,
    /// Iteration cap (counting the seeding round); `None` runs to fixpoint.
    /// A capped stop with work remaining sets [`EngineStats::truncated`].
    pub max_iterations: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            mode: EngineMode::Indexed,
            max_iterations: None,
        }
    }
}

/// Saturates `db` with the program's consequences using the kernel selected
/// from the recursion's classification. IDB relations are written back into
/// `db` (EDB relations are untouched).
pub fn run_linear(
    db: &mut Database,
    lr: &LinearRecursion,
    config: &EngineConfig,
) -> Result<EngineStats, DatalogError> {
    let classification = recurs_core::Classification::of(&lr.recursive_rule);
    let kernel = select_kernel(&classification);
    run_with_kernel(db, &lr.to_program(), kernel, config)
}

/// Saturates `db` with an arbitrary program using the generic semi-naive
/// kernel (no classification needed; handles multi-rule, multi-predicate
/// programs and mutual recursion).
pub fn run_program(
    db: &mut Database,
    program: &Program,
    config: &EngineConfig,
) -> Result<EngineStats, DatalogError> {
    run_with_kernel(db, program, KernelKind::Generic, config)
}

/// Saturates `db` with a specific kernel. [`run_linear`] selects the kernel
/// automatically; this entry point exists for tests and experiments.
pub fn run_with_kernel(
    db: &mut Database,
    program: &Program,
    kernel: KernelKind,
    config: &EngineConfig,
) -> Result<EngineStats, DatalogError> {
    // Declare IDB relations up front (arity checks, like the oracle does).
    for rule in &program.rules {
        db.declare(rule.head.predicate, rule.head.arity())?;
    }
    let idb: BTreeSet<Symbol> = program.idb_predicates();

    // Copy the database into indexed storage. Body predicates must exist.
    let mut storage = EngineDb::new();
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            if storage.get(atom.predicate).is_none() {
                storage.load(atom.predicate, db.require(atom.predicate)?);
            }
        }
    }

    // Compile: non-recursive rules seed iteration 0; rules with IDB body
    // atoms get one differentiated variant per IDB occurrence.
    let mut init: Vec<CompiledRule> = Vec::new();
    let mut variants: Vec<CompiledRule> = Vec::new();
    for rule in &program.rules {
        let idb_positions: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, a)| idb.contains(&a.predicate))
            .map(|(i, _)| i)
            .collect();
        if idb_positions.is_empty() {
            init.push(CompiledRule::compile(rule, None, db)?);
        } else {
            for pos in idb_positions {
                variants.push(CompiledRule::compile(rule, Some(pos), db)?);
            }
        }
    }

    // Build every index the pipelines will probe, once, before the loop.
    for cr in init.iter().chain(variants.iter()) {
        for (pred, cols) in cr.required_indexes() {
            let cols = cols.to_vec();
            storage
                .get_mut(pred)
                .expect("all referenced relations were loaded")
                .ensure_index(&cols);
        }
    }

    let threads = config.mode.threads();
    let mut stats = EngineStats {
        kernel: Some(kernel),
        threads,
        ..EngineStats::default()
    };
    let mut counters = ProbeCounters::default();

    // Iteration 0: non-recursive rules against the EDB (single-threaded —
    // seeding is a one-off, the loop below is the hot path).
    let t0 = Instant::now();
    let mut candidates: Vec<(Symbol, Vec<Tuple>)> = Vec::new();
    for cr in &init {
        let rows = seed_rows_full(cr, &storage);
        let mut buf = Vec::new();
        cr.execute(&storage, rows, &mut counters, &mut buf);
        candidates.push((cr.head_pred, buf));
    }
    let derived0: usize = candidates.iter().map(|(_, ts)| ts.len()).sum();
    let mut ignored = BTreeMap::new();
    let new0 = merge_candidates(&mut storage, candidates, &mut ignored);
    stats.tuples_derived += new0;
    let d0 = t0.elapsed();
    stats.iterations.push(IterationStats {
        delta_in: 0,
        derived: derived0,
        new_tuples: new0,
        duration: d0,
        busy: d0,
        workers: 1,
    });

    // The first recursive delta is everything present after iteration 0,
    // including tuples pre-seeded into IDB relations by the caller (e.g.
    // magic seeds) — recursive rules must see those too.
    let mut delta: BTreeMap<Symbol, Vec<Tuple>> = BTreeMap::new();
    for &pred in &idb {
        let rel = storage.get(pred).expect("IDB relations are loaded");
        if !rel.is_empty() {
            delta.insert(pred, rel.iter().cloned().collect());
        }
    }

    let rank_cap = match kernel {
        KernelKind::BoundedUnroll { rank } => Some(rank),
        _ => None,
    };
    let mut recursive_rounds: u64 = 0;
    loop {
        if delta.values().all(Vec::is_empty) {
            break; // genuine fixpoint
        }
        if let Some(rank) = rank_cap {
            if recursive_rounds >= rank {
                // Bounded unrolling: the proven rank is reached; the
                // theorems guarantee nothing new past this point, so stop
                // without a fixpoint-detection round (not a truncation).
                break;
            }
        }
        if let Some(cap) = config.max_iterations {
            if stats.iterations.len() >= cap {
                stats.truncated = true;
                break;
            }
        }
        recursive_rounds += 1;
        let t = Instant::now();
        let delta_in: usize = delta.values().map(Vec::len).sum();

        // Per-variant seed rows from the current delta.
        let work: Vec<(usize, Vec<Row>)> = variants
            .iter()
            .enumerate()
            .filter_map(|(i, cr)| {
                let seed = cr.seed.as_ref()?;
                let tuples = delta.get(&seed.pred)?;
                if tuples.is_empty() {
                    return None;
                }
                let rows = seed.rows(tuples.iter());
                (!rows.is_empty()).then_some((i, rows))
            })
            .collect();

        // Single-threaded busy time equals the iteration's wall time by
        // definition; parallel workers report their own busy durations.
        let (candidates, busy) = match config.mode {
            EngineMode::Indexed => {
                let mut out = Vec::new();
                for (i, rows) in work {
                    let mut buf = Vec::new();
                    variants[i].execute(&storage, rows, &mut counters, &mut buf);
                    out.push((variants[i].head_pred, buf));
                }
                (out, None)
            }
            EngineMode::Parallel { .. } => {
                let (out, busy) = run_sharded(&variants, work, &storage, threads, &mut counters);
                (out, Some(busy))
            }
        };

        let derived: usize = candidates.iter().map(|(_, ts)| ts.len()).sum();
        let mut next_delta: BTreeMap<Symbol, Vec<Tuple>> = BTreeMap::new();
        let new = merge_candidates(&mut storage, candidates, &mut next_delta);
        stats.tuples_derived += new;
        let duration = t.elapsed();
        stats.iterations.push(IterationStats {
            delta_in,
            derived,
            new_tuples: new,
            duration,
            busy: busy.unwrap_or(duration),
            workers: threads,
        });
        delta = next_delta;
    }

    // Write the saturated IDB relations back.
    for &pred in &idb {
        let rel = storage.get(pred).expect("IDB relations are loaded");
        db.insert_relation(pred, rel.to_relation());
    }
    stats.index = storage.index_counters();
    stats.probes = counters.probes;
    stats.probe_hits = counters.hits;
    Ok(stats)
}

/// Seed rows for a non-differentiated rule: the full stored relation of the
/// seed atom (or the unit row for an empty body).
fn seed_rows_full(cr: &CompiledRule, storage: &EngineDb) -> Vec<Row> {
    match &cr.seed {
        None => vec![Vec::new()],
        Some(seed) => {
            let rel = storage
                .get(seed.pred)
                .expect("all referenced relations were loaded");
            seed.rows(rel.iter())
        }
    }
}

/// Inserts candidate tuples, returning the number genuinely new; new tuples
/// are also appended to `next_delta` keyed by predicate.
fn merge_candidates(
    storage: &mut EngineDb,
    candidates: Vec<(Symbol, Vec<Tuple>)>,
    next_delta: &mut BTreeMap<Symbol, Vec<Tuple>>,
) -> usize {
    let mut new = 0usize;
    for (pred, tuples) in candidates {
        let rel = storage.get_mut(pred).expect("IDB relations are loaded");
        for t in tuples {
            if rel.insert(t.clone()) {
                new += 1;
                next_delta.entry(pred).or_default().push(t);
            }
        }
    }
    new
}

/// Executes the iteration's work items on `threads` scoped workers. Seed
/// rows are sharded by the hash of their first join key (falling back to
/// the whole row), shared storage is read-only, and each worker returns its
/// own result buffer and probe counters for the main thread to merge.
fn run_sharded(
    variants: &[CompiledRule],
    work: Vec<(usize, Vec<Row>)>,
    storage: &EngineDb,
    threads: usize,
    counters: &mut ProbeCounters,
) -> (Vec<(Symbol, Vec<Tuple>)>, std::time::Duration) {
    // shards[w] holds this worker's rows for each work item.
    let mut shards: Vec<Vec<(usize, Vec<Row>)>> = (0..threads)
        .map(|_| Vec::with_capacity(work.len()))
        .collect();
    for (variant_i, rows) in work {
        let shard_cols = variants[variant_i].shard_cols();
        let mut buckets: Vec<Vec<Row>> = (0..threads).map(|_| Vec::new()).collect();
        for row in rows {
            let w = shard_of(&row, shard_cols, threads);
            buckets[w].push(row);
        }
        for (w, bucket) in buckets.into_iter().enumerate() {
            shards[w].push((variant_i, bucket));
        }
    }

    let mut out: Vec<(Symbol, Vec<Tuple>)> = Vec::new();
    let mut busy = std::time::Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|items| {
                s.spawn(move || {
                    let t = Instant::now();
                    let mut local = ProbeCounters::default();
                    let mut results: Vec<(Symbol, Vec<Tuple>)> = Vec::new();
                    for (variant_i, rows) in items {
                        if rows.is_empty() {
                            continue;
                        }
                        let cr = &variants[variant_i];
                        let mut buf = Vec::new();
                        cr.execute(storage, rows, &mut local, &mut buf);
                        results.push((cr.head_pred, buf));
                    }
                    (results, local, t.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (results, local, elapsed) = h.join().expect("engine worker panicked");
            out.extend(results);
            counters.absorb(local);
            busy += elapsed;
        }
    });
    (out, busy)
}

/// Deterministic shard assignment for a seed row.
fn shard_of(row: &Row, shard_cols: &[usize], threads: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    if shard_cols.is_empty() {
        row.hash(&mut h);
    } else {
        for &c in shard_cols {
            row[c].hash(&mut h);
        }
    }
    (h.finish() % threads as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::relation::Relation;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn tc_db(n: u64) -> Database {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db
    }

    fn tc_program() -> Program {
        parse_program("P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).").unwrap()
    }

    #[test]
    fn generic_engine_matches_oracle_on_chain() {
        let mut db1 = tc_db(9);
        let mut db2 = tc_db(9);
        semi_naive(&mut db1, &tc_program(), None).unwrap();
        let stats = run_program(&mut db2, &tc_program(), &EngineConfig::default()).unwrap();
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
        assert_eq!(stats.tuples_derived, db2.get("P").unwrap().len());
        assert!(stats.probes > 0);
        assert!(stats.index.builds > 0);
    }

    #[test]
    fn parallel_engine_matches_oracle_on_cycle() {
        let mut db1 = Database::new();
        db1.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        db1.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        let mut db2 = db1.clone();
        semi_naive(&mut db1, &tc_program(), None).unwrap();
        let cfg = EngineConfig {
            mode: EngineMode::Parallel { threads: 4 },
            max_iterations: None,
        };
        run_program(&mut db2, &tc_program(), &cfg).unwrap();
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
        assert_eq!(db2.get("P").unwrap().len(), 9);
    }

    #[test]
    fn class_kernel_path_matches_oracle() {
        let lr = validate_with_generic_exit(&tc_program()).unwrap();
        let mut db1 = tc_db(7);
        let mut db2 = tc_db(7);
        semi_naive(&mut db1, &lr.to_program(), None).unwrap();
        let stats = run_linear(&mut db2, &lr, &EngineConfig::default()).unwrap();
        // TC is class A5 (one-directional): frontier kernel.
        assert_eq!(stats.kernel, Some(KernelKind::Frontier));
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
    }

    #[test]
    fn truncation_respects_iteration_cap() {
        let mut db = tc_db(40);
        let cfg = EngineConfig {
            mode: EngineMode::Indexed,
            max_iterations: Some(3),
        };
        let stats = run_program(&mut db, &tc_program(), &cfg).unwrap();
        assert!(stats.truncated);
        assert_eq!(stats.iteration_count(), 3);
        assert!(db.get("P").unwrap().len() < 39 * 40 / 2);
    }

    #[test]
    fn preseeded_idb_tuples_reach_recursive_rules() {
        // Matches the oracle's magic-seed semantics: tuples already in P
        // participate in the first recursive round.
        let mut db1 = Database::new();
        db1.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db1.insert_relation("E", Relation::new(2));
        db1.insert_relation("P", Relation::from_pairs([(3, 9)]));
        let mut db2 = db1.clone();
        semi_naive(&mut db1, &tc_program(), None).unwrap();
        run_program(&mut db2, &tc_program(), &EngineConfig::default()).unwrap();
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
        assert_eq!(db2.get("P").unwrap().len(), 3); // (3,9) (2,9) (1,9)
    }

    #[test]
    fn missing_edb_relation_is_an_error() {
        let mut db = Database::new();
        let program = parse_program("Q(x) :- Missing(x, x).").unwrap();
        assert!(run_program(&mut db, &program, &EngineConfig::default()).is_err());
    }

    #[test]
    fn stats_record_per_iteration_deltas() {
        let mut db = tc_db(5);
        let stats = run_program(&mut db, &tc_program(), &EngineConfig::default()).unwrap();
        // Chain of 4 edges: the seed round derives 4 tuples, the recursive
        // rounds 3, 2, 1, and a final round finds nothing new.
        let deltas: Vec<usize> = stats.iterations.iter().map(|i| i.new_tuples).collect();
        assert_eq!(deltas, vec![4, 3, 2, 1, 0]);
        assert!(stats.iterations.iter().all(|i| i.workers == 1));
        assert!(stats.worker_utilization() > 0.9);
    }
}
