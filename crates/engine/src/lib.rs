//! `recurs-engine` — an indexed, optionally parallel semi-naive execution
//! engine with class-aware kernels.
//!
//! The oracle evaluator in `recurs_datalog::eval` is written for clarity: it
//! re-plans the join order, re-normalizes atoms, and rebuilds hash indexes
//! on every fixpoint iteration. This crate keeps the same semantics (it is
//! differentially tested against the oracle) but moves all of that work out
//! of the loop:
//!
//! * **Storage** ([`storage`]): [`storage::IndexedRelation`] keeps
//!   *persistent* hash indexes on the columns rules join on. Each index is
//!   built once and maintained incrementally as deltas merge, so iteration
//!   cost tracks the delta, not the accumulated relation.
//! * **Compilation** ([`compile`]): each rule (differentiated per delta
//!   position) becomes a fixed [`compile::CompiledRule`] pipeline — seed
//!   selection/projection, then hash-probe join steps with constants folded
//!   into the index keys.
//! * **Parallelism**: in [`EngineMode::Parallel`] the delta is sharded by
//!   the hash of each row's first join key onto `std::thread::scope`
//!   workers; per-worker result buffers are merged and deduped against the
//!   total relation on the main thread, so shared storage stays read-only
//!   while workers run.
//! * **Kernels** ([`kernel`]): the dispatcher inspects the formula's
//!   [`Classification`](recurs_core::Classification) — one-directional
//!   classes (A1/A3/A5) run the frontier kernel, formulas with a proven rank
//!   bound (A2/A4/B/D) run bounded unrolling that stops at the rank *without
//!   fixpoint detection*, and everything else (C/E/F) takes the generic
//!   semi-naive fallback.
//!
//! # Failure semantics
//!
//! Every run is governed by the [`EngineConfig::budget`]
//! ([`recurs_datalog::govern::EvalBudget`]): the driver checks the full
//! budget at each iteration boundary and kernels poll cancellation/deadline
//! cooperatively every few hundred rows. A run that stops early returns
//! `Ok(`[`Saturation`]`)` with [`Outcome::Truncated`] and writes back a
//! *sound under-approximation* of the fixpoint — every derived tuple is a
//! true consequence; stopping only omits tuples. Worker panics are
//! contained: a panicked parallel iteration is retried single-threaded
//! (workers never mutate shared storage, so the retry is clean), recorded in
//! [`EngineStats::worker_panics`]/[`EngineStats::degraded_iterations`]; only
//! if the retry panics too does the run fail with
//! [`EngineError::WorkerPanic`].
//!
//! [`EngineStats`] reports per-iteration timings, delta sizes, index hit
//! counts, worker utilization, and degradation events.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Library paths must surface failures as `Err`, never panic on input; unit
// tests (compiled only under cfg(test)) are exempt. CI runs clippy with
// `-D warnings`, making this a hard gate.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod compile;
pub mod error;
#[cfg(any(test, feature = "fault-inject"))]
pub mod fault;
pub mod kernel;
pub mod stats;
pub mod storage;

pub use error::{EngineError, Saturation};
pub use kernel::select_kernel;
pub use stats::{EngineStats, IterationStats, KernelKind};
pub use storage::{EngineDb, IndexedRelation};

use compile::{CompiledRule, ProbeCounters, Row};
use recurs_datalog::database::Database;
use recurs_datalog::govern::{EvalBudget, Governor, Outcome, Progress, TruncationReason};
use recurs_datalog::relation::Tuple;
use recurs_datalog::rule::{LinearRecursion, Program};
use recurs_datalog::symbol::Symbol;
use recurs_obs::{field, Obs};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// How the engine executes each iteration's joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Single-threaded execution over persistent indexes.
    #[default]
    Indexed,
    /// Delta-sharded execution on scoped worker threads.
    Parallel {
        /// Number of worker threads (at least 1).
        threads: usize,
    },
}

impl EngineMode {
    fn threads(self) -> usize {
        match self {
            EngineMode::Indexed => 1,
            EngineMode::Parallel { threads } => threads.max(1),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Execution mode.
    pub mode: EngineMode,
    /// Resource budget. The default is unlimited (run to fixpoint); any
    /// tripped ceiling ends the run with [`Outcome::Truncated`] rather than
    /// an error. Iteration caps count the seeding round — a cap of `k` runs
    /// the seeding round plus at most `k - 1` recursive rounds, the same
    /// definition `recurs_datalog::eval` uses.
    pub budget: EvalBudget,
    /// Observability handle. The default ([`Obs::noop`]) records nothing
    /// and costs one predictable branch per emission site; an active
    /// handle receives `engine.*` provenance events, per-iteration
    /// counters, and iteration-duration histograms.
    pub obs: Obs,
}

/// Saturates `db` with the program's consequences using the kernel selected
/// from the recursion's classification. IDB relations are written back into
/// `db` (EDB relations are untouched) — on [`Outcome::Truncated`] runs too,
/// where they hold a sound under-approximation of the fixpoint.
pub fn run_linear(
    db: &mut Database,
    lr: &LinearRecursion,
    config: &EngineConfig,
) -> Result<Saturation, EngineError> {
    let classification = recurs_core::Classification::of(&lr.recursive_rule);
    let kernel = select_kernel(&classification);
    if config.obs.enabled() {
        // The dispatch decision: which class the formula fell in and which
        // compiled form the engine chose for it.
        config.obs.event(
            "engine.dispatch",
            &[
                ("class", field::s(classification.class.label())),
                ("kernel", field::s(kernel.label())),
            ],
        );
    }
    run_with_kernel(db, &lr.to_program(), kernel, config)
}

/// Saturates `db` with an arbitrary program using the generic semi-naive
/// kernel (no classification needed; handles multi-rule, multi-predicate
/// programs and mutual recursion).
pub fn run_program(
    db: &mut Database,
    program: &Program,
    config: &EngineConfig,
) -> Result<Saturation, EngineError> {
    run_with_kernel(db, program, KernelKind::Generic, config)
}

const UNLOADED_RELATION: &str = "compiled rule references a relation the driver never loaded";

/// Derived tuples of one iteration: one entry per executed rule variant,
/// tagged with the variant's index so per-rule fan-out is attributable.
type Derivations = Vec<(usize, Symbol, Vec<Tuple>)>;

/// Saturates `db` with a specific kernel. [`run_linear`] selects the kernel
/// automatically; this entry point exists for tests and experiments.
pub fn run_with_kernel(
    db: &mut Database,
    program: &Program,
    kernel: KernelKind,
    config: &EngineConfig,
) -> Result<Saturation, EngineError> {
    let governor = config.budget.start();

    // Declare IDB relations up front (arity checks, like the oracle does).
    for rule in &program.rules {
        db.declare(rule.head.predicate, rule.head.arity())?;
    }
    let idb: BTreeSet<Symbol> = program.idb_predicates();

    // Copy the database into indexed storage. Body predicates must exist.
    let mut storage = EngineDb::new();
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            if storage.get(atom.predicate).is_none() {
                storage.load(atom.predicate, db.require(atom.predicate)?);
            }
        }
    }

    // Compile: non-recursive rules seed iteration 0; rules with IDB body
    // atoms get one differentiated variant per IDB occurrence.
    let mut init: Vec<CompiledRule> = Vec::new();
    let mut variants: Vec<CompiledRule> = Vec::new();
    for rule in &program.rules {
        let idb_positions: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, a)| idb.contains(&a.predicate))
            .map(|(i, _)| i)
            .collect();
        if idb_positions.is_empty() {
            init.push(CompiledRule::compile(rule, None, db)?);
        } else {
            for pos in idb_positions {
                variants.push(CompiledRule::compile(rule, Some(pos), db)?);
            }
        }
    }

    // Build every index the pipelines will probe, once, before the loop.
    for cr in init.iter().chain(variants.iter()) {
        for (pred, cols) in cr.required_indexes() {
            let cols = cols.to_vec();
            storage
                .get_mut(pred)
                .ok_or(EngineError::Internal(UNLOADED_RELATION))?
                .ensure_index(&cols);
        }
    }

    let threads = config.mode.threads();
    let obs = &config.obs;
    let mut stats = EngineStats {
        kernel: Some(kernel),
        threads,
        ..EngineStats::default()
    };
    let mut counters = ProbeCounters::default();
    let mut truncation: Option<TruncationReason> = None;

    if obs.enabled() {
        let kernel_label = kernel.label();
        obs.counter("recurs_engine_runs_total", &[("kernel", &kernel_label)], 1);
        obs.event(
            "engine.start",
            &[
                ("kernel", field::s(kernel_label)),
                (
                    "mode",
                    field::s(match config.mode {
                        EngineMode::Indexed => "indexed",
                        EngineMode::Parallel { .. } => "parallel",
                    }),
                ),
                ("threads", field::uz(threads)),
            ],
        );
    }

    'run: {
        // A budget can trip before any work (cancelled token, zero timeout,
        // zero iteration cap).
        if let Some(reason) = governor.check(Progress {
            iterations: 0,
            tuples: 0,
            delta: 0,
            memory_bytes: approx_memory(&storage),
        }) {
            truncation = Some(reason);
            break 'run;
        }

        // Iteration 0: non-recursive rules against the EDB (single-threaded
        // — seeding is a one-off, the loop below is the hot path).
        let t0 = Instant::now();
        let mut candidates: Derivations = Vec::new();
        let mut rule_rows: Vec<(usize, usize)> = Vec::new();
        let mut interrupted: Option<TruncationReason> = None;
        for (i, cr) in init.iter().enumerate() {
            if interrupted.is_some() {
                break;
            }
            let rows = seed_rows_full(cr, &storage)?;
            if obs.enabled() {
                rule_rows.push((i, rows.len()));
            }
            let mut buf = Vec::new();
            interrupted = cr.execute(&storage, rows, &mut counters, Some(&governor), &mut buf)?;
            candidates.push((i, cr.head_pred, buf));
        }
        emit_engine_rules(obs, 1, &init, &rule_rows, &candidates);
        let derived0: usize = candidates.iter().map(|(_, _, ts)| ts.len()).sum();
        let mut ignored = BTreeMap::new();
        let new0 = merge_candidates(&mut storage, candidates, &mut ignored)?;
        stats.tuples_derived += new0;
        let d0 = t0.elapsed();
        let it0 = IterationStats {
            delta_in: 0,
            derived: derived0,
            new_tuples: new0,
            duration: d0,
            busy: d0,
            workers: 1,
        };
        emit_engine_iteration(obs, 1, &it0);
        stats.iterations.push(it0);
        if let Some(reason) = interrupted {
            truncation = Some(reason);
            break 'run;
        }

        // The first recursive delta is everything present after iteration 0,
        // including tuples pre-seeded into IDB relations by the caller (e.g.
        // magic seeds) — recursive rules must see those too.
        let mut delta: BTreeMap<Symbol, Vec<Tuple>> = BTreeMap::new();
        for &pred in &idb {
            let rel = storage
                .get(pred)
                .ok_or(EngineError::Internal(UNLOADED_RELATION))?;
            if !rel.is_empty() {
                delta.insert(pred, rel.iter().cloned().collect());
            }
        }

        let rank_cap = match kernel {
            KernelKind::BoundedUnroll { rank } => Some(rank),
            _ => None,
        };
        let mut recursive_rounds: u64 = 0;
        loop {
            if delta.values().all(Vec::is_empty) {
                break; // genuine fixpoint
            }
            if let Some(rank) = rank_cap {
                if recursive_rounds >= rank {
                    // Bounded unrolling: the proven rank is reached; the
                    // theorems guarantee nothing new past this point, so
                    // stop without a fixpoint-detection round (this is
                    // completeness, not truncation).
                    break;
                }
            }
            if let Some(reason) = governor.check(Progress {
                iterations: stats.iterations.len(),
                tuples: stats.tuples_derived,
                delta: delta.values().map(Vec::len).sum(),
                memory_bytes: approx_memory(&storage),
            }) {
                truncation = Some(reason);
                break;
            }
            recursive_rounds += 1;
            let t = Instant::now();
            let delta_in: usize = delta.values().map(Vec::len).sum();
            let iteration = stats.iterations.len() + 1;
            let work = build_work(&variants, &delta);
            let rule_rows: Vec<(usize, usize)> = if obs.enabled() {
                work.iter().map(|(i, rows)| (*i, rows.len())).collect()
            } else {
                Vec::new()
            };

            // Single-threaded busy time equals the iteration's wall time by
            // definition; parallel workers report their own busy durations.
            let (candidates, busy, interrupted) = match config.mode {
                EngineMode::Indexed => {
                    let (out, stop) =
                        run_indexed(&variants, work, &storage, &mut counters, Some(&governor))?;
                    (out, None, stop)
                }
                EngineMode::Parallel { .. } => {
                    match run_sharded(
                        &variants,
                        work,
                        &storage,
                        threads,
                        &mut counters,
                        Some(&governor),
                        obs,
                    ) {
                        Ok((out, busy, stop)) => (out, Some(busy), stop),
                        Err(ShardFailure::Error(e)) => return Err(e),
                        Err(ShardFailure::Panic(msg)) => {
                            // Contain the panic and degrade: workers never
                            // mutate shared storage, so the iteration can be
                            // cleanly recomputed from the same delta on the
                            // single-threaded indexed path.
                            stats.worker_panics += 1;
                            if obs.enabled() {
                                obs.counter("recurs_engine_worker_panics_total", &[], 1);
                                obs.event(
                                    "engine.worker_panic",
                                    &[
                                        ("iteration", field::uz(iteration)),
                                        ("message", field::s(msg.clone())),
                                    ],
                                );
                            }
                            let work = build_work(&variants, &delta);
                            let retried =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    #[cfg(any(test, feature = "fault-inject"))]
                                    fault::retry_start_obs(obs);
                                    run_indexed(
                                        &variants,
                                        work,
                                        &storage,
                                        &mut counters,
                                        Some(&governor),
                                    )
                                }));
                            match retried {
                                Ok(result) => {
                                    let (out, stop) = result?;
                                    stats.degraded_iterations += 1;
                                    if obs.enabled() {
                                        obs.counter(
                                            "recurs_engine_degraded_iterations_total",
                                            &[],
                                            1,
                                        );
                                        obs.event(
                                            "engine.degraded_retry",
                                            &[("iteration", field::uz(iteration))],
                                        );
                                    }
                                    (out, None, stop)
                                }
                                Err(payload) => {
                                    return Err(EngineError::WorkerPanic {
                                        iteration: stats.iterations.len() + 1,
                                        message: panic_message(payload.as_ref()).unwrap_or(msg),
                                    });
                                }
                            }
                        }
                    }
                }
            };

            emit_engine_rules(obs, iteration, &variants, &rule_rows, &candidates);
            let derived: usize = candidates.iter().map(|(_, _, ts)| ts.len()).sum();
            let mut next_delta: BTreeMap<Symbol, Vec<Tuple>> = BTreeMap::new();
            let new = merge_candidates(&mut storage, candidates, &mut next_delta)?;
            stats.tuples_derived += new;
            let duration = t.elapsed();
            let it = IterationStats {
                delta_in,
                derived,
                new_tuples: new,
                duration,
                busy: busy.unwrap_or(duration),
                // A degraded (or indexed) iteration ran on one worker.
                workers: if busy.is_some() { threads } else { 1 },
            };
            emit_engine_iteration(obs, iteration, &it);
            stats.iterations.push(it);
            delta = next_delta;
            if let Some(reason) = interrupted {
                truncation = Some(reason);
                break;
            }
        }
    }

    // Write the saturated (or truncated-but-sound) IDB relations back.
    for &pred in &idb {
        let rel = storage
            .get(pred)
            .ok_or(EngineError::Internal(UNLOADED_RELATION))?;
        db.insert_relation(pred, rel.to_relation());
    }
    stats.index = storage.index_counters();
    stats.probes = counters.probes;
    stats.probe_hits = counters.hits;
    let outcome = match truncation {
        None => Outcome::Complete,
        Some(reason) => Outcome::Truncated(reason),
    };
    if obs.enabled() {
        obs.counter("recurs_engine_probes_total", &[], stats.probes);
        obs.counter("recurs_engine_probe_hits_total", &[], stats.probe_hits);
        match truncation {
            Some(reason) => {
                let label = reason.to_string();
                obs.counter("recurs_engine_truncations_total", &[("reason", &label)], 1);
                obs.event(
                    "engine.truncated",
                    &[
                        ("reason", field::s(label)),
                        ("iterations", field::uz(stats.iteration_count())),
                        ("tuples_derived", field::uz(stats.tuples_derived)),
                    ],
                );
            }
            None => obs.event(
                "engine.complete",
                &[
                    ("iterations", field::uz(stats.iteration_count())),
                    ("tuples_derived", field::uz(stats.tuples_derived)),
                    ("probes", field::u(stats.probes)),
                    ("probe_hits", field::u(stats.probe_hits)),
                    ("index_builds", field::u(stats.index.builds)),
                    ("index_updates", field::u(stats.index.updates)),
                    ("total_duration_us", field::us(stats.total_duration())),
                ],
            ),
        }
    }
    Ok(Saturation { outcome, stats })
}

/// Emits the per-iteration provenance event plus iteration counters and
/// the iteration-duration histogram. No-op with a disabled handle.
fn emit_engine_iteration(obs: &Obs, iteration: usize, it: &IterationStats) {
    if !obs.enabled() {
        return;
    }
    obs.counter("recurs_engine_iterations_total", &[], 1);
    obs.counter(
        "recurs_engine_tuples_derived_total",
        &[],
        it.new_tuples as u64,
    );
    obs.observe(
        "recurs_engine_iteration_seconds",
        &[],
        it.duration.as_secs_f64(),
    );
    obs.event(
        "engine.iteration",
        &[
            ("iteration", field::uz(iteration)),
            ("delta_in", field::uz(it.delta_in)),
            ("derived", field::uz(it.derived)),
            ("new_tuples", field::uz(it.new_tuples)),
            ("duration_us", field::us(it.duration)),
            ("busy_us", field::us(it.busy)),
            ("workers", field::uz(it.workers)),
        ],
    );
}

/// Emits one `engine.rule` event per executed variant: join fan-in (seed
/// rows from the delta) and fan-out (candidate tuples before dedup), keyed
/// by variant index and head predicate. No-op with a disabled handle.
fn emit_engine_rules(
    obs: &Obs,
    iteration: usize,
    variants: &[CompiledRule],
    rule_rows: &[(usize, usize)],
    candidates: &Derivations,
) {
    if !obs.enabled() {
        return;
    }
    for &(vi, rows_in) in rule_rows {
        let derived: usize = candidates
            .iter()
            .filter(|(ci, _, _)| *ci == vi)
            .map(|(_, _, ts)| ts.len())
            .sum();
        obs.event(
            "engine.rule",
            &[
                ("iteration", field::uz(iteration)),
                ("variant", field::uz(vi)),
                ("head", field::s(variants[vi].head_pred.to_string())),
                ("rows_in", field::uz(rows_in)),
                ("derived", field::uz(derived)),
            ],
        );
    }
}

/// The engine's memory estimate for budget enforcement: indexed storage
/// plus any fault-injected ballast.
fn approx_memory(storage: &EngineDb) -> usize {
    #[cfg(any(test, feature = "fault-inject"))]
    let ballast = fault::ballast_bytes();
    #[cfg(not(any(test, feature = "fault-inject")))]
    let ballast = 0;
    storage.approx_bytes() + ballast
}

/// Extracts a panic payload's message, if it was a string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
}

/// Per-variant seed rows from the current delta.
fn build_work(
    variants: &[CompiledRule],
    delta: &BTreeMap<Symbol, Vec<Tuple>>,
) -> Vec<(usize, Vec<Row>)> {
    variants
        .iter()
        .enumerate()
        .filter_map(|(i, cr)| {
            let seed = cr.seed.as_ref()?;
            let tuples = delta.get(&seed.pred)?;
            if tuples.is_empty() {
                return None;
            }
            let rows = seed.rows(tuples.iter());
            (!rows.is_empty()).then_some((i, rows))
        })
        .collect()
}

/// Seed rows for a non-differentiated rule: the full stored relation of the
/// seed atom (or the unit row for an empty body).
fn seed_rows_full(cr: &CompiledRule, storage: &EngineDb) -> Result<Vec<Row>, EngineError> {
    match &cr.seed {
        None => Ok(vec![Vec::new()]),
        Some(seed) => {
            let rel = storage
                .get(seed.pred)
                .ok_or(EngineError::Internal(UNLOADED_RELATION))?;
            Ok(seed.rows(rel.iter()))
        }
    }
}

/// Inserts candidate tuples, returning the number genuinely new; new tuples
/// are also appended to `next_delta` keyed by predicate.
fn merge_candidates(
    storage: &mut EngineDb,
    candidates: Derivations,
    next_delta: &mut BTreeMap<Symbol, Vec<Tuple>>,
) -> Result<usize, EngineError> {
    let mut new = 0usize;
    for (_variant, pred, tuples) in candidates {
        let rel = storage
            .get_mut(pred)
            .ok_or(EngineError::Internal(UNLOADED_RELATION))?;
        for t in tuples {
            if rel.insert(t.clone()) {
                new += 1;
                next_delta.entry(pred).or_default().push(t);
            }
        }
    }
    Ok(new)
}

/// Executes the iteration's work items single-threaded over the indexed
/// storage; also the retry path after a contained worker panic.
fn run_indexed(
    variants: &[CompiledRule],
    work: Vec<(usize, Vec<Row>)>,
    storage: &EngineDb,
    counters: &mut ProbeCounters,
    governor: Option<&Governor>,
) -> Result<(Derivations, Option<TruncationReason>), EngineError> {
    let mut out = Vec::new();
    let mut stop = None;
    for (i, rows) in work {
        let mut buf = Vec::new();
        let interrupted = variants[i].execute(storage, rows, counters, governor, &mut buf)?;
        out.push((i, variants[i].head_pred, buf));
        if let Some(reason) = interrupted {
            stop = Some(reason);
            break;
        }
    }
    Ok((out, stop))
}

/// Why a sharded iteration failed (as opposed to tripping the budget).
enum ShardFailure {
    /// At least one worker panicked; the driver retries single-threaded.
    Panic(String),
    /// A worker hit an engine error (retrying cannot help).
    Error(EngineError),
}

/// Executes the iteration's work items on `threads` scoped workers. Seed
/// rows are sharded by the hash of their first join key (falling back to
/// the whole row), shared storage is read-only, and each worker returns its
/// own result buffer and probe counters for the main thread to merge. A
/// panicking worker is caught via its join result — the other workers still
/// finish and the failure is reported to the driver for containment.
fn run_sharded(
    variants: &[CompiledRule],
    work: Vec<(usize, Vec<Row>)>,
    storage: &EngineDb,
    threads: usize,
    counters: &mut ProbeCounters,
    governor: Option<&Governor>,
    #[allow(unused_variables)] obs: &Obs,
) -> Result<(Derivations, std::time::Duration, Option<TruncationReason>), ShardFailure> {
    // shards[w] holds this worker's rows for each work item.
    let mut shards: Vec<Vec<(usize, Vec<Row>)>> = (0..threads)
        .map(|_| Vec::with_capacity(work.len()))
        .collect();
    for (variant_i, rows) in work {
        let shard_cols = variants[variant_i].shard_cols();
        let mut buckets: Vec<Vec<Row>> = (0..threads).map(|_| Vec::new()).collect();
        for row in rows {
            let w = shard_of(&row, shard_cols, threads);
            buckets[w].push(row);
        }
        for (w, bucket) in buckets.into_iter().enumerate() {
            shards[w].push((variant_i, bucket));
        }
    }

    let mut out: Derivations = Vec::new();
    let mut busy = std::time::Duration::ZERO;
    let mut stop: Option<TruncationReason> = None;
    let mut failure: Option<ShardFailure> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(w, items)| {
                s.spawn(move || {
                    #[cfg(any(test, feature = "fault-inject"))]
                    crate::fault::worker_start_obs(w, obs);
                    #[cfg(not(any(test, feature = "fault-inject")))]
                    let _ = w;
                    let t = Instant::now();
                    let mut local = ProbeCounters::default();
                    let mut results: Derivations = Vec::new();
                    let mut stop: Option<TruncationReason> = None;
                    for (variant_i, rows) in items {
                        if rows.is_empty() {
                            continue;
                        }
                        let cr = &variants[variant_i];
                        let mut buf = Vec::new();
                        let interrupted =
                            cr.execute(storage, rows, &mut local, governor, &mut buf)?;
                        results.push((variant_i, cr.head_pred, buf));
                        if interrupted.is_some() {
                            stop = interrupted;
                            break;
                        }
                    }
                    Ok::<_, EngineError>((results, local, t.elapsed(), stop))
                })
            })
            .collect();
        for h in handles {
            // Manual joins keep a panicking worker from propagating out of
            // the scope: the panic becomes a join error here instead.
            match h.join() {
                Ok(Ok((results, local, elapsed, worker_stop))) => {
                    out.extend(results);
                    counters.absorb(local);
                    busy += elapsed;
                    if stop.is_none() {
                        stop = worker_stop;
                    }
                }
                Ok(Err(e)) => {
                    failure.get_or_insert(ShardFailure::Error(e));
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    failure.get_or_insert(ShardFailure::Panic(msg));
                }
            }
        }
    });
    match failure {
        Some(f) => Err(f),
        None => Ok((out, busy, stop)),
    }
}

/// Deterministic shard assignment for a seed row.
fn shard_of(row: &Row, shard_cols: &[usize], threads: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    if shard_cols.is_empty() {
        row.hash(&mut h);
    } else {
        for &c in shard_cols {
            row[c].hash(&mut h);
        }
    }
    (h.finish() % threads as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::govern::CancelToken;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::relation::Relation;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn tc_db(n: u64) -> Database {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db
    }

    fn tc_program() -> Program {
        parse_program("P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).").unwrap()
    }

    #[test]
    fn generic_engine_matches_oracle_on_chain() {
        let mut db1 = tc_db(9);
        let mut db2 = tc_db(9);
        semi_naive(&mut db1, &tc_program(), None).unwrap();
        let sat = run_program(&mut db2, &tc_program(), &EngineConfig::default()).unwrap();
        assert!(sat.outcome.is_complete());
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
        assert_eq!(sat.stats.tuples_derived, db2.get("P").unwrap().len());
        assert!(sat.stats.probes > 0);
        assert!(sat.stats.index.builds > 0);
    }

    #[test]
    fn parallel_engine_matches_oracle_on_cycle() {
        let _q = fault::quiesce(); // don't absorb another test's fault plan
        let mut db1 = Database::new();
        db1.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        db1.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        let mut db2 = db1.clone();
        semi_naive(&mut db1, &tc_program(), None).unwrap();
        let cfg = EngineConfig {
            mode: EngineMode::Parallel { threads: 4 },
            budget: EvalBudget::unlimited(),
            ..EngineConfig::default()
        };
        let sat = run_program(&mut db2, &tc_program(), &cfg).unwrap();
        assert!(sat.outcome.is_complete());
        assert_eq!(sat.stats.worker_panics, 0);
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
        assert_eq!(db2.get("P").unwrap().len(), 9);
    }

    #[test]
    fn class_kernel_path_matches_oracle() {
        let lr = validate_with_generic_exit(&tc_program()).unwrap();
        let mut db1 = tc_db(7);
        let mut db2 = tc_db(7);
        semi_naive(&mut db1, &lr.to_program(), None).unwrap();
        let sat = run_linear(&mut db2, &lr, &EngineConfig::default()).unwrap();
        // TC is class A5 (one-directional): frontier kernel.
        assert_eq!(sat.stats.kernel, Some(KernelKind::Frontier));
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
    }

    #[test]
    fn truncation_respects_iteration_cap() {
        let mut db = tc_db(40);
        let cfg = EngineConfig {
            mode: EngineMode::Indexed,
            budget: EvalBudget::iteration_cap(Some(3)),
            ..EngineConfig::default()
        };
        let sat = run_program(&mut db, &tc_program(), &cfg).unwrap();
        assert_eq!(
            sat.outcome,
            Outcome::Truncated(TruncationReason::IterationCap)
        );
        assert_eq!(sat.stats.iteration_count(), 3);
        assert!(db.get("P").unwrap().len() < 39 * 40 / 2);
    }

    #[test]
    fn tuple_ceiling_truncates_with_sound_subset() {
        let mut db = tc_db(40);
        let cfg = EngineConfig {
            mode: EngineMode::Indexed,
            budget: EvalBudget::unlimited().with_max_tuples(50),
            ..EngineConfig::default()
        };
        let sat = run_program(&mut db, &tc_program(), &cfg).unwrap();
        assert_eq!(
            sat.outcome,
            Outcome::Truncated(TruncationReason::TupleCeiling)
        );
        let mut full = tc_db(40);
        semi_naive(&mut full, &tc_program(), None).unwrap();
        let fixpoint = full.get("P").unwrap();
        for t in db.get("P").unwrap().iter() {
            assert!(fixpoint.contains(t));
        }
        assert!(db.get("P").unwrap().len() < fixpoint.len());
    }

    #[test]
    fn cancelled_token_truncates_before_work() {
        let mut db = tc_db(10);
        let token = CancelToken::new();
        token.cancel();
        let cfg = EngineConfig {
            mode: EngineMode::Parallel { threads: 2 },
            budget: EvalBudget::unlimited().with_cancel(token),
            ..EngineConfig::default()
        };
        let sat = run_program(&mut db, &tc_program(), &cfg).unwrap();
        assert_eq!(sat.outcome, Outcome::Truncated(TruncationReason::Cancelled));
        assert_eq!(sat.stats.iteration_count(), 0);
        // Write-back still happened (with nothing derived).
        assert!(db.get("P").unwrap().is_empty());
    }

    #[test]
    fn memory_ceiling_truncates() {
        let mut db = tc_db(40);
        let cfg = EngineConfig {
            mode: EngineMode::Indexed,
            budget: EvalBudget::unlimited().with_max_memory_bytes(1),
            ..EngineConfig::default()
        };
        let sat = run_program(&mut db, &tc_program(), &cfg).unwrap();
        assert_eq!(
            sat.outcome,
            Outcome::Truncated(TruncationReason::MemoryCeiling)
        );
    }

    #[test]
    fn preseeded_idb_tuples_reach_recursive_rules() {
        // Matches the oracle's magic-seed semantics: tuples already in P
        // participate in the first recursive round.
        let mut db1 = Database::new();
        db1.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db1.insert_relation("E", Relation::new(2));
        db1.insert_relation("P", Relation::from_pairs([(3, 9)]));
        let mut db2 = db1.clone();
        semi_naive(&mut db1, &tc_program(), None).unwrap();
        run_program(&mut db2, &tc_program(), &EngineConfig::default()).unwrap();
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
        assert_eq!(db2.get("P").unwrap().len(), 3); // (3,9) (2,9) (1,9)
    }

    #[test]
    fn missing_edb_relation_is_an_error() {
        let mut db = Database::new();
        let program = parse_program("Q(x) :- Missing(x, x).").unwrap();
        assert!(run_program(&mut db, &program, &EngineConfig::default()).is_err());
    }

    #[test]
    fn stats_record_per_iteration_deltas() {
        let mut db = tc_db(5);
        let sat = run_program(&mut db, &tc_program(), &EngineConfig::default()).unwrap();
        // Chain of 4 edges: the seed round derives 4 tuples, the recursive
        // rounds 3, 2, 1, and a final round finds nothing new.
        let deltas: Vec<usize> = sat.stats.iterations.iter().map(|i| i.new_tuples).collect();
        assert_eq!(deltas, vec![4, 3, 2, 1, 0]);
        assert!(sat.stats.iterations.iter().all(|i| i.workers == 1));
        assert!(sat.stats.worker_utilization() > 0.9);
    }

    #[test]
    fn single_worker_panic_is_contained_and_retried() {
        let _g = fault::arm(fault::FaultPlan {
            panic_mode: Some(fault::PanicMode::OnceInWorker(0)),
            ..fault::FaultPlan::default()
        });
        let mut db1 = tc_db(8);
        let mut db2 = tc_db(8);
        semi_naive(&mut db1, &tc_program(), None).unwrap();
        let cfg = EngineConfig {
            mode: EngineMode::Parallel { threads: 3 },
            budget: EvalBudget::unlimited(),
            ..EngineConfig::default()
        };
        let sat = run_program(&mut db2, &tc_program(), &cfg).unwrap();
        // The degraded run still reaches the complete, correct fixpoint.
        assert!(sat.outcome.is_complete());
        assert_eq!(sat.stats.worker_panics, 1);
        assert_eq!(sat.stats.degraded_iterations, 1);
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
    }

    #[test]
    fn persistent_panics_surface_as_worker_panic_error() {
        let _g = fault::arm(fault::FaultPlan {
            panic_mode: Some(fault::PanicMode::Always),
            ..fault::FaultPlan::default()
        });
        let before = tc_db(8);
        let mut db = before.clone();
        let cfg = EngineConfig {
            mode: EngineMode::Parallel { threads: 2 },
            budget: EvalBudget::unlimited(),
            ..EngineConfig::default()
        };
        let err = run_program(&mut db, &tc_program(), &cfg).unwrap_err();
        assert!(matches!(err, EngineError::WorkerPanic { .. }));
        // No write-back happened: the caller's database is unchanged.
        assert_eq!(db.get("A").unwrap(), before.get("A").unwrap());
        assert!(db.get("P").is_none() || db.get("P").unwrap().is_empty());
    }
}
