//! Fault injection for robustness tests: worker panics, artificial
//! slowdowns, and allocation pressure at configurable points.
//!
//! Compiled only under `cfg(test)` or the `fault-inject` feature — release
//! builds without the feature contain none of these hooks. A test arms a
//! [`FaultPlan`] with [`arm`]; the returned [`FaultGuard`] holds a global
//! serialization gate (faulty tests must not overlap, the plan is process
//! global) and disarms the plan on drop, even if the test panics.
//!
//! Decisions are made under the plan lock but the injected actions (panic,
//! sleep) run *outside* it, so an injected panic never poisons the plan
//! mutex for the next test.

use recurs_obs::{field, Obs};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// When injected worker panics fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicMode {
    /// The given worker index panics once (the first time it starts);
    /// subsequent starts of the same worker run normally. Exercises the
    /// parallel engine's single-threaded retry.
    OnceInWorker(usize),
    /// Every worker start panics, *and* the single-threaded retry panics.
    /// Exercises the end of the degradation ladder
    /// ([`crate::EngineError::WorkerPanic`]).
    Always,
}

/// One armed fault scenario.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Inject panics into shard workers (and, for [`PanicMode::Always`],
    /// the retry path).
    pub panic_mode: Option<PanicMode>,
    /// Sleep this long at every worker start (simulates a slow worker, for
    /// deadline tests).
    pub slowdown: Option<Duration>,
    /// Extra bytes reported to the engine's memory estimate (simulates
    /// allocation pressure without actually allocating).
    pub ballast_bytes: usize,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
static GATE: Mutex<()> = Mutex::new(());

fn plan_lock() -> MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `plan` for the duration of the returned guard. Tests that inject
/// faults are serialized on a global gate; the plan is disarmed when the
/// guard drops.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    *plan_lock() = Some(plan);
    FaultGuard { _gate: gate }
}

/// Serializes a non-faulty test against armed fault plans: while the
/// returned guard lives, no fault plan can be armed (and none is armed).
/// Parallel-mode tests in the same process as fault tests take this to
/// avoid absorbing another test's injected fault.
pub fn quiesce() -> FaultGuard {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    FaultGuard { _gate: gate }
}

/// RAII guard of an armed [`FaultPlan`]; see [`arm`].
#[derive(Debug)]
pub struct FaultGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *plan_lock() = None;
    }
}

/// Hook called by each shard worker as it starts an iteration's work. May
/// sleep and/or panic according to the armed plan.
pub fn worker_start(worker: usize) {
    worker_start_obs(worker, &Obs::noop());
}

/// [`worker_start`] with an observability handle: each injected action is
/// announced as a `fault.injected` trace event *before* it takes effect
/// (an injected panic unwinds, so emitting afterwards is impossible). The
/// events make injected failures distinguishable from organic ones in a
/// trace.
pub fn worker_start_obs(worker: usize, obs: &Obs) {
    let (do_panic, sleep) = {
        let mut plan = plan_lock();
        match plan.as_mut() {
            None => (false, None),
            Some(p) => {
                let do_panic = match p.panic_mode {
                    Some(PanicMode::OnceInWorker(w)) if w == worker => {
                        p.panic_mode = None; // consumed
                        true
                    }
                    Some(PanicMode::Always) => true,
                    _ => false,
                };
                (do_panic, p.slowdown)
            }
        }
    };
    if let Some(d) = sleep {
        if obs.enabled() {
            obs.event(
                "fault.injected",
                &[
                    ("kind", field::s("slowdown")),
                    ("site", field::s("worker")),
                    ("worker", field::uz(worker)),
                    ("duration_us", field::us(d)),
                ],
            );
        }
        std::thread::sleep(d);
    }
    if do_panic {
        if obs.enabled() {
            obs.event(
                "fault.injected",
                &[
                    ("kind", field::s("panic")),
                    ("site", field::s("worker")),
                    ("worker", field::uz(worker)),
                ],
            );
        }
        panic!("injected fault: worker {worker} panic");
    }
}

/// Hook called at the start of the single-threaded retry after a worker
/// panic. Panics under [`PanicMode::Always`].
pub fn retry_start() {
    retry_start_obs(&Obs::noop());
}

/// [`retry_start`] with an observability handle; see [`worker_start_obs`].
pub fn retry_start_obs(obs: &Obs) {
    let do_panic = {
        let plan = plan_lock();
        matches!(
            plan.as_ref().and_then(|p| p.panic_mode),
            Some(PanicMode::Always)
        )
    };
    if do_panic {
        if obs.enabled() {
            obs.event(
                "fault.injected",
                &[("kind", field::s("panic")), ("site", field::s("retry"))],
            );
        }
        panic!("injected fault: retry panic");
    }
}

/// Extra bytes the armed plan adds to the engine's memory estimate.
pub fn ballast_bytes() -> usize {
    plan_lock().as_ref().map_or(0, |p| p.ballast_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = arm(FaultPlan {
                ballast_bytes: 1024,
                ..FaultPlan::default()
            });
            assert_eq!(ballast_bytes(), 1024);
        }
        assert_eq!(ballast_bytes(), 0);
    }

    #[test]
    fn once_in_worker_is_consumed() {
        let _g = arm(FaultPlan {
            panic_mode: Some(PanicMode::OnceInWorker(0)),
            ..FaultPlan::default()
        });
        let first = std::panic::catch_unwind(|| worker_start(0));
        assert!(first.is_err());
        // Consumed: the same worker starts cleanly next time, and the plan
        // mutex is not poisoned.
        worker_start(0);
        worker_start(1);
    }

    #[test]
    fn always_panics_workers_and_retry() {
        let _g = arm(FaultPlan {
            panic_mode: Some(PanicMode::Always),
            ..FaultPlan::default()
        });
        assert!(std::panic::catch_unwind(|| worker_start(3)).is_err());
        assert!(std::panic::catch_unwind(retry_start).is_err());
    }

    #[test]
    fn unarmed_hooks_are_noops() {
        let _g = quiesce();
        worker_start(0);
        retry_start();
        assert_eq!(ballast_bytes(), 0);
    }
}
