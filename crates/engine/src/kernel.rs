//! Class-aware kernel dispatch.
//!
//! The paper's classification tells the engine *how much* evaluation a
//! formula actually needs, before any tuple is touched:
//!
//! | classification | kernel |
//! |----------------|--------|
//! | proven rank bound (pure permutational A2/A4, bounded B, acyclic D) | [`KernelKind::BoundedUnroll`] — run exactly `rank` recursive rounds, skip fixpoint detection |
//! | one-directional A1/A3/A5 (and stable mixes without a rank bound) | [`KernelKind::Frontier`] — semi-naive frontier BFS (the compiled `σE ∪ σA σE ∪ …` form) until the frontier dries up |
//! | everything else (C, E, F, bounded-without-proven-bound mixes) | [`KernelKind::Generic`] — plain semi-naive with fixpoint detection |
//!
//! The rank-bound check runs first: a bounded formula's strongest property
//! is that its fixpoint arrives at a *statically known* iteration, which
//! dominates any frontier scheduling.

use crate::stats::KernelKind;
use recurs_core::Classification;

/// Selects the kernel for a classified linear recursive rule.
pub fn select_kernel(classification: &Classification) -> KernelKind {
    if let Some(rank) = classification.rank_bound() {
        return KernelKind::BoundedUnroll { rank };
    }
    if classification.is_transformable_to_stable() {
        return KernelKind::Frontier;
    }
    KernelKind::Generic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_linear, EngineConfig};
    use recurs_core::FormulaClass;
    use recurs_core::OneDirectionalSubclass as Sub;
    use recurs_datalog::database::Database;
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::parser::{parse_program, parse_rule};
    use recurs_datalog::relation::{tuple_u64, Relation};
    use recurs_datalog::rule::LinearRecursion;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn classify(src: &str) -> Classification {
        Classification::of(&parse_rule(src).unwrap())
    }

    /// The paper's s3 — class A1 (all unit rotational): frontier kernel.
    #[test]
    fn a1_selects_frontier() {
        let c = classify("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        assert_eq!(c.class, FormulaClass::OneDirectional(Sub::A1));
        assert_eq!(select_kernel(&c), KernelKind::Frontier);
    }

    /// The paper's s4a — class A3 (non-unit rotational): frontier kernel.
    #[test]
    fn a3_selects_frontier() {
        let c = classify("P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).");
        assert_eq!(c.class, FormulaClass::OneDirectional(Sub::A3));
        assert_eq!(select_kernel(&c), KernelKind::Frontier);
    }

    /// Transitive closure — class A5 (A1 + A2 mix), one-directional:
    /// frontier kernel.
    #[test]
    fn transitive_closure_selects_frontier() {
        let c = classify("P(x, y) :- A(x, z), P(z, y).");
        assert_eq!(c.class, FormulaClass::OneDirectional(Sub::A5));
        assert_eq!(select_kernel(&c), KernelKind::Frontier);
    }

    /// A pure A2 formula has rank bound 0: bounded unrolling, zero
    /// recursive rounds.
    #[test]
    fn a2_selects_bounded_unroll() {
        let c = classify("P(x, y) :- A(x), B(y), P(x, y).");
        assert_eq!(c.class, FormulaClass::OneDirectional(Sub::A2));
        assert_eq!(select_kernel(&c), KernelKind::BoundedUnroll { rank: 0 });
    }

    /// The paper's s5 — class A4 (pure rotation permutation), rank bound
    /// lcm(3) − 1 = 2: bounded unrolling.
    #[test]
    fn a4_selects_bounded_unroll() {
        let c = classify("P(x, y, z) :- P(y, z, x).");
        assert_eq!(c.class, FormulaClass::OneDirectional(Sub::A4));
        assert_eq!(select_kernel(&c), KernelKind::BoundedUnroll { rank: 2 });
    }

    /// The paper's s8 — class B, proven rank bound 2: bounded unrolling.
    #[test]
    fn class_b_selects_bounded_unroll() {
        let c = classify("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).");
        assert_eq!(c.class, FormulaClass::Bounded);
        assert_eq!(select_kernel(&c), KernelKind::BoundedUnroll { rank: 2 });
    }

    /// The paper's s9 — class C (unbounded): generic fallback.
    #[test]
    fn class_c_selects_generic() {
        let c = classify("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).");
        assert_eq!(c.class, FormulaClass::Unbounded);
        assert_eq!(select_kernel(&c), KernelKind::Generic);
    }

    /// The bounded-unroll kernel must stop at the rank *and* still agree
    /// with the oracle fixpoint (completeness is the theorems' claim; this
    /// checks we honor it end to end, without a fixpoint-detection round).
    #[test]
    fn bounded_unroll_agrees_with_oracle_and_skips_detection() {
        let lr: LinearRecursion =
            validate_with_generic_exit(&parse_program("P(x, y, z) :- P(y, z, x).").unwrap())
                .unwrap();
        let exit_pred = lr.exit_rules[0].body[0].predicate;
        let mut db1 = Database::new();
        db1.insert_relation(
            exit_pred,
            Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([4, 4, 5])]),
        );
        let mut db2 = db1.clone();
        semi_naive(&mut db1, &lr.to_program(), None).unwrap();
        let sat = run_linear(&mut db2, &lr, &EngineConfig::default()).unwrap();
        assert_eq!(
            sat.stats.kernel,
            Some(KernelKind::BoundedUnroll { rank: 2 })
        );
        assert_eq!(db1.get("P").unwrap(), db2.get("P").unwrap());
        assert_eq!(db2.get("P").unwrap().len(), 6); // all three rotations of each
                                                    // A rank-bound stop is completeness, not truncation.
        assert!(sat.outcome.is_complete());
        // Seed round + exactly rank recursive rounds, no trailing
        // fixpoint-detection iteration (the oracle needs one more).
        assert_eq!(sat.stats.iteration_count(), 3);
    }
}
