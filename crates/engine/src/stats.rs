//! Execution statistics: what the engine did, per iteration and in total.

use crate::storage::IndexCounters;
use std::fmt;
use std::time::Duration;

/// Which class-aware kernel the dispatcher selected (see [`crate::kernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Frontier BFS for one-directional formulas (classes A1/A3/A5 and the
    /// stable A2 cases that still need fixpoint detection): semi-naive with
    /// the delta as the expanding frontier, run until the frontier dries up.
    Frontier,
    /// Bounded unrolling for formulas with a *proven* rank bound (pure
    /// permutational A2/A4, bounded B, acyclic D): apply the recursive rule
    /// exactly `rank` times and stop — no trailing empty iteration to detect
    /// the fixpoint.
    BoundedUnroll {
        /// The proven rank bound (number of recursive applications).
        rank: u64,
    },
    /// Generic semi-naive fallback for everything else (classes C/E/F and
    /// arbitrary multi-rule programs).
    Generic,
}

impl KernelKind {
    /// Short label for reports, e.g. `"frontier"`, `"unroll(3)"`.
    pub fn label(&self) -> String {
        match self {
            KernelKind::Frontier => "frontier".to_string(),
            KernelKind::BoundedUnroll { rank } => format!("unroll({rank})"),
            KernelKind::Generic => "generic".to_string(),
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl serde::Serialize for KernelKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::string(self.label())
    }
}

/// One fixpoint iteration as the engine saw it.
#[derive(Debug, Clone, Default)]
pub struct IterationStats {
    /// Tuples in the incoming delta (0 for the seeding iteration).
    pub delta_in: usize,
    /// Head tuples produced by rule evaluation (before deduplication).
    pub derived: usize,
    /// Tuples that were genuinely new (the outgoing delta).
    pub new_tuples: usize,
    /// Wall-clock time of the iteration.
    pub duration: Duration,
    /// Summed busy time of the workers that ran this iteration (equals
    /// `duration` in single-threaded mode, up to `workers × duration` when
    /// parallel).
    pub busy: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl serde::Serialize for IterationStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("delta_in", self.delta_in.to_value()),
            ("derived", self.derived.to_value()),
            ("new_tuples", self.new_tuples.to_value()),
            ("duration_us", (self.duration.as_micros() as u64).to_value()),
            ("busy_us", (self.busy.as_micros() as u64).to_value()),
            ("workers", self.workers.to_value()),
        ])
    }
}

/// Statistics of an engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// The kernel the dispatcher selected.
    pub kernel: Option<KernelKind>,
    /// Worker threads the configuration asked for.
    pub threads: usize,
    /// Per-iteration detail, in order (iteration 0 is the non-recursive
    /// seeding round).
    pub iterations: Vec<IterationStats>,
    /// Total new tuples added to IDB relations.
    pub tuples_derived: usize,
    /// Index builds/updates performed by the storage layer.
    pub index: IndexCounters,
    /// Hash-index probes issued by join steps.
    pub probes: u64,
    /// Tuples returned by those probes (the "hits").
    pub probe_hits: u64,
    /// Shard-worker panics caught and contained by the driver.
    pub worker_panics: u64,
    /// Iterations that fell back from parallel to single-threaded indexed
    /// execution after a contained worker panic.
    pub degraded_iterations: u64,
}

impl EngineStats {
    /// Number of iterations run (including the seeding round).
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Total wall-clock time across iterations.
    pub fn total_duration(&self) -> Duration {
        self.iterations.iter().map(|i| i.duration).sum()
    }

    /// Fraction of available worker time spent busy, in `0.0..=1.0`.
    /// With one worker this is 1.0 by construction; with more it measures
    /// how evenly the delta sharding spread the work.
    pub fn worker_utilization(&self) -> f64 {
        let mut available = Duration::ZERO;
        let mut busy = Duration::ZERO;
        for it in &self.iterations {
            available += it.duration * u32::try_from(it.workers.max(1)).unwrap_or(1);
            busy += it.busy;
        }
        if available.is_zero() {
            return 1.0;
        }
        (busy.as_secs_f64() / available.as_secs_f64()).min(1.0)
    }

    /// One-line summary for CLI output.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "kernel={} iterations={} derived={} probes={} hits={} index_builds={} index_updates={} utilization={:.0}%",
            self.kernel.map_or_else(|| "?".to_string(), |k| k.label()),
            self.iteration_count(),
            self.tuples_derived,
            self.probes,
            self.probe_hits,
            self.index.builds,
            self.index.updates,
            self.worker_utilization() * 100.0
        );
        if self.worker_panics > 0 {
            line.push_str(&format!(
                " worker_panics={} degraded_iterations={}",
                self.worker_panics, self.degraded_iterations
            ));
        }
        line
    }
}

impl serde::Serialize for EngineStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("kernel", self.kernel.to_value()),
            ("threads", self.threads.to_value()),
            ("iterations", self.iterations.to_value()),
            ("iteration_count", self.iteration_count().to_value()),
            ("tuples_derived", self.tuples_derived.to_value()),
            (
                "total_duration_us",
                (self.total_duration().as_micros() as u64).to_value(),
            ),
            ("index_builds", self.index.builds.to_value()),
            ("index_updates", self.index.updates.to_value()),
            ("probes", self.probes.to_value()),
            ("probe_hits", self.probe_hits.to_value()),
            ("worker_panics", self.worker_panics.to_value()),
            ("degraded_iterations", self.degraded_iterations.to_value()),
            ("worker_utilization", self.worker_utilization().to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_labels() {
        assert_eq!(KernelKind::Frontier.label(), "frontier");
        assert_eq!(KernelKind::BoundedUnroll { rank: 3 }.label(), "unroll(3)");
        assert_eq!(KernelKind::Generic.to_string(), "generic");
    }

    #[test]
    fn utilization_is_one_for_single_worker() {
        let mut s = EngineStats::default();
        s.iterations.push(IterationStats {
            duration: Duration::from_millis(10),
            busy: Duration::from_millis(10),
            workers: 1,
            ..IterationStats::default()
        });
        assert!((s.worker_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_reflects_idle_workers() {
        let mut s = EngineStats::default();
        s.iterations.push(IterationStats {
            duration: Duration::from_millis(10),
            busy: Duration::from_millis(10), // one of two workers idle
            workers: 2,
            ..IterationStats::default()
        });
        assert!((s.worker_utilization() - 0.5).abs() < 0.01);
    }

    #[test]
    fn summary_mentions_kernel_and_counts() {
        let s = EngineStats {
            kernel: Some(KernelKind::Frontier),
            tuples_derived: 42,
            ..EngineStats::default()
        };
        let line = s.summary();
        assert!(line.contains("kernel=frontier"));
        assert!(line.contains("derived=42"));
    }
}
