//! Rule compilation: a conjunctive body becomes a fixed join pipeline whose
//! steps probe the persistent indexes of [`crate::storage::EngineDb`].
//!
//! Compilation happens once per (rule, delta position) pair, before the
//! fixpoint loop starts. The pipeline fixes the atom order (via the
//! selection-first heuristic of `recurs_datalog::order`), the index each
//! step probes, and the columns each step appends — so the per-iteration
//! work is pure hash probing with no planning, cloning, or re-indexing.

use crate::error::EngineError;
use crate::storage::EngineDb;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::govern::{Governor, TruncationReason};
use recurs_datalog::order::order_atoms;
use recurs_datalog::relation::Tuple;
use recurs_datalog::rule::Rule;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::term::{Term, Value};
use std::collections::HashMap;

/// A partial binding row flowing through the pipeline: one value per
/// distinct variable bound so far, in first-occurrence order.
pub type Row = Vec<Value>;

/// Probe/hit counters for one pipeline execution (merged into
/// [`crate::EngineStats`] by the driver; workers keep their own and the
/// driver sums them, so the shared storage stays read-only during joins).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeCounters {
    /// Index probes issued.
    pub probes: u64,
    /// Tuples the probes returned.
    pub hits: u64,
}

impl ProbeCounters {
    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: ProbeCounters) {
        self.probes += other.probes;
        self.hits += other.hits;
    }
}

/// Where a join-key component comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyPart {
    /// A column of the accumulated row (a variable bound earlier).
    Acc(usize),
    /// A constant from the rule text.
    Const(Value),
}

/// One join step: probe `pred`'s index on `index_cols` with a key assembled
/// from the accumulated row and the rule's constants, filter by
/// within-atom equalities, and append the new-variable columns.
#[derive(Debug, Clone)]
struct JoinStep {
    pred: Symbol,
    /// Columns of the stored tuple forming the index key. Empty means no
    /// variable is shared with the prefix and no constant restricts the
    /// atom: a full scan (Cartesian extension).
    index_cols: Vec<usize>,
    /// Key component per index column.
    key: Vec<KeyPart>,
    /// Within-atom repeated-variable checks `tuple[a] == tuple[b]` not
    /// already enforced by the key.
    eq_checks: Vec<(usize, usize)>,
    /// Tuple columns appended to the row (first occurrences of new vars).
    append_cols: Vec<usize>,
}

/// How the seed atom (the first atom of the pipeline) turns tuples into
/// initial rows.
#[derive(Debug, Clone)]
pub struct SeedSpec {
    /// The seed atom's predicate.
    pub pred: Symbol,
    /// True if the seed rows come from the current delta batch rather than
    /// the stored relation (semi-naive differentiation).
    pub from_delta: bool,
    /// Constant selections `tuple[col] == value`.
    const_checks: Vec<(usize, Value)>,
    /// Repeated-variable selections `tuple[a] == tuple[b]`.
    eq_checks: Vec<(usize, usize)>,
    /// Columns kept (first occurrence of each variable).
    keep_cols: Vec<usize>,
}

impl SeedSpec {
    /// Filters and projects raw tuples into pipeline rows.
    pub fn rows<'a>(&self, tuples: impl Iterator<Item = &'a Tuple>) -> Vec<Row> {
        tuples
            .filter(|t| {
                self.const_checks.iter().all(|&(c, v)| t[c] == v)
                    && self.eq_checks.iter().all(|&(a, b)| t[a] == t[b])
            })
            .map(|t| self.keep_cols.iter().map(|&c| t[c]).collect())
            .collect()
    }
}

/// One head column: either copied from the row or a constant.
#[derive(Debug, Clone, Copy)]
enum HeadCol {
    Bound(usize),
    Fixed(Value),
}

/// A rule compiled into a seed + join-step pipeline producing head tuples.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The head predicate tuples are derived into.
    pub head_pred: Symbol,
    /// The head arity.
    pub head_arity: usize,
    /// The seed specification; `None` for an empty body (a ground head).
    pub seed: Option<SeedSpec>,
    steps: Vec<JoinStep>,
    head: Vec<HeadCol>,
    /// Acc columns the parallel driver shards seed rows by: the key columns
    /// of the first join step (empty → shard by the whole row).
    shard_cols: Vec<usize>,
}

impl CompiledRule {
    /// Compiles `rule` with an optional differentiated delta position. The
    /// delta atom (if any) is pinned first in the join order; `db` supplies
    /// relation sizes for the ordering heuristic only.
    pub fn compile(
        rule: &Rule,
        delta_pos: Option<usize>,
        db: &Database,
    ) -> Result<CompiledRule, DatalogError> {
        let order = order_atoms(&rule.body, db, delta_pos);
        let mut acc_col: HashMap<Symbol, usize> = HashMap::new();
        let mut acc_len = 0usize;

        let mut seed: Option<SeedSpec> = None;
        let mut steps: Vec<JoinStep> = Vec::new();

        for (rank, &pos) in order.iter().enumerate() {
            let atom = &rule.body[pos];
            if rank == 0 {
                // Seed atom: selection + projection, no probing.
                let mut const_checks = Vec::new();
                let mut eq_checks = Vec::new();
                let mut keep_cols = Vec::new();
                let mut first: HashMap<Symbol, usize> = HashMap::new();
                for (i, term) in atom.terms.iter().enumerate() {
                    match term {
                        Term::Const(c) => const_checks.push((i, *c)),
                        Term::Var(v) => match first.get(v) {
                            Some(&j) => eq_checks.push((j, i)),
                            None => {
                                first.insert(*v, i);
                                keep_cols.push(i);
                                acc_col.insert(*v, acc_len);
                                acc_len += 1;
                            }
                        },
                    }
                }
                seed = Some(SeedSpec {
                    pred: atom.predicate,
                    from_delta: delta_pos == Some(pos),
                    const_checks,
                    eq_checks,
                    keep_cols,
                });
                continue;
            }
            // Join step: shared variables and constants become the index
            // key; repeated new variables become residual equality checks;
            // new variables extend the row.
            let mut index_cols = Vec::new();
            let mut key = Vec::new();
            let mut eq_checks = Vec::new();
            let mut append_cols = Vec::new();
            let mut first: HashMap<Symbol, usize> = HashMap::new();
            let mut pending_new: Vec<Symbol> = Vec::new();
            for (i, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        index_cols.push(i);
                        key.push(KeyPart::Const(*c));
                    }
                    Term::Var(v) => {
                        if let Some(&j) = first.get(v) {
                            eq_checks.push((j, i));
                            continue;
                        }
                        first.insert(*v, i);
                        if let Some(&a) = acc_col.get(v) {
                            index_cols.push(i);
                            key.push(KeyPart::Acc(a));
                        } else {
                            append_cols.push(i);
                            pending_new.push(*v);
                        }
                    }
                }
            }
            for v in pending_new {
                acc_col.insert(v, acc_len);
                acc_len += 1;
            }
            steps.push(JoinStep {
                pred: atom.predicate,
                index_cols,
                key,
                eq_checks,
                append_cols,
            });
        }

        let head = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => acc_col
                    .get(v)
                    .copied()
                    .map(HeadCol::Bound)
                    .ok_or(DatalogError::UnboundVariable(*v)),
                Term::Const(c) => Ok(HeadCol::Fixed(*c)),
            })
            .collect::<Result<Vec<_>, _>>()?;

        let shard_cols = steps
            .first()
            .map(|s| {
                s.key
                    .iter()
                    .filter_map(|k| match k {
                        KeyPart::Acc(a) => Some(*a),
                        KeyPart::Const(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default();

        Ok(CompiledRule {
            head_pred: rule.head.predicate,
            head_arity: rule.head.arity(),
            seed,
            steps,
            head,
            shard_cols,
        })
    }

    /// The `(predicate, key columns)` indexes the pipeline probes. The
    /// driver ensures each exists before the fixpoint starts.
    pub fn required_indexes(&self) -> impl Iterator<Item = (Symbol, &[usize])> {
        self.steps
            .iter()
            .filter(|s| !s.index_cols.is_empty())
            .map(|s| (s.pred, s.index_cols.as_slice()))
    }

    /// Columns of the seed row that determine which worker shard a row goes
    /// to (the first join step's key — rows probing the same key land on
    /// the same worker, keeping per-worker probe locality).
    pub fn shard_cols(&self) -> &[usize] {
        &self.shard_cols
    }

    /// Runs the pipeline over the given seed rows, appending derived head
    /// tuples to `out` (with duplicates; the driver dedupes on insert).
    ///
    /// If a `governor` is given, its cheap trip conditions (cancellation,
    /// deadline) are polled every few hundred rows; a trip stops the
    /// pipeline and returns the reason. Head tuples already appended to
    /// `out` by earlier pipelines remain valid (every derived tuple is a
    /// true consequence — an early stop only omits tuples).
    pub fn execute(
        &self,
        db: &EngineDb,
        seed_rows: Vec<Row>,
        counters: &mut ProbeCounters,
        governor: Option<&Governor>,
        out: &mut Vec<Tuple>,
    ) -> Result<Option<TruncationReason>, EngineError> {
        // Polling cadence: cheap enough to keep probe throughput, frequent
        // enough to stop a blown-up iteration promptly.
        const POLL_STRIDE: usize = 512;
        let mut poll_countdown = POLL_STRIDE;
        let mut poll = move || -> Option<TruncationReason> {
            let gov = governor?;
            poll_countdown -= 1;
            if poll_countdown == 0 {
                poll_countdown = POLL_STRIDE;
                gov.poll()
            } else {
                None
            }
        };
        let mut rows = seed_rows;
        for step in &self.steps {
            let Some(rel) = db.get(step.pred) else {
                return Err(EngineError::Internal(
                    "compiled rule references a relation the driver never loaded",
                ));
            };
            let mut next: Vec<Row> = Vec::new();
            if step.index_cols.is_empty() {
                // Cartesian extension: no shared variable, no constant.
                for row in &rows {
                    if let Some(reason) = poll() {
                        return Ok(Some(reason));
                    }
                    for t in rel.iter() {
                        if step.eq_checks.iter().all(|&(a, b)| t[a] == t[b]) {
                            let mut r = row.clone();
                            r.extend(step.append_cols.iter().map(|&c| t[c]));
                            next.push(r);
                        }
                    }
                }
            } else {
                let mut key: Vec<Value> = Vec::with_capacity(step.key.len());
                for row in &rows {
                    if let Some(reason) = poll() {
                        return Ok(Some(reason));
                    }
                    key.clear();
                    key.extend(step.key.iter().map(|k| match k {
                        KeyPart::Acc(a) => row[*a],
                        KeyPart::Const(c) => *c,
                    }));
                    counters.probes += 1;
                    let Some(ids) = rel.probe(&step.index_cols, &key) else {
                        return Err(EngineError::Internal(
                            "compiled rule probed an index the driver never ensured",
                        ));
                    };
                    counters.hits += ids.len() as u64;
                    for &id in ids {
                        let t = rel.tuple(id);
                        if step.eq_checks.iter().all(|&(a, b)| t[a] == t[b]) {
                            let mut r = row.clone();
                            r.extend(step.append_cols.iter().map(|&c| t[c]));
                            next.push(r);
                        }
                    }
                }
            }
            rows = next;
            if rows.is_empty() {
                return Ok(None);
            }
        }
        out.extend(rows.iter().map(|row| {
            self.head
                .iter()
                .map(|c| match c {
                    HeadCol::Bound(i) => row[*i],
                    HeadCol::Fixed(v) => *v,
                })
                .collect::<Tuple>()
        }));
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_rule;
    use recurs_datalog::relation::Relation;

    fn db_with(rels: &[(&str, Relation)]) -> Database {
        let mut db = Database::new();
        for (name, rel) in rels {
            db.insert_relation(*name, rel.clone());
        }
        db
    }

    fn engine_db(db: &Database) -> EngineDb {
        let mut e = EngineDb::new();
        for (name, rel) in db.iter() {
            e.load(name, rel);
        }
        e
    }

    fn run(cr: &CompiledRule, edb: &EngineDb) -> Vec<Tuple> {
        let seed = cr.seed.as_ref().unwrap();
        let rows = seed.rows(edb.get(seed.pred).unwrap().iter());
        let mut out = Vec::new();
        let mut counters = ProbeCounters::default();
        cr.execute(edb, rows, &mut counters, None, &mut out)
            .unwrap();
        out
    }

    #[test]
    fn two_atom_join_produces_composition() {
        let rule = parse_rule("Q(x, z) :- A(x, y), B(y, z).").unwrap();
        let db = db_with(&[
            ("A", Relation::from_pairs([(1, 2), (2, 3)])),
            ("B", Relation::from_pairs([(2, 5), (3, 6)])),
        ]);
        let cr = CompiledRule::compile(&rule, None, &db).unwrap();
        let mut edb = engine_db(&db);
        for (pred, cols) in cr.required_indexes() {
            let cols = cols.to_vec();
            edb.get_mut(pred).unwrap().ensure_index(&cols);
        }
        let mut out = run(&cr, &edb);
        out.sort();
        let got: Vec<Vec<&str>> = out
            .iter()
            .map(|t| t.iter().map(|v| v.as_str()).collect())
            .collect();
        assert_eq!(got, vec![vec!["1", "5"], vec!["2", "6"]]);
    }

    #[test]
    fn constants_fold_into_the_index_key() {
        let rule = parse_rule("Q(y) :- A(x, y), B('7', x).").unwrap();
        let db = db_with(&[
            ("A", Relation::from_pairs([(1, 10), (2, 20)])),
            ("B", Relation::from_pairs([(7, 1), (8, 2)])),
        ]);
        let cr = CompiledRule::compile(&rule, None, &db).unwrap();
        // The ordering heuristic leads with the constant-bearing B atom, so
        // the A step probes an index that includes no constant; either way
        // every required index must be declared.
        let mut edb = engine_db(&db);
        for (pred, cols) in cr.required_indexes() {
            let cols = cols.to_vec();
            edb.get_mut(pred).unwrap().ensure_index(&cols);
        }
        let out = run(&cr, &edb);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0].as_str(), "10");
    }

    #[test]
    fn repeated_variables_filter_within_atom() {
        let rule = parse_rule("Q(x) :- A(x, x).").unwrap();
        let db = db_with(&[("A", Relation::from_pairs([(1, 1), (1, 2), (3, 3)]))]);
        let cr = CompiledRule::compile(&rule, None, &db).unwrap();
        let edb = engine_db(&db);
        let mut out = run(&cr, &edb);
        out.sort();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cartesian_step_scans() {
        let rule = parse_rule("R(x, y) :- A(x, u), B(y, v).").unwrap();
        let db = db_with(&[
            ("A", Relation::from_pairs([(1, 10), (2, 20)])),
            ("B", Relation::from_pairs([(7, 70)])),
        ]);
        let cr = CompiledRule::compile(&rule, None, &db).unwrap();
        let edb = engine_db(&db);
        let out = run(&cr, &edb);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unbound_head_variable_is_an_error() {
        let rule = parse_rule("Q(w) :- A(x, y).").unwrap();
        let db = db_with(&[("A", Relation::from_pairs([(1, 2)]))]);
        assert!(matches!(
            CompiledRule::compile(&rule, None, &db),
            Err(DatalogError::UnboundVariable(_))
        ));
    }

    #[test]
    fn delta_position_pins_the_seed() {
        let rule = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let db = db_with(&[("A", Relation::from_pairs([(1, 2)]))]);
        let cr = CompiledRule::compile(&rule, Some(1), &db).unwrap();
        let seed = cr.seed.as_ref().unwrap();
        assert_eq!(seed.pred, Symbol::intern("P"));
        assert!(seed.from_delta);
        // The single join step probes A on its second column (z).
        let idx: Vec<_> = cr.required_indexes().collect();
        assert_eq!(idx, vec![(Symbol::intern("A"), &[1usize][..])]);
        // Sharding follows the first step's key (acc column of z).
        assert_eq!(cr.shard_cols(), &[0]);
    }
}
