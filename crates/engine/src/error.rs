//! Error taxonomy and the typed result of a governed engine run.

use crate::stats::EngineStats;
use recurs_datalog::error::DatalogError;
use recurs_datalog::govern::Outcome;
use std::fmt;

/// Why an engine run failed (as opposed to stopping early: budget-exhausted
/// runs are *not* errors — they return [`Saturation`] with
/// [`Outcome::Truncated`]).
#[derive(Debug)]
pub enum EngineError {
    /// A substrate error from the Datalog layer: unknown relation, arity
    /// mismatch, unbound head variable.
    Datalog(DatalogError),
    /// A shard worker panicked and the single-threaded retry panicked too
    /// (the degradation ladder is exhausted). The database write-back did
    /// not happen; the caller's database is unchanged.
    WorkerPanic {
        /// The fixpoint iteration (counting the seeding round as 1) in
        /// which the panic occurred.
        iteration: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// An engine invariant was violated (e.g. a compiled rule referenced a
    /// relation or index the setup phase failed to prepare). Always a bug in
    /// the engine, never user error.
    Internal(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Datalog(e) => write!(f, "{e}"),
            EngineError::WorkerPanic { iteration, message } => {
                write!(
                    f,
                    "engine worker panicked in iteration {iteration}: {message}"
                )
            }
            EngineError::Internal(msg) => write!(f, "internal engine invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Datalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatalogError> for EngineError {
    fn from(e: DatalogError) -> EngineError {
        EngineError::Datalog(e)
    }
}

/// The typed result of a successful engine run: how it ended, and what it
/// did. `outcome` is [`Outcome::Complete`] when the fixpoint was reached (or
/// a proven rank bound made further work provably unproductive) and
/// [`Outcome::Truncated`] when the budget stopped the run early — in which
/// case the written-back IDB relations are a sound under-approximation of
/// the fixpoint.
#[derive(Debug, Clone)]
pub struct Saturation {
    /// How the run ended.
    pub outcome: Outcome,
    /// What the run did.
    pub stats: EngineStats,
}

impl serde::Serialize for Saturation {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("outcome", self.outcome.to_value()),
            ("stats", self.stats.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::symbol::Symbol;

    #[test]
    fn display_formats_each_variant() {
        let e = EngineError::Datalog(DatalogError::UnknownRelation(Symbol::intern("Nope")));
        assert!(e.to_string().contains("Nope"));
        let e = EngineError::WorkerPanic {
            iteration: 3,
            message: "boom".to_string(),
        };
        assert!(e.to_string().contains("iteration 3"));
        assert!(e.to_string().contains("boom"));
        let e = EngineError::Internal("missing index");
        assert!(e.to_string().contains("missing index"));
    }

    #[test]
    fn datalog_errors_convert() {
        let d = DatalogError::UnknownRelation(Symbol::intern("R"));
        let e: EngineError = d.into();
        assert!(matches!(e, EngineError::Datalog(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
