//! Indexed tuple storage for the execution engine.
//!
//! The oracle evaluator (`recurs_datalog::eval`) rebuilds a hash index on the
//! inner side of every join, every fixpoint iteration. [`IndexedRelation`]
//! instead keeps *persistent* indexes: each is built once when a compiled
//! rule first asks for it, and afterwards maintained incrementally as derived
//! tuples are inserted. Across a long fixpoint this turns the per-iteration
//! cost of indexing from O(|relation|) into O(|delta|).

use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::symbol::Symbol;
use recurs_datalog::term::Value;
use std::collections::{BTreeMap, HashMap};

/// A hash index: key columns → (key values → ids of matching tuples).
type Index = HashMap<Box<[Value]>, Vec<u32>>;

/// Counters describing index maintenance work, for [`crate::EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCounters {
    /// Full index constructions (one per distinct key-column set).
    pub builds: u64,
    /// Incremental key insertions performed while merging deltas.
    pub updates: u64,
}

impl IndexCounters {
    fn absorb(&mut self, other: IndexCounters) {
        self.builds += other.builds;
        self.updates += other.updates;
    }
}

/// A relation stored as a tuple arena plus persistent hash indexes on the
/// column sets the compiled rules join on.
///
/// Tuple ids are dense `u32`s in insertion order; indexes store ids, not
/// tuple copies, so a tuple is owned exactly once however many indexes
/// cover it. Removal (used by incremental view maintenance) tombstones the
/// arena slot and unlinks the id from every index; arena slots are not
/// reused, so ids stay stable for the lifetime of the relation.
#[derive(Debug, Clone, Default)]
pub struct IndexedRelation {
    arity: usize,
    tuples: Vec<Option<Tuple>>,
    ids: HashMap<Tuple, u32>,
    indexes: HashMap<Vec<usize>, Index>,
    counters: IndexCounters,
}

impl IndexedRelation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> IndexedRelation {
        IndexedRelation {
            arity,
            ..IndexedRelation::default()
        }
    }

    /// Copies a plain [`Relation`] into indexed storage.
    pub fn from_relation(rel: &Relation) -> IndexedRelation {
        let mut r = IndexedRelation::new(rel.arity());
        for t in rel.iter() {
            r.insert(t.clone());
        }
        r
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        self.ids.contains_key(t)
    }

    /// Inserts a tuple, updating every existing index. Returns true if the
    /// tuple was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.len(),
            self.arity,
            "tuple width {} does not match relation arity {}",
            t.len(),
            self.arity
        );
        if self.ids.contains_key(&t) {
            return false;
        }
        let Ok(id) = u32::try_from(self.tuples.len()) else {
            // Dense u32 ids are a storage invariant; 2^32 arena slots
            // exceeds every budget this engine runs under.
            panic!("IndexedRelation overflow: more than u32::MAX tuples");
        };
        for (cols, index) in &mut self.indexes {
            let key: Box<[Value]> = cols.iter().map(|&c| t[c]).collect();
            index.entry(key).or_default().push(id);
            self.counters.updates += 1;
        }
        self.ids.insert(t.clone(), id);
        self.tuples.push(Some(t));
        true
    }

    /// Removes a tuple, unlinking its id from every existing index and
    /// tombstoning its arena slot. Returns true if the tuple was present.
    pub fn remove(&mut self, t: &[Value]) -> bool {
        let Some(id) = self.ids.remove(t) else {
            return false;
        };
        for (cols, index) in &mut self.indexes {
            let key: Box<[Value]> = cols.iter().map(|&c| t[c]).collect();
            if let Some(bucket) = index.get_mut(&key) {
                bucket.retain(|&i| i != id);
                if bucket.is_empty() {
                    index.remove(&key);
                }
            }
            self.counters.updates += 1;
        }
        self.tuples[id as usize] = None;
        true
    }

    /// Makes sure an index on `cols` exists, building it from the current
    /// tuples if not. Idempotent; subsequent inserts keep it fresh.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        if self.indexes.contains_key(cols) {
            return;
        }
        let mut index: Index = HashMap::new();
        for (id, t) in self.tuples.iter().enumerate() {
            let Some(t) = t else { continue };
            let key: Box<[Value]> = cols.iter().map(|&c| t[c]).collect();
            index.entry(key).or_default().push(id as u32);
        }
        self.indexes.insert(cols.to_vec(), index);
        self.counters.builds += 1;
    }

    /// The ids of tuples whose `cols` projection equals `key`. Returns
    /// `None` if no index on `cols` exists (compiled rules declare their
    /// indexes up front, so the driver treats that as an internal error);
    /// a present index with no matching key returns `Some(&[])`.
    pub fn probe(&self, cols: &[usize], key: &[Value]) -> Option<&[u32]> {
        let index = self.indexes.get(cols)?;
        Some(index.get(key).map_or(&[], Vec::as_slice))
    }

    /// The tuple with the given id. Ids only reach callers through `probe`,
    /// which never returns a removed tuple's id.
    pub fn tuple(&self, id: u32) -> &Tuple {
        match &self.tuples[id as usize] {
            Some(t) => t,
            None => unreachable!("probe returned the id of a removed tuple"),
        }
    }

    /// Iterates over all live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter().flatten()
    }

    /// Copies the storage back into a plain [`Relation`].
    pub fn to_relation(&self) -> Relation {
        Relation::from_tuples(self.arity, self.iter().cloned())
    }

    /// Index-maintenance counters so far.
    pub fn counters(&self) -> IndexCounters {
        self.counters
    }

    /// Number of distinct indexes currently maintained.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Approximate working-set bytes: tuple arena plus the dedup set (each
    /// owns a copy of every tuple) plus index entries. An estimate for
    /// budget enforcement, not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let per_tuple = self.arity * std::mem::size_of::<Value>() + 48;
        let mut bytes = 2 * self.tuples.len() * per_tuple;
        for (cols, index) in &self.indexes {
            bytes += index.len() * (cols.len() * std::mem::size_of::<Value>() + 48);
            bytes += self.tuples.len() * std::mem::size_of::<u32>();
        }
        bytes
    }
}

/// The engine's working database: predicate → indexed relation.
///
/// Built once from a [`recurs_datalog::database::Database`] snapshot; the
/// fixpoint driver reads EDB relations and reads/extends IDB relations
/// through it, then writes the IDB results back.
#[derive(Debug, Clone, Default)]
pub struct EngineDb {
    rels: BTreeMap<Symbol, IndexedRelation>,
}

impl EngineDb {
    /// An empty store.
    pub fn new() -> EngineDb {
        EngineDb::default()
    }

    /// Registers `pred` as an empty relation of the given arity if absent.
    pub fn declare(&mut self, pred: Symbol, arity: usize) {
        self.rels
            .entry(pred)
            .or_insert_with(|| IndexedRelation::new(arity));
    }

    /// Copies a relation into the store (replacing any existing one).
    pub fn load(&mut self, pred: Symbol, rel: &Relation) {
        self.rels.insert(pred, IndexedRelation::from_relation(rel));
    }

    /// Looks up a relation.
    pub fn get(&self, pred: Symbol) -> Option<&IndexedRelation> {
        self.rels.get(&pred)
    }

    /// Looks up a relation mutably.
    pub fn get_mut(&mut self, pred: Symbol) -> Option<&mut IndexedRelation> {
        self.rels.get_mut(&pred)
    }

    /// Sums the index counters of every relation.
    pub fn index_counters(&self) -> IndexCounters {
        let mut total = IndexCounters::default();
        for rel in self.rels.values() {
            total.absorb(rel.counters());
        }
        total
    }

    /// Total number of persistent indexes across all relations.
    pub fn index_count(&self) -> usize {
        self.rels.values().map(IndexedRelation::index_count).sum()
    }

    /// Sums [`IndexedRelation::approx_bytes`] across all relations.
    pub fn approx_bytes(&self) -> usize {
        self.rels.values().map(IndexedRelation::approx_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::relation::tuple_u64;

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn insert_dedupes_and_counts() {
        let mut r = IndexedRelation::new(2);
        assert!(r.insert(tuple_u64([1, 2])));
        assert!(!r.insert(tuple_u64([1, 2])));
        assert!(r.insert(tuple_u64([2, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v(1), v(2)]));
        assert!(!r.contains(&[v(9), v(9)]));
    }

    #[test]
    fn ensure_index_then_probe() {
        let mut r = IndexedRelation::from_relation(&Relation::from_pairs([(1, 2), (1, 3), (2, 3)]));
        r.ensure_index(&[0]);
        assert_eq!(r.probe(&[0], &[v(1)]).unwrap().len(), 2);
        assert_eq!(r.probe(&[0], &[v(2)]).unwrap().len(), 1);
        assert_eq!(r.probe(&[0], &[v(7)]).unwrap().len(), 0);
        // No index on column 1 was ever ensured.
        assert!(r.probe(&[1], &[v(2)]).is_none());
        assert_eq!(r.counters().builds, 1);
    }

    #[test]
    fn index_is_maintained_incrementally() {
        let mut r = IndexedRelation::new(2);
        r.ensure_index(&[1]);
        r.insert(tuple_u64([1, 2]));
        r.insert(tuple_u64([3, 2]));
        assert_eq!(r.probe(&[1], &[v(2)]).unwrap().len(), 2);
        // Two inserts, one index each: two incremental updates, no rebuild.
        assert_eq!(
            r.counters(),
            IndexCounters {
                builds: 1,
                updates: 2
            }
        );
        // Re-ensuring is a no-op.
        r.ensure_index(&[1]);
        assert_eq!(r.counters().builds, 1);
    }

    #[test]
    fn multi_column_index_keys() {
        let mut r = IndexedRelation::new(3);
        r.insert(tuple_u64([1, 2, 3]));
        r.insert(tuple_u64([1, 2, 4]));
        r.insert(tuple_u64([1, 5, 3]));
        r.ensure_index(&[0, 1]);
        assert_eq!(r.probe(&[0, 1], &[v(1), v(2)]).unwrap().len(), 2);
        let id = r.probe(&[0, 1], &[v(1), v(5)]).unwrap()[0];
        assert_eq!(&r.tuple(id)[..], &[v(1), v(5), v(3)]);
    }

    #[test]
    fn remove_unlinks_indexes_and_tombstones_the_slot() {
        let mut r = IndexedRelation::from_relation(&Relation::from_pairs([(1, 2), (1, 3), (2, 3)]));
        r.ensure_index(&[0]);
        r.ensure_index(&[1]);
        assert!(r.remove(&[v(1), v(2)]));
        assert!(!r.remove(&[v(1), v(2)]), "second remove is a no-op");
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&[v(1), v(2)]));
        assert_eq!(r.probe(&[0], &[v(1)]).unwrap().len(), 1);
        assert_eq!(r.probe(&[1], &[v(2)]).unwrap().len(), 0);
        // Iteration and round-tripping skip the tombstone.
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.to_relation(), Relation::from_pairs([(1, 3), (2, 3)]));
        // Reinsertion after removal gets a fresh id and is probe-visible.
        assert!(r.insert(tuple_u64([1, 2])));
        assert_eq!(r.probe(&[0], &[v(1)]).unwrap().len(), 2);
        assert_eq!(r.iter().count(), 3);
    }

    #[test]
    fn round_trips_through_relation() {
        let rel = Relation::from_pairs([(1, 2), (2, 3), (3, 4)]);
        let r = IndexedRelation::from_relation(&rel);
        assert_eq!(r.to_relation(), rel);
    }

    #[test]
    fn engine_db_declares_and_sums_counters() {
        let mut db = EngineDb::new();
        let a = Symbol::intern("A");
        db.load(a, &Relation::from_pairs([(1, 2)]));
        db.declare(a, 2); // no-op: already present
        db.get_mut(a).unwrap().ensure_index(&[0]);
        assert_eq!(db.index_counters().builds, 1);
        assert_eq!(db.index_count(), 1);
        assert_eq!(db.get(a).unwrap().len(), 1);
    }
}
