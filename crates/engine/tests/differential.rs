//! Differential property tests: on randomly generated linear recursions and
//! databases, every engine mode must compute exactly the oracle's fixpoint
//! (`recurs_datalog::eval::semi_naive`).
//!
//! The random rules span the paper's whole classification — one-directional
//! A1–A5, bounded B, unbounded C — so this exercises all three kernels
//! (frontier, bounded unroll, generic) against the same reference.

use proptest::prelude::*;
use recurs_datalog::eval::semi_naive;
use recurs_engine::{run_linear, EngineConfig, EngineMode};
use recurs_workload::{random_database, random_linear_recursion, RuleConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle_on_random_workloads(
        rule_seed in 0u64..10_000,
        db_seed in 0u64..10_000,
        tuples in 1usize..40,
        domain in 2u64..8,
        threads in 2usize..=4,
    ) {
        let lr = random_linear_recursion(rule_seed, RuleConfig::default());
        let mut oracle_db = random_database(&lr, tuples, domain, db_seed);
        let edb = oracle_db.clone();
        semi_naive(&mut oracle_db, &lr.to_program(), None)
            .expect("oracle saturates generated workloads");
        let expected = oracle_db.get("P").expect("IDB is materialized");

        for mode in [EngineMode::Indexed, EngineMode::Parallel { threads }] {
            let mut db = edb.clone();
            let config = EngineConfig { mode, max_iterations: None };
            let stats = run_linear(&mut db, &lr, &config)
                .expect("engine saturates generated workloads");
            let got = db.get("P").expect("IDB is materialized");
            prop_assert_eq!(
                expected, got,
                "rule_seed={} db_seed={} mode={:?} rule={}",
                rule_seed, db_seed, mode, lr.recursive_rule
            );
            prop_assert!(!stats.truncated, "uncapped run reported truncation");
            prop_assert!(
                stats.kernel.is_some(),
                "run_linear always classifies and picks a kernel"
            );
        }
    }

    /// A hard iteration cap never yields tuples outside the true fixpoint —
    /// truncated runs are sound under-approximations.
    #[test]
    fn truncated_runs_are_subsets_of_the_fixpoint(
        rule_seed in 0u64..10_000,
        db_seed in 0u64..10_000,
        cap in 1usize..4,
    ) {
        let lr = random_linear_recursion(rule_seed, RuleConfig::default());
        let mut oracle_db = random_database(&lr, 25, 6, db_seed);
        let edb = oracle_db.clone();
        semi_naive(&mut oracle_db, &lr.to_program(), None).expect("oracle saturates");
        let full = oracle_db.get("P").expect("IDB is materialized");

        let mut db = edb;
        let config = EngineConfig {
            mode: EngineMode::Indexed,
            max_iterations: Some(cap),
        };
        run_linear(&mut db, &lr, &config).expect("capped run succeeds");
        let partial = db.get("P").expect("IDB is materialized");
        prop_assert!(partial.len() <= full.len());
        for t in partial.iter() {
            prop_assert!(full.contains(t), "capped run derived a tuple outside the fixpoint");
        }
    }
}
