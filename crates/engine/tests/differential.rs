//! Differential property tests: on randomly generated linear recursions and
//! databases, every engine mode must compute exactly the oracle's fixpoint
//! (`recurs_datalog::eval::semi_naive`).
//!
//! The random rules span the paper's whole classification — one-directional
//! A1–A5, bounded B, unbounded C — so this exercises all three kernels
//! (frontier, bounded unroll, generic) against the same reference. A second
//! group pins down the governance contract: capped runs of every engine
//! produce *identical* tuple sets (the unified cap semantics), and budgeted
//! runs are sound under-approximations with truthful `Truncated` reporting.

use proptest::prelude::*;
use recurs_datalog::eval::{semi_naive, semi_naive_governed};
use recurs_datalog::govern::EvalBudget;
use recurs_engine::run_linear;
use recurs_engine::{run_program, EngineConfig, EngineMode, KernelKind};
use recurs_workload::{random_database, random_linear_recursion, RuleConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle_on_random_workloads(
        rule_seed in 0u64..10_000,
        db_seed in 0u64..10_000,
        tuples in 1usize..40,
        domain in 2u64..8,
        threads in 2usize..=4,
    ) {
        let lr = random_linear_recursion(rule_seed, RuleConfig::default());
        let mut oracle_db = random_database(&lr, tuples, domain, db_seed);
        let edb = oracle_db.clone();
        semi_naive(&mut oracle_db, &lr.to_program(), None)
            .expect("oracle saturates generated workloads");
        let expected = oracle_db.get("P").expect("IDB is materialized");

        for mode in [EngineMode::Indexed, EngineMode::Parallel { threads }] {
            let mut db = edb.clone();
            let config = EngineConfig { mode, ..EngineConfig::default() };
            let sat = run_linear(&mut db, &lr, &config)
                .expect("engine saturates generated workloads");
            let got = db.get("P").expect("IDB is materialized");
            prop_assert_eq!(
                expected, got,
                "rule_seed={} db_seed={} mode={:?} rule={}",
                rule_seed, db_seed, mode, lr.recursive_rule
            );
            prop_assert!(sat.outcome.is_complete(), "uncapped run reported truncation");
            prop_assert!(
                sat.stats.kernel.is_some(),
                "run_linear always classifies and picks a kernel"
            );
        }
    }

    /// Unified cap semantics: under the same iteration cap, the oracle, the
    /// indexed engine, and the parallel engine stop with *identical* tuple
    /// sets. (The generic kernel is forced so the engines detect the
    /// fixpoint the same way the oracle does; rank-bound kernels may
    /// legitimately stop earlier than a cap.)
    #[test]
    fn capped_runs_agree_across_all_engines(
        rule_seed in 0u64..10_000,
        db_seed in 0u64..10_000,
        cap in 1usize..6,
        threads in 2usize..=4,
    ) {
        let lr = random_linear_recursion(rule_seed, RuleConfig::default());
        let edb = random_database(&lr, 25, 6, db_seed);
        let program = lr.to_program();

        let mut oracle_db = edb.clone();
        let oracle_stats = semi_naive(&mut oracle_db, &program, Some(cap))
            .expect("oracle runs under cap");
        let expected = oracle_db.get("P").expect("IDB is materialized");

        for mode in [EngineMode::Indexed, EngineMode::Parallel { threads }] {
            let mut db = edb.clone();
            let config = EngineConfig {
                mode,
                budget: EvalBudget::iteration_cap(Some(cap)),
                ..EngineConfig::default()
            };
            let sat = run_program(&mut db, &program, &config)
                .expect("engine runs under cap");
            let got = db.get("P").expect("IDB is materialized");
            prop_assert_eq!(
                expected, got,
                "cap={} rule_seed={} db_seed={} mode={:?} rule={}",
                cap, rule_seed, db_seed, mode, lr.recursive_rule
            );
            prop_assert_eq!(
                sat.stats.kernel, Some(KernelKind::Generic),
                "run_program uses the generic kernel"
            );
            // Both sides agree on *whether* the cap truncated the run.
            prop_assert_eq!(
                sat.outcome.truncation().is_some(), oracle_stats.truncated,
                "cap={} mode={:?}: engine and oracle disagree on truncation",
                cap, mode
            );
        }
    }

    /// Truncation invariants, for every class and a spread of budget
    /// settings: a budgeted run's output is a subset of the fixpoint;
    /// a run reporting `Complete` equals the fixpoint; and a proper subset
    /// is always reported as `Truncated`. (The converse — `Truncated`
    /// implying a proper subset — does not hold at the boundary: proving
    /// the subset complete would cost the very iteration the budget
    /// forbids. See DESIGN.md "Failure semantics".)
    #[test]
    fn budgeted_runs_are_sound_underapproximations(
        rule_seed in 0u64..10_000,
        db_seed in 0u64..10_000,
        budget_kind in 0usize..4,
        knob in 1usize..8,
    ) {
        let lr = random_linear_recursion(rule_seed, RuleConfig::default());
        let edb = random_database(&lr, 25, 6, db_seed);
        let program = lr.to_program();

        let mut oracle_db = edb.clone();
        semi_naive(&mut oracle_db, &program, None).expect("oracle saturates");
        let full = oracle_db.get("P").expect("IDB is materialized");

        let budget = match budget_kind {
            0 => EvalBudget::iteration_cap(Some(knob)),
            1 => EvalBudget::unlimited().with_max_tuples(knob * 8),
            2 => EvalBudget::unlimited().with_max_delta(knob * 4),
            _ => EvalBudget::unlimited().with_max_memory_bytes(knob * 2048),
        };

        // The engine under budget.
        let mut db = edb.clone();
        let config = EngineConfig { budget: budget.clone(), ..EngineConfig::default() };
        let sat = run_program(&mut db, &program, &config).expect("budgeted run succeeds");
        let partial = db.get("P").expect("IDB is materialized");
        for t in partial.iter() {
            prop_assert!(full.contains(t), "budgeted run derived a tuple outside the fixpoint");
        }
        prop_assert!(partial.len() <= full.len());
        if sat.outcome.is_complete() {
            prop_assert_eq!(full, partial, "run claimed Complete but missed tuples");
        }
        if partial.len() < full.len() {
            prop_assert!(
                sat.outcome.truncation().is_some(),
                "proper under-approximation not reported as Truncated (budget={:?})",
                budget
            );
        }

        // The governed oracle honors the same invariants.
        let mut gov_db = edb.clone();
        let stats = semi_naive_governed(&mut gov_db, &program, &budget)
            .expect("governed oracle succeeds");
        let oracle_partial = gov_db.get("P").expect("IDB is materialized");
        for t in oracle_partial.iter() {
            prop_assert!(full.contains(t), "governed oracle derived a tuple outside the fixpoint");
        }
        if stats.truncation.is_none() {
            prop_assert_eq!(full, oracle_partial, "oracle claimed Complete but missed tuples");
        }
        if oracle_partial.len() < full.len() {
            prop_assert!(stats.truncated, "oracle under-approximated without reporting truncation");
        }
    }
}
