//! Fault-injection suite (requires `--features fault-inject`): every
//! injected worker panic, slowdown, or allocation-pressure scenario must
//! yield either a correct complete result or a well-formed `Truncated`
//! under-approximation — never a process abort, never an over-approximation.
//!
//! The `fault` module's plan is process-global, so every test here arms it
//! through `fault::arm`, which serializes the tests on a gate.

#![cfg(feature = "fault-inject")]

use proptest::prelude::*;
use recurs_datalog::database::Database;
use recurs_datalog::eval::semi_naive;
use recurs_datalog::govern::{EvalBudget, Outcome, TruncationReason};
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::Program;
use recurs_engine::fault::{arm, FaultPlan, PanicMode};
use recurs_engine::{run_program, EngineConfig, EngineError, EngineMode};
use recurs_obs::{CaptureRecorder, Obs};
use recurs_workload::{random_database, random_linear_recursion, RuleConfig};
use std::sync::Arc;
use std::time::Duration;

fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db
}

fn tc_program() -> Program {
    parse_program("P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).").unwrap()
}

fn parallel(threads: usize, budget: EvalBudget) -> EngineConfig {
    EngineConfig {
        mode: EngineMode::Parallel { threads },
        budget,
        ..EngineConfig::default()
    }
}

fn parallel_obs(
    threads: usize,
    budget: EvalBudget,
    capture: &Arc<CaptureRecorder>,
) -> EngineConfig {
    EngineConfig {
        obs: Obs::new(capture.clone()),
        ..parallel(threads, budget)
    }
}

#[test]
fn one_shot_worker_panic_degrades_and_completes() {
    let _g = arm(FaultPlan {
        panic_mode: Some(PanicMode::OnceInWorker(1)),
        ..FaultPlan::default()
    });
    let mut oracle = tc_db(12);
    semi_naive(&mut oracle, &tc_program(), None).unwrap();
    let mut db = tc_db(12);
    let capture = Arc::new(CaptureRecorder::new());
    let sat = run_program(
        &mut db,
        &tc_program(),
        &parallel_obs(3, EvalBudget::unlimited(), &capture),
    )
    .unwrap();
    assert!(sat.outcome.is_complete());
    assert_eq!(sat.stats.worker_panics, 1);
    assert_eq!(sat.stats.degraded_iterations, 1);
    assert_eq!(oracle.get("P").unwrap(), db.get("P").unwrap());

    // The injected fault must be visible in the trace stream — announced
    // before it fired, at the worker site it was armed for — alongside the
    // engine's own containment events, so a trace reader can tell an
    // injected failure from an organic one.
    let injected = capture.events_of("fault.injected");
    assert_eq!(injected.len(), 1, "one armed fault → one fault.injected");
    assert_eq!(injected[0].text("kind"), Some("panic"));
    assert_eq!(injected[0].text("site"), Some("worker"));
    assert_eq!(injected[0].uint("worker"), Some(1));
    assert_eq!(capture.events_of("engine.worker_panic").len(), 1);
    assert_eq!(capture.events_of("engine.degraded_retry").len(), 1);
}

#[test]
fn persistent_panics_exhaust_the_ladder_without_corruption() {
    let _g = arm(FaultPlan {
        panic_mode: Some(PanicMode::Always),
        ..FaultPlan::default()
    });
    let before = tc_db(12);
    let mut db = before.clone();
    let err = run_program(
        &mut db,
        &tc_program(),
        &parallel(2, EvalBudget::unlimited()),
    )
    .unwrap_err();
    let EngineError::WorkerPanic { iteration, message } = err else {
        panic!("expected WorkerPanic, got a different error");
    };
    assert!(iteration >= 1);
    assert!(message.contains("injected fault"));
    // The EDB is untouched and no partial IDB was written back.
    assert_eq!(db.get("A").unwrap(), before.get("A").unwrap());
    assert_eq!(db.get("E").unwrap(), before.get("E").unwrap());
    assert!(db.get("P").is_none_or(Relation::is_empty));
}

#[test]
fn slow_workers_trip_the_deadline_with_a_sound_subset() {
    let _g = arm(FaultPlan {
        slowdown: Some(Duration::from_millis(30)),
        ..FaultPlan::default()
    });
    let mut oracle = tc_db(40);
    semi_naive(&mut oracle, &tc_program(), None).unwrap();
    let full = oracle.get("P").unwrap();

    let mut db = tc_db(40);
    let budget = EvalBudget::unlimited().with_timeout(Duration::from_millis(1));
    let capture = Arc::new(CaptureRecorder::new());
    let sat = run_program(&mut db, &tc_program(), &parallel_obs(2, budget, &capture)).unwrap();
    assert_eq!(sat.outcome, Outcome::Truncated(TruncationReason::Deadline));
    let slowdowns = capture.events_of("fault.injected");
    assert!(
        !slowdowns.is_empty(),
        "armed slowdowns must surface as fault.injected events"
    );
    assert!(slowdowns
        .iter()
        .all(|e| e.text("kind") == Some("slowdown") && e.text("site") == Some("worker")));
    for t in db.get("P").unwrap().iter() {
        assert!(
            full.contains(t),
            "deadline stop derived a tuple outside the fixpoint"
        );
    }
    assert!(db.get("P").unwrap().len() < full.len());
}

#[test]
fn allocation_pressure_trips_the_memory_ceiling() {
    let _g = arm(FaultPlan {
        ballast_bytes: 1 << 30, // pretend a gigabyte is already committed
        ..FaultPlan::default()
    });
    let mut db = tc_db(20);
    let budget = EvalBudget::unlimited().with_max_memory_bytes(1 << 20);
    let sat = run_program(&mut db, &tc_program(), &parallel(2, budget)).unwrap();
    assert_eq!(
        sat.outcome,
        Outcome::Truncated(TruncationReason::MemoryCeiling)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized fault matrix: any single injected fault, on any class of
    /// workload, yields either the complete correct fixpoint or a typed
    /// `Truncated` under-approximation — never junk tuples, never an abort.
    #[test]
    fn injected_faults_never_corrupt_results(
        rule_seed in 0u64..10_000,
        db_seed in 0u64..10_000,
        fault_kind in 0usize..3,
        panic_worker in 0usize..3,
        threads in 2usize..=4,
    ) {
        let lr = random_linear_recursion(rule_seed, RuleConfig::default());
        let edb = random_database(&lr, 25, 6, db_seed);
        let program = lr.to_program();
        let mut oracle_db = edb.clone();
        semi_naive(&mut oracle_db, &program, None).expect("oracle saturates");
        let full = oracle_db.get("P").expect("IDB is materialized");

        let (plan, budget) = match fault_kind {
            0 => (
                FaultPlan {
                    panic_mode: Some(PanicMode::OnceInWorker(panic_worker)),
                    ..FaultPlan::default()
                },
                EvalBudget::unlimited(),
            ),
            1 => (
                FaultPlan {
                    slowdown: Some(Duration::from_millis(5)),
                    ..FaultPlan::default()
                },
                EvalBudget::unlimited().with_timeout(Duration::from_millis(1)),
            ),
            _ => (
                FaultPlan {
                    ballast_bytes: 1 << 30,
                    ..FaultPlan::default()
                },
                EvalBudget::unlimited().with_max_memory_bytes(1 << 20),
            ),
        };

        let _g = arm(plan);
        let mut db = edb.clone();
        let sat = run_program(&mut db, &program, &parallel(threads, budget))
            .expect("contained faults never error");
        let got = db.get("P").expect("IDB is materialized");
        for t in got.iter() {
            prop_assert!(full.contains(t), "fault run derived a tuple outside the fixpoint");
        }
        if sat.outcome.is_complete() {
            prop_assert_eq!(full, got, "run claimed Complete but missed tuples");
        }
        if got.len() < full.len() {
            prop_assert!(
                sat.outcome.truncation().is_some(),
                "proper under-approximation not reported as Truncated"
            );
        }
    }
}
