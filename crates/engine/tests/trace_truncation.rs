//! One test per [`EvalBudget`] ceiling: when a budget stops the engine,
//! the emitted `engine.truncated` trace event (and the labelled
//! `recurs_engine_truncations_total` counter) must name the *exact*
//! truncation cause — a deadline stop must never be reported as a tuple
//! ceiling, and vice versa. Operators triage truncated runs from these
//! events, so cause fidelity is a contract, not a nicety.

use recurs_datalog::database::Database;
use recurs_datalog::govern::{EvalBudget, Outcome, TruncationReason};
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::Program;
use recurs_engine::{run_program, EngineConfig, EngineMode};
use recurs_obs::{CaptureRecorder, Obs};
use std::sync::Arc;
use std::time::Duration;

fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
    db
}

fn tc_program() -> Program {
    parse_program("P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).").unwrap()
}

/// Runs the indexed engine on a 40-node chain under `budget` and asserts
/// the run truncates with `reason`, that exactly one `engine.truncated`
/// event is emitted, and that its `reason` field matches the
/// [`TruncationReason`] display string.
fn assert_trace_names_cause(budget: EvalBudget, reason: TruncationReason) {
    let capture = Arc::new(CaptureRecorder::new());
    let config = EngineConfig {
        mode: EngineMode::Indexed,
        budget,
        obs: Obs::new(capture.clone()),
    };
    let mut db = tc_db(40);
    let sat = run_program(&mut db, &tc_program(), &config).unwrap();
    assert_eq!(sat.outcome, Outcome::Truncated(reason));

    let events = capture.events_of("engine.truncated");
    assert_eq!(events.len(), 1, "expected exactly one truncation event");
    let want = reason.to_string();
    assert_eq!(events[0].text("reason"), Some(want.as_str()));
    assert!(
        capture.events_of("engine.complete").is_empty(),
        "a truncated run must not also claim completion"
    );
    assert_eq!(
        capture.counter_where("recurs_engine_truncations_total", &[("reason", &want)]),
        1,
        "truncation counter must carry the same reason label"
    );
}

#[test]
fn deadline_trace_names_deadline() {
    assert_trace_names_cause(
        EvalBudget::unlimited().with_timeout(Duration::ZERO),
        TruncationReason::Deadline,
    );
}

#[test]
fn tuple_ceiling_trace_names_tuple_ceiling() {
    assert_trace_names_cause(
        EvalBudget::unlimited().with_max_tuples(5),
        TruncationReason::TupleCeiling,
    );
}

#[test]
fn delta_ceiling_trace_names_delta_ceiling() {
    assert_trace_names_cause(
        EvalBudget::unlimited().with_max_delta(1),
        TruncationReason::DeltaCeiling,
    );
}

#[test]
fn memory_ceiling_trace_names_memory_ceiling() {
    assert_trace_names_cause(
        EvalBudget::unlimited().with_max_memory_bytes(1),
        TruncationReason::MemoryCeiling,
    );
}

#[test]
fn iteration_cap_trace_names_iteration_cap() {
    assert_trace_names_cause(
        EvalBudget::iteration_cap(Some(1)),
        TruncationReason::IterationCap,
    );
}
