//! The framed request envelope and the net layer's typed replies.
//!
//! A frame payload is one line of the serve protocol, optionally prefixed
//! with directives in any order:
//!
//! ```text
//! @deadline=250 @trace=cafe ?- P(1, y).
//! ```
//!
//! The deadline is milliseconds of wall clock the *client* grants the
//! request, counted from the moment the server finishes reading the frame.
//! The server derives the evaluation budget from the time remaining (its
//! own default budget tightened, never loosened) and bounds the admission
//! wait by it, so an expired request is answered with a typed `deadline`
//! error instead of being evaluated late or silently dropped.
//!
//! The trace directive is a client-supplied request id (1–16 hex digits);
//! the server tags every span and event of the request with it and echoes
//! it in the reply, so a client can correlate its own logs with the
//! server-side trace. Absent the directive the server mints an id.
//! Duplicate or malformed directives are typed `protocol` errors.
//!
//! The net layer adds three reply shapes on top of the serve protocol:
//!
//! * `{"ok":false,"type":"deadline","error":...}` — the deadline expired
//!   before evaluation started;
//! * `{"ok":false,"type":"overloaded","error":...,"retry_after_ms":N}` —
//!   admission shed the request (rendered by the serve layer, consumed by
//!   the loadgen backoff);
//! * `{"ok":true,"type":"health","state":"accepting"|"draining",...}` — the
//!   `!health` probe, answered at the net layer so it works even while the
//!   evaluation slots are saturated.

use recurs_obs::TraceId;
use serde::{Serialize as _, Value};
use std::time::Duration;

/// A parsed request envelope: the protocol line plus its directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request<'a> {
    /// The serve-protocol line (directives stripped).
    pub line: &'a str,
    /// Client-granted wall-clock allowance, if any.
    pub deadline: Option<Duration>,
    /// Client-supplied trace id, if any.
    pub trace: Option<TraceId>,
}

/// Parses a frame payload into a [`Request`], validating UTF-8 and the
/// directive prefix (`@deadline=<ms>`, `@trace=<hex>`, in any order, each
/// at most once). Errors are human-readable fragments for a typed
/// `protocol` error reply.
pub fn parse_request(payload: &[u8]) -> Result<Request<'_>, String> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| format!("frame payload is not valid UTF-8 ({e})"))?;
    let mut line = text.trim();
    let mut deadline = None;
    let mut trace = None;
    while let Some(rest) = line.strip_prefix('@') {
        let (directive, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        if let Some(ms) = directive.strip_prefix("deadline=") {
            if deadline.is_some() {
                return Err("duplicate @deadline directive".to_string());
            }
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad deadline directive: @deadline={ms}"))?;
            deadline = Some(Duration::from_millis(ms));
        } else if let Some(id) = directive.strip_prefix("trace=") {
            if trace.is_some() {
                return Err("duplicate @trace directive".to_string());
            }
            trace = Some(TraceId::parse(id).map_err(|e| format!("bad @trace directive: {e}"))?);
        } else {
            return Err(format!("unknown directive: @{directive}"));
        }
        line = tail.trim();
    }
    Ok(Request {
        line,
        deadline,
        trace,
    })
}

/// Renders a typed error reply: `{"ok":false,"type":KIND,"error":MSG}`,
/// plus a `retry_after_ms` hint when one is given.
pub fn error_reply(kind: &str, msg: &str, retry_after_ms: Option<u64>) -> String {
    let mut fields = vec![
        ("ok", Value::Bool(false)),
        ("type", Value::string(kind)),
        ("error", Value::string(msg)),
    ];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms", ms.to_value()));
    }
    serde::json::to_string(&Value::object(fields))
}

/// Renders the `!health` reply.
pub fn health_reply(draining: bool, active_connections: usize, uptime: Duration) -> String {
    serde::json::to_string(&Value::object([
        ("ok", Value::Bool(true)),
        ("type", Value::string("health")),
        (
            "state",
            Value::string(if draining { "draining" } else { "accepting" }),
        ),
        ("active_connections", active_connections.to_value()),
        ("uptime_ms", (uptime.as_millis() as u64).to_value()),
    ]))
}

/// Renders the no-op reply for blank/comment frames. Over stdin those lines
/// are silent; over TCP every accepted frame gets exactly one reply, so
/// silence is expressed as an explicit ack.
pub fn noop_reply() -> String {
    serde::json::to_string(&Value::object([
        ("ok", Value::Bool(true)),
        ("type", Value::string("noop")),
    ]))
}

/// Renders the `!quit` acknowledgement written before the clean close.
pub fn bye_reply() -> String {
    serde::json::to_string(&Value::object([
        ("ok", Value::Bool(true)),
        ("type", Value::string("bye")),
    ]))
}

/// Extracts the string value of `"field":"..."` from a one-line JSON reply.
/// The vendored serde has no deserializer, and both the server (tests) and
/// the load generator only need flat field probes, so a scan suffices.
pub fn json_str_field<'a>(reply: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":\"");
    let start = reply.find(&needle)? + needle.len();
    let rest = &reply[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts the numeric value of `"field":N` from a one-line JSON reply.
pub fn json_u64_field(reply: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let start = reply.find(&needle)? + needle.len();
    let digits: String = reply[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// True when a reply says the request was shed (`"type":"overloaded"`).
pub fn is_overloaded_reply(reply: &str) -> bool {
    json_str_field(reply, "type") == Some("overloaded")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_line_has_no_directives() {
        let r = parse_request(b"?- P(1, y).").unwrap();
        assert_eq!(r.line, "?- P(1, y).");
        assert_eq!(r.deadline, None);
        assert_eq!(r.trace, None);
    }

    #[test]
    fn deadline_directive_is_parsed_and_stripped() {
        let r = parse_request(b"@deadline=250 ?- P(1, y).").unwrap();
        assert_eq!(r.line, "?- P(1, y).");
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn directives_combine_in_any_order() {
        let r = parse_request(b"@deadline=250 @trace=cafe ?- P(1, y).").unwrap();
        assert_eq!(r.line, "?- P(1, y).");
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
        assert_eq!(r.trace, Some(TraceId::from_u64(0xcafe)));
        let r = parse_request(b"@trace=cafe @deadline=250 ?- P(1, y).").unwrap();
        assert_eq!(r.line, "?- P(1, y).");
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
        assert_eq!(r.trace, Some(TraceId::from_u64(0xcafe)));
    }

    #[test]
    fn bare_deadline_directive_yields_an_empty_line() {
        let r = parse_request(b"@deadline=10").unwrap();
        assert_eq!(r.line, "");
        assert_eq!(r.deadline, Some(Duration::from_millis(10)));
    }

    #[test]
    fn bad_deadline_is_a_typed_parse_error() {
        let err = parse_request(b"@deadline=soon ?- P(1, y).").unwrap_err();
        assert!(err.contains("bad deadline directive"), "{err}");
    }

    #[test]
    fn bad_duplicate_or_unknown_directives_are_typed_parse_errors() {
        let err = parse_request(b"@trace=xyz ?- P(1, y).").unwrap_err();
        assert!(err.contains("bad @trace directive"), "{err}");
        let err = parse_request(b"@trace=1 @trace=2 ?- P(1, y).").unwrap_err();
        assert!(err.contains("duplicate @trace directive"), "{err}");
        let err = parse_request(b"@deadline=1 @deadline=2 ?- P(1, y).").unwrap_err();
        assert!(err.contains("duplicate @deadline directive"), "{err}");
        let err = parse_request(b"@speed=fast ?- P(1, y).").unwrap_err();
        assert!(err.contains("unknown directive"), "{err}");
    }

    #[test]
    fn non_utf8_payload_is_a_typed_parse_error() {
        let err = parse_request(&[0xff, 0xfe, 0x41]).unwrap_err();
        assert!(err.contains("not valid UTF-8"), "{err}");
    }

    #[test]
    fn error_reply_carries_retry_hint_when_given() {
        let r = error_reply("overloaded", "shed", Some(50));
        assert!(r.contains("\"retry_after_ms\":50"), "{r}");
        assert!(is_overloaded_reply(&r));
        let r = error_reply("protocol", "bad frame", None);
        assert!(!r.contains("retry_after_ms"), "{r}");
        assert!(!is_overloaded_reply(&r));
    }

    #[test]
    fn health_reply_reports_drain_state() {
        let r = health_reply(false, 3, Duration::from_millis(1500));
        assert_eq!(json_str_field(&r, "state"), Some("accepting"));
        assert_eq!(json_u64_field(&r, "active_connections"), Some(3));
        assert_eq!(json_u64_field(&r, "uptime_ms"), Some(1500));
        let r = health_reply(true, 0, Duration::ZERO);
        assert_eq!(json_str_field(&r, "state"), Some("draining"));
    }

    #[test]
    fn json_field_probes_tolerate_missing_fields() {
        assert_eq!(json_str_field("{\"ok\":true}", "state"), None);
        assert_eq!(json_u64_field("{\"ok\":true}", "count"), None);
    }
}
