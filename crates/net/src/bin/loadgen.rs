//! `loadgen` — replay a mixed read/write workload against a running
//! `recurs serve --listen` server and score it.
//!
//! ```text
//! loadgen --addr 127.0.0.1:4004 --qps 200 --duration-ms 2000 \
//!         --connections 4 --update-ratio 0.1 --deadline-ms 1000 \
//!         --key-space 100 --seed 1 [--out BENCH_load.json]
//! ```
//!
//! The scored report (p50/p95/p99 latency, shed rate, saturation) is
//! written as one-line JSON to `--out` or stdout; a human summary goes to
//! stderr. Exit codes: 0 on a clean run, 1 on usage or connection errors.

use recurs_net::loadgen::{run, LoadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args).and_then(|(spec, out)| execute(&spec, out.as_deref())) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    }
}

fn execute(spec: &LoadSpec, out: Option<&str>) -> Result<(), String> {
    let report = run(spec).map_err(|e| e.to_string())?;
    eprintln!(
        "loadgen: {:.0}/{:.0} qps (saturation {:.2}), p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, shed {:.1}%, {} transport errors",
        report.achieved_qps,
        report.target_qps,
        report.saturation,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.shed_rate * 100.0,
        report.samples.transport_errors,
    );
    let json = report.to_json();
    match out {
        Some(path) => std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?,
        None => println!("{json}"),
    }
    Ok(())
}

fn parse(args: &[String]) -> Result<(LoadSpec, Option<String>), String> {
    let mut spec = LoadSpec::default();
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            eprintln!(
                "usage: loadgen [--addr HOST:PORT] [--connections N] [--qps N] \
                 [--duration-ms N] [--update-ratio F] [--deadline-ms N|none] \
                 [--key-space N] [--seed N] [--max-retries N] [--out FILE]"
            );
            std::process::exit(0);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag.as_str() {
            "--addr" => spec.addr = value.clone(),
            "--connections" => spec.connections = value.parse().map_err(|e| bad(&e))?,
            "--qps" => spec.qps = value.parse().map_err(|e| bad(&e))?,
            "--duration-ms" => {
                spec.duration = Duration::from_millis(value.parse().map_err(|e| bad(&e))?)
            }
            "--update-ratio" => spec.update_ratio = value.parse().map_err(|e| bad(&e))?,
            "--deadline-ms" => {
                spec.deadline_ms = if value == "none" {
                    None
                } else {
                    Some(value.parse().map_err(|e| bad(&e))?)
                }
            }
            "--key-space" => spec.key_space = value.parse().map_err(|e| bad(&e))?,
            "--seed" => spec.seed = value.parse().map_err(|e| bad(&e))?,
            "--max-retries" => spec.retry.max_retries = value.parse().map_err(|e| bad(&e))?,
            "--query-predicate" => spec.query_predicate = value.clone(),
            "--update-predicate" => spec.update_predicate = value.clone(),
            "--out" => out = Some(value.clone()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !(0.0..=1.0).contains(&spec.update_ratio) {
        return Err("--update-ratio must be in 0.0..=1.0".to_string());
    }
    Ok((spec, out))
}
