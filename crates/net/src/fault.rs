//! Network-layer fault injection, mirroring `recurs_engine::fault`: torn
//! reply frames, stalled reply writes, and handler panics at configurable
//! points, armed process-globally for the duration of a guard.
//!
//! Compiled only under `cfg(test)` or the `fault-inject` feature. The chaos
//! suite arms a [`FaultPlan`] with [`arm`]; the guard holds a global
//! serialization gate (plans are process global, faulty tests must not
//! overlap) and disarms on drop even if the test panics.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One armed network fault scenario. Counters count *replies written by the
/// whole process* while the plan is armed, so chaos tests run one server at
/// a time (the gate enforces this).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// After this many clean replies, write only the first half of the next
    /// reply frame and drop the connection (torn frame seen by the client).
    pub tear_reply_after: Option<usize>,
    /// Sleep this long before every reply write (stalled socket; exercises
    /// client read timeouts and the drain deadline).
    pub stall_reply: Option<Duration>,
    /// Panic inside the next request handler, once. Exercises the
    /// per-request `catch_unwind` barrier: the connection must answer with
    /// a typed `internal` error, not die or kill the server.
    pub panic_in_handler: bool,
}

#[derive(Debug, Default)]
struct Armed {
    plan: FaultPlan,
    replies_written: usize,
}

static PLAN: Mutex<Option<Armed>> = Mutex::new(None);
static GATE: Mutex<()> = Mutex::new(());

fn plan_lock() -> MutexGuard<'static, Option<Armed>> {
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `plan` for the duration of the returned guard; see the module docs.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    *plan_lock() = Some(Armed {
        plan,
        replies_written: 0,
    });
    FaultGuard { _gate: gate }
}

/// Serializes a fault-free test against armed plans: while the guard lives
/// no plan is armed and none can be.
pub fn quiesce() -> FaultGuard {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    FaultGuard { _gate: gate }
}

/// RAII guard of an armed [`FaultPlan`]; see [`arm`].
#[derive(Debug)]
pub struct FaultGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *plan_lock() = None;
    }
}

/// What the connection loop must do to the reply it is about to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyFault {
    /// Write the frame normally.
    Clean,
    /// Write only the first half of the frame, then drop the connection.
    Tear,
}

/// Hook called before each reply write. May sleep (stall), and says whether
/// to tear this frame. The sleep runs outside the plan lock.
pub fn before_reply() -> ReplyFault {
    let (stall, fault) = {
        let mut armed = plan_lock();
        match armed.as_mut() {
            None => (None, ReplyFault::Clean),
            Some(a) => {
                let fault = match a.plan.tear_reply_after {
                    Some(n) if a.replies_written >= n => ReplyFault::Tear,
                    _ => ReplyFault::Clean,
                };
                a.replies_written += 1;
                (a.plan.stall_reply, fault)
            }
        }
    };
    if let Some(d) = stall {
        std::thread::sleep(d);
    }
    fault
}

/// Hook called at the start of each request handler. Panics once if the
/// armed plan asks for it (the flag is consumed under the lock, so the
/// panic itself unwinds outside it and cannot poison the plan).
pub fn handler_start() {
    let do_panic = {
        let mut armed = plan_lock();
        match armed.as_mut() {
            Some(a) if a.plan.panic_in_handler => {
                a.plan.panic_in_handler = false; // consumed
                true
            }
            _ => false,
        }
    };
    if do_panic {
        panic!("injected fault: handler panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = arm(FaultPlan {
                tear_reply_after: Some(0),
                ..FaultPlan::default()
            });
            assert_eq!(before_reply(), ReplyFault::Tear);
        }
        assert_eq!(before_reply(), ReplyFault::Clean);
    }

    #[test]
    fn tear_fires_only_after_the_threshold() {
        let _g = arm(FaultPlan {
            tear_reply_after: Some(2),
            ..FaultPlan::default()
        });
        assert_eq!(before_reply(), ReplyFault::Clean);
        assert_eq!(before_reply(), ReplyFault::Clean);
        assert_eq!(before_reply(), ReplyFault::Tear);
    }

    #[test]
    fn handler_panic_is_consumed_and_does_not_poison() {
        let _g = arm(FaultPlan {
            panic_in_handler: true,
            ..FaultPlan::default()
        });
        assert!(std::panic::catch_unwind(handler_start).is_err());
        handler_start(); // consumed: clean second call
    }

    #[test]
    fn unarmed_hooks_are_noops() {
        let _g = quiesce();
        assert_eq!(before_reply(), ReplyFault::Clean);
        handler_start();
    }
}
