//! A small blocking client for the framed protocol, used by the load
//! generator, the CLI smoke paths, and the integration tests.

use crate::frame::{self, FrameError};
use crate::proto;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One framed connection to a [`NetServer`](crate::server::NetServer).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_len: usize,
}

impl Client {
    /// Connects to `addr` with a connect/read timeout.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Client> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved");
        for sockaddr in std::net::ToSocketAddrs::to_socket_addrs(addr)? {
            match TcpStream::connect_timeout(&sockaddr, timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(Client {
                        stream,
                        max_frame_len: frame::DEFAULT_MAX_FRAME_LEN,
                    });
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Sends one request frame.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        frame::write_frame(&mut self.stream, line.as_bytes())
    }

    /// Reads one reply frame as UTF-8 text.
    pub fn recv(&mut self) -> Result<String, FrameError> {
        let payload = frame::read_frame(&mut self.stream, self.max_frame_len)?;
        String::from_utf8(payload)
            .map_err(|e| FrameError::Io(io::Error::new(io::ErrorKind::InvalidData, e)))
    }

    /// Sends one request and reads its reply (the common non-pipelined use).
    pub fn roundtrip(&mut self, line: &str) -> Result<String, FrameError> {
        self.send(line).map_err(FrameError::Io)?;
        self.recv()
    }

    /// Sends a request under a client-side deadline directive.
    pub fn roundtrip_with_deadline(
        &mut self,
        line: &str,
        deadline: Duration,
    ) -> Result<String, FrameError> {
        self.roundtrip(&format!("@deadline={} {line}", deadline.as_millis()))
    }

    /// Raw access for tests that need to write torn/garbage bytes.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Classification of one reply for retry logic and scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// `"ok":true` — answers, snapshot, unchanged, health, noop, bye.
    Ok,
    /// Shed by admission; retry after the hint.
    Overloaded {
        /// Server-suggested backoff, from the reply's `retry_after_ms`.
        retry_after_ms: u64,
    },
    /// The deadline expired server-side.
    Deadline,
    /// Any other `"ok":false` reply.
    Error,
}

/// Classifies a one-line JSON reply.
pub fn classify(reply: &str) -> ReplyKind {
    if proto::is_overloaded_reply(reply) {
        return ReplyKind::Overloaded {
            retry_after_ms: proto::json_u64_field(reply, "retry_after_ms").unwrap_or(0),
        };
    }
    if proto::json_str_field(reply, "type") == Some("deadline") {
        return ReplyKind::Deadline;
    }
    if reply.contains("\"ok\":false") {
        return ReplyKind::Error;
    }
    ReplyKind::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_recognizes_the_reply_taxonomy() {
        assert_eq!(
            classify("{\"ok\":true,\"type\":\"answers\"}"),
            ReplyKind::Ok
        );
        assert_eq!(
            classify(&proto::error_reply("overloaded", "shed", Some(75))),
            ReplyKind::Overloaded { retry_after_ms: 75 }
        );
        assert_eq!(
            classify(&proto::error_reply("deadline", "expired", None)),
            ReplyKind::Deadline
        );
        assert_eq!(
            classify(&proto::error_reply("protocol", "bad", None)),
            ReplyKind::Error
        );
    }
}
