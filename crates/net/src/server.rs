//! The TCP front end: thread-per-connection over a bounded admission count,
//! pipelined length-framed requests with strict per-connection reply
//! ordering, per-request deadlines, idle/slow-client timeouts, and graceful
//! drain.
//!
//! # Connection lifecycle
//!
//! ```text
//! accept ──► admitted ──► serving ──► closed
//!    │           ▲          │  ▲
//!    │ (at cap)  │          ▼  │ (drain linger / !quit / idle)
//!    └─► shed ───┘        draining ──► forced-cancel (past deadline)
//! ```
//!
//! Every accepted frame gets exactly one framed reply (blank/comment frames
//! get an explicit `noop` ack; `!quit` gets a `bye` then a clean close).
//! Panics are caught at two barriers — around each request handler (typed
//! `internal` error reply, connection survives) and around the whole
//! connection loop (connection dies, server survives) — so no panic escapes
//! a handler thread.
//!
//! # Drain semantics
//!
//! [`ShutdownHandle::drain`] flips the server to draining: the accept loop
//! stops admitting, each connection keeps serving frames that arrive within
//! the linger window (or complete a frame already partially received), then
//! closes cleanly. Past the drain deadline the supervisor cancels the
//! shared hard-cancel token — which is threaded into every in-flight
//! evaluation budget — and connections close as soon as their current
//! request returns (soundly truncated). [`DrainReport::forced`] records
//! whether that hammer was needed.

use crate::frame::{FrameError, FrameReader, Poll};
use crate::proto::{self, Request};
use recurs_datalog::govern::CancelToken;
use recurs_obs::field;
use recurs_serve::protocol::{handle_line_with, LineOptions, LineOutcome};
use recurs_serve::QueryService;
use std::io;
#[cfg(any(test, feature = "fault-inject"))]
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Network front-end configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connection cap: further connections are shed with one `overloaded`
    /// frame and an immediate close.
    pub max_connections: usize,
    /// Bound on the evaluation-slot queue wait per request; past it the
    /// request is shed with a typed `overloaded` reply.
    pub max_queue_wait: Duration,
    /// Backoff hint rendered into shed replies.
    pub retry_after_ms: u64,
    /// Close connections with no completed frame for this long (also bounds
    /// a slow-loris peer dribbling a frame byte-by-byte).
    pub idle_timeout: Duration,
    /// Socket write timeout: a peer that stops reading its replies for this
    /// long is disconnected.
    pub write_timeout: Duration,
    /// Ceiling on a single frame payload.
    pub max_frame_len: usize,
    /// How long drain waits for in-flight work before hard-cancelling.
    pub drain_deadline: Duration,
    /// Grace window after drain starts during which newly arriving frames
    /// are still served (pipelined requests already in flight).
    pub drain_linger: Duration,
    /// Poll granularity for the accept loop and connection read loops.
    pub tick: Duration,
    /// Where to dump the flight recorder when something goes wrong (a
    /// handler or connection panic, or a forced drain). `None` disables
    /// postmortem dumps; the in-memory recorder still runs.
    pub postmortem: Option<std::path::PathBuf>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_connections: 64,
            max_queue_wait: Duration::from_millis(250),
            retry_after_ms: 50,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            max_frame_len: crate::frame::DEFAULT_MAX_FRAME_LEN,
            drain_deadline: Duration::from_secs(5),
            drain_linger: Duration::from_millis(100),
            tick: Duration::from_millis(10),
            postmortem: None,
        }
    }
}

/// What [`NetServer::run`] observed while shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// True when the drain deadline expired and in-flight evaluations were
    /// hard-cancelled.
    pub forced: bool,
    /// Connections still open when the server returned (0 unless a handler
    /// thread was wedged beyond even the forced grace).
    pub remaining_connections: usize,
}

/// State shared between the accept loop, connection threads, and shutdown
/// handles.
#[derive(Debug)]
struct Shared {
    service: Arc<QueryService>,
    config: NetConfig,
    draining: AtomicBool,
    /// Set when the drain deadline expires: connections abandon politeness
    /// and close as soon as their current request returns.
    forced: AtomicBool,
    /// Threaded into every request budget; cancelled on forced shutdown.
    hard_cancel: CancelToken,
    /// When drain started (micros since `started`); 0 = not draining.
    drain_started_us: Mutex<Option<Instant>>,
    active: Mutex<usize>,
    idle: Condvar,
    started: Instant,
}

impl Shared {
    fn active_count(&self) -> usize {
        *self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn connection_opened(&self) {
        *self.active.lock().unwrap_or_else(PoisonError::into_inner) += 1;
    }

    fn connection_closed(&self) {
        let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        *active = active.saturating_sub(1);
        if *active == 0 {
            self.idle.notify_all();
        }
    }

    /// Waits until no connection remains or `deadline` passes; true on idle.
    fn wait_idle_until(&self, deadline: Instant) -> bool {
        let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        while *active > 0 {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .idle
                .wait_timeout(active, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            active = guard;
        }
        true
    }

    fn drain_elapsed(&self) -> Option<Duration> {
        self.drain_started_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|t| t.elapsed())
    }

    /// Dumps the service's flight recorder to the configured postmortem
    /// file. Called on handler/connection panics and forced drains; a
    /// no-op unless [`NetConfig::postmortem`] is set. The dump is a
    /// point-in-time overwrite — the last incident wins, which is the one
    /// an operator debugging a crash loop wants.
    fn dump_postmortem(&self, cause: &'static str) {
        let Some(path) = &self.config.postmortem else {
            return;
        };
        let dump = self.service.postmortem_jsonl();
        let outcome = match std::fs::write(path, dump.as_bytes()) {
            Ok(()) => "written",
            Err(_) => "write_failed",
        };
        self.service.obs().event(
            "net.postmortem",
            &[
                ("cause", field::s(cause)),
                ("outcome", field::s(outcome)),
                ("bytes", field::uz(dump.len())),
            ],
        );
    }
}

/// Control handle for a running [`NetServer`]; clone freely.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Starts a graceful drain: stop accepting, serve in-flight work to
    /// completion (bounded by the drain deadline), then close. Idempotent.
    pub fn drain(&self) {
        let mut started = self
            .shared
            .drain_started_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if started.is_none() {
            *started = Some(Instant::now());
        }
        drop(started);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared
            .service
            .obs()
            .event("net.drain", &[("phase", field::s("started"))]);
    }

    /// True once [`ShutdownHandle::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Open connections right now.
    pub fn active_connections(&self) -> usize {
        self.shared.active_count()
    }
}

/// A bound-but-not-yet-running TCP front end over a [`QueryService`].
#[derive(Debug)]
pub struct NetServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and prepares the server.
    pub fn bind(
        service: Arc<QueryService>,
        addr: &str,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            listener,
            shared: Arc::new(Shared {
                service,
                config,
                draining: AtomicBool::new(false),
                forced: AtomicBool::new(false),
                hard_cancel: CancelToken::new(),
                drain_started_us: Mutex::new(None),
                active: Mutex::new(0),
                idle: Condvar::new(),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle for drains and health probes.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until drained; returns how shutdown went.
    pub fn run(self) -> io::Result<DrainReport> {
        let NetServer { listener, shared } = self;
        let tick = shared.config.tick;
        while !shared.draining.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => admit(&shared, stream),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(tick);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(listener); // stop accepting
        let deadline = Instant::now() + shared.config.drain_deadline;
        let drained = shared.wait_idle_until(deadline);
        let mut forced = false;
        if !drained {
            // Past the deadline: cancel every in-flight evaluation (their
            // budgets carry the token) and give connections a short grace
            // to write their final (truncated) replies and close.
            forced = true;
            shared.forced.store(true, Ordering::SeqCst);
            shared.hard_cancel.cancel();
            shared.service.obs().event(
                "net.drain",
                &[
                    ("phase", field::s("forced")),
                    ("active", field::uz(shared.active_count())),
                ],
            );
            shared.wait_idle_until(Instant::now() + shared.config.drain_deadline);
            // A forced drain is an incident: capture what the server was
            // doing in the moments leading up to it.
            shared.dump_postmortem("forced_drain");
        }
        let remaining = shared.active_count();
        shared.service.obs().event(
            "net.drain",
            &[
                ("phase", field::s("complete")),
                ("forced", field::b(forced)),
                ("remaining", field::uz(remaining)),
            ],
        );
        Ok(DrainReport {
            forced,
            remaining_connections: remaining,
        })
    }

    /// Runs the server on a background thread; returns the control handle
    /// and the join handle yielding the [`DrainReport`].
    pub fn spawn(
        self,
    ) -> (
        ShutdownHandle,
        std::thread::JoinHandle<io::Result<DrainReport>>,
    ) {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        (handle, join)
    }
}

/// Admits or sheds one freshly accepted connection.
fn admit(shared: &Arc<Shared>, mut stream: TcpStream) {
    let obs = shared.service.obs();
    let active = shared.active_count();
    if active >= shared.config.max_connections {
        obs.counter("recurs_net_connections_total", &[("result", "shed")], 1);
        if obs.enabled() {
            obs.event(
                "net.admission",
                &[("result", field::s("shed")), ("active", field::uz(active))],
            );
        }
        let reply = proto::error_reply(
            "overloaded",
            "connection limit reached",
            Some(shared.config.retry_after_ms),
        );
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let _ = crate::frame::write_frame(&mut stream, reply.as_bytes());
        return; // dropped: shed
    }
    obs.counter("recurs_net_connections_total", &[("result", "accepted")], 1);
    if obs.enabled() {
        obs.event(
            "net.admission",
            &[
                ("result", field::s("accepted")),
                ("active", field::uz(active + 1)),
            ],
        );
    }
    shared.connection_opened();
    let worker_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("recurs-net-conn".to_string())
        .spawn(move || {
            let shared = worker_shared;
            // Outer barrier: a panic that escapes the per-request barrier
            // kills this connection, never the server.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                connection_loop(&shared, &mut stream)
            }));
            if result.is_err() {
                shared.service.obs().counter(
                    "recurs_net_connections_total",
                    &[("result", "panicked")],
                    1,
                );
                shared.dump_postmortem("connection_panic");
            }
            shared.connection_closed();
        });
    if spawned.is_err() {
        // Thread spawn failed (resource exhaustion): treat as shed.
        shared.connection_closed();
        shared.service.obs().counter(
            "recurs_net_connections_total",
            &[("result", "spawn_failed")],
            1,
        );
    }
}

/// Why the connection loop ended (observability label).
enum CloseReason {
    PeerClosed,
    Quit,
    Idle,
    Drained,
    Forced,
    ProtocolError,
    IoError,
    Torn,
}

impl CloseReason {
    fn label(&self) -> &'static str {
        match self {
            CloseReason::PeerClosed => "peer_closed",
            CloseReason::Quit => "quit",
            CloseReason::Idle => "idle",
            CloseReason::Drained => "drained",
            CloseReason::Forced => "forced",
            CloseReason::ProtocolError => "protocol_error",
            CloseReason::IoError => "io_error",
            CloseReason::Torn => "torn",
        }
    }
}

fn connection_loop(shared: &Shared, stream: &mut TcpStream) {
    let reason = serve_connection(shared, stream);
    shared.service.obs().counter(
        "recurs_net_connections_closed_total",
        &[("reason", reason.label())],
        1,
    );
}

fn serve_connection(shared: &Shared, stream: &mut TcpStream) -> CloseReason {
    let config = &shared.config;
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.tick)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return CloseReason::IoError;
    }
    let mut reader = FrameReader::new();
    let mut last_activity = Instant::now();
    loop {
        if shared.forced.load(Ordering::SeqCst) {
            return CloseReason::Forced;
        }
        match reader.poll(stream, config.max_frame_len) {
            Ok(Poll::Frame(payload)) => {
                last_activity = Instant::now();
                match serve_frame(shared, stream, &payload) {
                    FrameServed::Continue => {}
                    FrameServed::Close(reason) => return reason,
                }
            }
            Ok(Poll::Pending) => {
                if last_activity.elapsed() >= config.idle_timeout {
                    // Slow-loris defense: no completed frame for too long
                    // (mid-frame dribble included). Tell the peer why, if
                    // it is still listening, then close.
                    let reply = proto::error_reply("idle", "idle timeout, closing", None);
                    let _ = write_reply(stream, &reply);
                    return CloseReason::Idle;
                }
                if shared.draining.load(Ordering::SeqCst) && !reader.mid_frame() {
                    let lingered = shared
                        .drain_elapsed()
                        .is_some_and(|d| d >= config.drain_linger);
                    if lingered {
                        return CloseReason::Drained;
                    }
                }
            }
            Err(FrameError::Closed) => return CloseReason::PeerClosed,
            Err(FrameError::Truncated) => {
                frame_error(shared, "torn");
                return CloseReason::Torn;
            }
            Err(e @ FrameError::Oversized { .. }) => {
                // The stream cannot be resynchronized after a bogus length
                // claim: one typed reply, then close.
                frame_error(shared, "oversized");
                let reply = proto::error_reply("protocol", &e.to_string(), None);
                let _ = write_reply(stream, &reply);
                return CloseReason::ProtocolError;
            }
            Err(FrameError::Io(_)) => return CloseReason::IoError,
        }
    }
}

/// Records one malformed/undecodable frame: counter plus a flight-recorder
/// event naming the defect, so postmortems show what the peer sent.
fn frame_error(shared: &Shared, reason: &'static str) {
    let obs = shared.service.obs();
    obs.counter("recurs_net_frame_errors_total", &[("reason", reason)], 1);
    if obs.enabled() {
        obs.event("net.frame_error", &[("reason", field::s(reason))]);
    }
}

/// What serving one frame decided about the connection.
enum FrameServed {
    Continue,
    Close(CloseReason),
}

/// Outcome labels for `recurs_net_requests_total`.
fn classify_reply(reply: &str) -> &'static str {
    if proto::is_overloaded_reply(reply) {
        "shed"
    } else if reply.contains("\"ok\":false") {
        "error"
    } else {
        "ok"
    }
}

fn serve_frame(shared: &Shared, stream: &mut TcpStream, payload: &[u8]) -> FrameServed {
    let received = Instant::now();
    let obs = shared.service.obs();
    let (reply, result, close) = match evaluate_frame(shared, payload, received) {
        Evaluated::Reply(reply) => {
            let result = classify_reply(&reply);
            (reply, result, None)
        }
        Evaluated::Deadline(msg) => (
            proto::error_reply("deadline", &msg, Some(shared.config.retry_after_ms)),
            "deadline",
            None,
        ),
        Evaluated::Protocol(msg) => {
            frame_error(shared, "malformed");
            (proto::error_reply("protocol", &msg, None), "error", None)
        }
        Evaluated::Internal => {
            // The handler panicked: the connection survives, but the flight
            // recorder holds the lead-up — dump it while it is fresh.
            shared.dump_postmortem("handler_panic");
            (
                proto::error_reply("internal", "internal error: request handler panicked", None),
                "internal",
                None,
            )
        }
        Evaluated::Health => {
            let reply = proto::health_reply(
                shared.draining.load(Ordering::SeqCst),
                shared.active_count(),
                shared.started.elapsed(),
            );
            (reply, "ok", None)
        }
        Evaluated::Quit => (proto::bye_reply(), "ok", Some(CloseReason::Quit)),
    };
    obs.counter("recurs_net_requests_total", &[("result", result)], 1);
    obs.observe(
        "recurs_net_request_seconds",
        &[],
        received.elapsed().as_secs_f64(),
    );
    if result == "shed" && obs.enabled() {
        obs.event("net.shed", &[("wait_us", field::us(received.elapsed()))]);
    }
    match write_reply(stream, &reply) {
        ReplyWrite::Ok => match close {
            Some(reason) => FrameServed::Close(reason),
            None => FrameServed::Continue,
        },
        ReplyWrite::Torn => FrameServed::Close(CloseReason::Torn),
        ReplyWrite::Failed => FrameServed::Close(CloseReason::IoError),
    }
}

/// What evaluating one frame's request produced.
enum Evaluated {
    /// A serve-protocol reply (answers, snapshot, error, shed, ...).
    Reply(String),
    /// The client-granted deadline expired before evaluation started.
    Deadline(String),
    /// The frame itself was malformed (bad UTF-8, bad directive).
    Protocol(String),
    /// The handler panicked (caught at the per-request barrier).
    Internal,
    /// `!health`, answered at the net layer.
    Health,
    /// `!quit`.
    Quit,
}

fn evaluate_frame(shared: &Shared, payload: &[u8], received: Instant) -> Evaluated {
    let Request {
        line,
        deadline,
        trace,
    } = match proto::parse_request(payload) {
        Ok(r) => r,
        Err(msg) => return Evaluated::Protocol(msg),
    };
    if line == "!health" {
        return Evaluated::Health;
    }
    // Remaining wall clock under the client's deadline, measured from frame
    // receipt (pipelined requests queue behind their predecessors, and that
    // queueing time counts).
    let remaining = deadline.map(|d| d.saturating_sub(received.elapsed()));
    if remaining == Some(Duration::ZERO) {
        return Evaluated::Deadline(format!(
            "deadline of {} ms expired before evaluation started",
            deadline.unwrap_or_default().as_millis()
        ));
    }
    // Derive the evaluation budget: the service default tightened to the
    // time remaining (never loosened), hard-cancellable on forced drain.
    let mut budget = shared.service.default_budget().clone();
    if let Some(rem) = remaining {
        budget.timeout = Some(budget.timeout.map_or(rem, |t| t.min(rem)));
    }
    let budget = budget.with_cancel(shared.hard_cancel.clone());
    let max_wait = match remaining {
        Some(rem) => shared.config.max_queue_wait.min(rem),
        None => shared.config.max_queue_wait,
    };
    let opts = LineOptions {
        budget: Some(budget),
        max_queue_wait: Some(max_wait),
        retry_after_ms: shared.config.retry_after_ms,
        trace,
    };
    let service = Arc::clone(&shared.service);
    // Per-request barrier: a panic in parsing/evaluation becomes a typed
    // `internal` reply and the connection (and its pipelined successors)
    // keeps going.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        #[cfg(any(test, feature = "fault-inject"))]
        crate::fault::handler_start();
        handle_line_with(&service, line, &opts)
    }));
    match outcome {
        Ok(LineOutcome::Reply(reply)) => Evaluated::Reply(reply),
        // Over TCP every frame gets exactly one reply: silence (blank or
        // comment frame) is an explicit ack.
        Ok(LineOutcome::Silent) => Evaluated::Reply(proto::noop_reply()),
        Ok(LineOutcome::Quit) => Evaluated::Quit,
        Err(_) => Evaluated::Internal,
    }
}

/// How writing a reply frame went.
enum ReplyWrite {
    Ok,
    /// Fault injection tore the frame; the connection must drop.
    #[cfg_attr(not(any(test, feature = "fault-inject")), allow(dead_code))]
    Torn,
    Failed,
}

fn write_reply(stream: &mut TcpStream, reply: &str) -> ReplyWrite {
    #[cfg(any(test, feature = "fault-inject"))]
    {
        if crate::fault::before_reply() == crate::fault::ReplyFault::Tear {
            let payload = reply.as_bytes();
            let len = payload.len() as u32;
            let mut torn = Vec::with_capacity(4 + payload.len() / 2);
            torn.extend_from_slice(&len.to_be_bytes());
            torn.extend_from_slice(&payload[..payload.len() / 2]);
            let _ = stream.write_all(&torn);
            let _ = stream.flush();
            return ReplyWrite::Torn;
        }
    }
    match crate::frame::write_frame(stream, reply.as_bytes()) {
        Ok(()) => ReplyWrite::Ok,
        Err(_) => ReplyWrite::Failed,
    }
}
