//! `recurs-net` — the fault-tolerant TCP front end over
//! [`recurs_serve::QueryService`].
//!
//! The wire protocol is the serve line protocol, length-framed (see
//! [`frame`]): one request per frame, one reply per frame, pipelined with
//! strict per-connection ordering. On top of it this crate adds
//! per-request deadlines ([`proto`]), bounded admission with explicit load
//! shedding, idle/slow-client timeouts, graceful drain with a hard-cancel
//! backstop ([`server`]), a blocking client ([`client`]), and a
//! load-generator harness + scorer ([`loadgen`], [`score`]). Fault hooks
//! for the chaos suite live in [`fault`] (test/`fault-inject` builds only).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
#[cfg(any(test, feature = "fault-inject"))]
pub mod fault;
pub mod frame;
pub mod loadgen;
pub mod proto;
pub mod score;
pub mod server;

pub use client::Client;
pub use loadgen::{LoadSpec, RetryPolicy};
pub use score::LoadReport;
pub use server::{DrainReport, NetConfig, NetServer, ShutdownHandle};
