//! Scoring for load-generator runs: latency percentiles, shed rate, and
//! saturation, separated from the driving harness (`loadgen`) so the same
//! scorer can grade live runs, replayed samples, and bench lanes.

use serde::{Serialize as _, Value};
use std::time::Duration;

/// Raw samples from one load run (mergeable across workers).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    /// Per-request wall latency in milliseconds, successful requests only.
    pub latencies_ms: Vec<f64>,
    /// Trace id per latency sample, index-aligned with `latencies_ms`
    /// (empty string for untraced requests, e.g. write pairs). Lets the
    /// report name the exact server-side traces behind the p99 tail.
    pub traces: Vec<String>,
    /// Requests answered `ok`.
    pub ok: u64,
    /// `overloaded` replies observed (each retry attempt counts).
    pub shed_replies: u64,
    /// Requests abandoned after exhausting retries on shed.
    pub shed_final: u64,
    /// Requests answered with a `deadline` error.
    pub deadline: u64,
    /// Requests answered with any other error.
    pub errors: u64,
    /// Retry attempts performed (after shed replies).
    pub retries: u64,
    /// Transport-level failures (torn frame, closed connection).
    pub transport_errors: u64,
}

impl Samples {
    /// Folds another worker's samples in.
    pub fn merge(&mut self, other: Samples) {
        self.latencies_ms.extend(other.latencies_ms);
        self.traces.extend(other.traces);
        self.ok += other.ok;
        self.shed_replies += other.shed_replies;
        self.shed_final += other.shed_final;
        self.deadline += other.deadline;
        self.errors += other.errors;
        self.retries += other.retries;
        self.transport_errors += other.transport_errors;
    }

    /// Logical requests that reached a final outcome.
    pub fn completed(&self) -> u64 {
        self.ok + self.shed_final + self.deadline + self.errors + self.transport_errors
    }
}

/// The scored result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Offered load target, requests/second.
    pub target_qps: f64,
    /// Completed-request throughput actually achieved.
    pub achieved_qps: f64,
    /// `achieved_qps / target_qps` — below ~1.0 the server saturated (or
    /// the generator could not keep pace).
    pub saturation: f64,
    /// Measured run duration in seconds.
    pub duration_s: f64,
    /// Latency percentiles over successful requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// `shed_replies / (completed + shed_replies)` — how often admission
    /// pushed back, counting every shed attempt.
    pub shed_rate: f64,
    /// The slowest traced requests at or above the p99 latency (worst
    /// first, capped at [`MAX_STRAGGLERS`]): `(trace_id, latency_ms)`.
    /// Feed an id to `obsctl spans <trace-file>` to see where it stalled.
    pub stragglers: Vec<(String, f64)>,
    /// The raw counters behind the rates.
    pub samples: Samples,
}

/// Cap on [`LoadReport::stragglers`].
pub const MAX_STRAGGLERS: usize = 5;

/// The traced samples at or above the `p99` cutoff, worst first, capped.
fn straggler_traces(samples: &Samples, p99: f64) -> Vec<(String, f64)> {
    let mut tail: Vec<(String, f64)> = samples
        .traces
        .iter()
        .zip(&samples.latencies_ms)
        .filter(|(trace, &lat)| !trace.is_empty() && lat >= p99)
        .map(|(trace, &lat)| (trace.clone(), lat))
        .collect();
    tail.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    tail.truncate(MAX_STRAGGLERS);
    tail
}

/// Nearest-rank percentile (q in 0..=100) over unsorted samples.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Scores one run's samples against its offered load.
pub fn score(samples: Samples, target_qps: f64, elapsed: Duration) -> LoadReport {
    let duration_s = elapsed.as_secs_f64().max(f64::EPSILON);
    let completed = samples.completed();
    let achieved_qps = completed as f64 / duration_s;
    let attempts = completed + samples.shed_replies;
    let shed_rate = if attempts == 0 {
        0.0
    } else {
        samples.shed_replies as f64 / attempts as f64
    };
    let mean_ms = if samples.latencies_ms.is_empty() {
        0.0
    } else {
        samples.latencies_ms.iter().sum::<f64>() / samples.latencies_ms.len() as f64
    };
    let p99_ms = percentile(&samples.latencies_ms, 99.0);
    LoadReport {
        target_qps,
        achieved_qps,
        saturation: if target_qps > 0.0 {
            achieved_qps / target_qps
        } else {
            0.0
        },
        duration_s,
        p50_ms: percentile(&samples.latencies_ms, 50.0),
        p95_ms: percentile(&samples.latencies_ms, 95.0),
        p99_ms,
        mean_ms,
        shed_rate,
        stragglers: straggler_traces(&samples, p99_ms),
        samples,
    }
}

impl LoadReport {
    /// The report as a JSON value (the `BENCH_load.json` record shape).
    pub fn to_value(&self) -> Value {
        Value::object([
            ("target_qps", self.target_qps.to_value()),
            ("achieved_qps", round3(self.achieved_qps)),
            ("saturation", round3(self.saturation)),
            ("duration_s", round3(self.duration_s)),
            ("p50_ms", round3(self.p50_ms)),
            ("p95_ms", round3(self.p95_ms)),
            ("p99_ms", round3(self.p99_ms)),
            ("mean_ms", round3(self.mean_ms)),
            ("shed_rate", round3(self.shed_rate)),
            ("ok", self.samples.ok.to_value()),
            ("shed_replies", self.samples.shed_replies.to_value()),
            ("shed_final", self.samples.shed_final.to_value()),
            ("deadline", self.samples.deadline.to_value()),
            ("errors", self.samples.errors.to_value()),
            ("retries", self.samples.retries.to_value()),
            ("transport_errors", self.samples.transport_errors.to_value()),
            (
                "stragglers",
                Value::Array(
                    self.stragglers
                        .iter()
                        .map(|(trace, latency_ms)| {
                            Value::object([
                                ("trace", Value::string(trace.clone())),
                                ("latency_ms", round3(*latency_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as one-line JSON text.
    pub fn to_json(&self) -> String {
        serde::json::to_string(&self.to_value())
    }
}

fn round3(v: f64) -> Value {
    Value::Float((v * 1000.0).round() / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn score_computes_rates() {
        let samples = Samples {
            latencies_ms: vec![1.0, 2.0, 3.0, 4.0],
            traces: vec![String::new(); 4],
            ok: 4,
            shed_replies: 4,
            shed_final: 2,
            deadline: 1,
            errors: 1,
            retries: 2,
            transport_errors: 0,
        };
        let report = score(samples, 8.0, Duration::from_secs(1));
        assert_eq!(report.samples.completed(), 8);
        assert!((report.achieved_qps - 8.0).abs() < 1e-9);
        assert!((report.saturation - 1.0).abs() < 1e-9);
        assert!((report.shed_rate - 4.0 / 12.0).abs() < 1e-9);
        assert!((report.mean_ms - 2.5).abs() < 1e-9);
        assert_eq!(report.p50_ms, 2.0);
    }

    #[test]
    fn report_serializes_to_flat_json() {
        let report = score(Samples::default(), 10.0, Duration::from_secs(2));
        let json = report.to_json();
        assert!(json.contains("\"target_qps\":10"), "{json}");
        assert!(json.contains("\"shed_rate\":0"), "{json}");
        assert!(json.contains("\"p99_ms\":0"), "{json}");
    }

    #[test]
    fn stragglers_name_the_p99_tail_worst_first() {
        let n = 200;
        let samples = Samples {
            latencies_ms: (1..=n).map(f64::from).collect(),
            // Every odd sample is traced; even ones (e.g. the 200ms worst)
            // are untraced writes and must not appear.
            traces: (1..=n)
                .map(|i| {
                    if i % 2 == 1 {
                        format!("{i:016x}")
                    } else {
                        String::new()
                    }
                })
                .collect(),
            ok: n as u64,
            ..Samples::default()
        };
        let report = score(samples, 100.0, Duration::from_secs(2));
        assert_eq!(report.p99_ms, 198.0);
        assert_eq!(report.stragglers.len(), 1, "{:?}", report.stragglers);
        assert_eq!(report.stragglers[0], (format!("{:016x}", 199), 199.0));
        let json = report.to_json();
        assert!(
            json.contains("\"stragglers\":[{\"trace\":\"00000000000000c7\""),
            "{json}"
        );
        // An untraced run reports an empty straggler list, not a panic.
        let report = score(Samples::default(), 10.0, Duration::from_secs(1));
        assert!(report.stragglers.is_empty());
        assert!(report.to_json().contains("\"stragglers\":[]"));
    }

    #[test]
    fn merge_folds_counters_and_latencies() {
        let mut a = Samples {
            latencies_ms: vec![1.0],
            ok: 1,
            ..Samples::default()
        };
        a.merge(Samples {
            latencies_ms: vec![2.0, 3.0],
            ok: 2,
            shed_replies: 1,
            retries: 1,
            ..Samples::default()
        });
        assert_eq!(a.latencies_ms.len(), 3);
        assert_eq!(a.ok, 3);
        assert_eq!(a.shed_replies, 1);
    }
}
