//! Length-prefixed framing over a byte stream.
//!
//! Every message — request or reply — is one frame: a 4-byte big-endian
//! length prefix followed by that many payload bytes (UTF-8 text of the
//! serve line protocol; replies are one JSON object, except `!metrics`
//! whose payload is multi-line Prometheus text ending in `# EOF`).
//!
//! The length prefix is validated *before* any payload is read: a prefix
//! above the configured ceiling is a typed [`FrameError::Oversized`] — the
//! connection cannot be resynchronized after a bogus length claim, so the
//! server answers with one framed protocol error and closes. Truncated
//! frames (EOF mid-frame) and plain IO failures are equally typed; nothing
//! in this module panics on wire input.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Size of the length prefix.
pub const LEN_PREFIX: usize = 4;

/// Default ceiling on a single frame's payload (1 MiB).
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream at a frame boundary — a clean close.
    Closed,
    /// The stream ended mid-frame (torn frame).
    Truncated,
    /// The length prefix claims more than the configured ceiling.
    Oversized {
        /// The claimed payload length.
        claimed: usize,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// An IO error other than EOF.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Truncated => f.write_str("stream ended mid-frame (torn frame)"),
            FrameError::Oversized { claimed, max } => {
                write!(f, "frame length {claimed} exceeds the {max}-byte ceiling")
            }
            FrameError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame with blocking semantics (used by clients and tests; the
/// server side reads incrementally through [`FrameReader`] so it can poll
/// drain/idle state between partial reads).
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; LEN_PREFIX];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let claimed = u32::from_be_bytes(prefix) as usize;
    if claimed > max_len {
        return Err(FrameError::Oversized {
            claimed,
            max: max_len,
        });
    }
    let mut payload = vec![0u8; claimed];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(payload),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// What one incremental read step produced.
pub enum Poll {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// No complete frame yet; the read timed out (tick) — the caller checks
    /// drain/idle state and polls again.
    Pending,
}

/// Incremental frame reader over a [`TcpStream`] whose read timeout is the
/// server's poll tick: each [`FrameReader::poll`] makes at most one `read`
/// call, so the connection loop regains control every tick to check drain
/// flags, idle deadlines, and forced-shutdown state.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    chunk: [u8; 4096],
}

impl Default for FrameReader {
    fn default() -> FrameReader {
        FrameReader::new()
    }
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            chunk: [0u8; 4096],
        }
    }

    /// True when a frame has been partially received — the peer owes us the
    /// rest, so drain handling waits (bounded) instead of closing on it.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to complete one frame: first from already-buffered bytes, then
    /// with a single `read` (bounded by the stream's read timeout).
    pub fn poll(&mut self, stream: &mut TcpStream, max_len: usize) -> Result<Poll, FrameError> {
        loop {
            if let Some(frame) = self.take_frame(max_len)? {
                return Ok(Poll::Frame(frame));
            }
            match stream.read(&mut self.chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::Closed
                    } else {
                        FrameError::Truncated
                    });
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&self.chunk[..n]);
                    // Loop: the chunk may hold one or more complete frames.
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Poll::Pending);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Splits one complete frame off the front of the buffer, if present.
    fn take_frame(&mut self, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < LEN_PREFIX {
            return Ok(None);
        }
        let claimed =
            u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if claimed > max_len {
            return Err(FrameError::Oversized {
                claimed,
                max: max_len,
            });
        }
        if self.buf.len() < LEN_PREFIX + claimed {
            return Ok(None);
        }
        let rest = self.buf.split_off(LEN_PREFIX + claimed);
        let mut frame = std::mem::replace(&mut self.buf, rest);
        frame.drain(..LEN_PREFIX);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p).unwrap();
        }
        out
    }

    #[test]
    fn round_trip_one_frame() {
        let bytes = framed(&[b"hello"]);
        let mut r = &bytes[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_is_typed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut &bytes[..], 1024).unwrap_err();
        assert!(
            matches!(err, FrameError::Oversized { max: 1024, .. }),
            "{err}"
        );
    }

    #[test]
    fn truncated_frame_is_typed() {
        let mut bytes = framed(&[b"hello"]);
        bytes.truncate(bytes.len() - 2);
        let err = read_frame(&mut &bytes[..], 1024).unwrap_err();
        assert!(matches!(err, FrameError::Truncated), "{err}");
    }

    #[test]
    fn empty_frame_round_trips() {
        let bytes = framed(&[b""]);
        assert_eq!(read_frame(&mut &bytes[..], 1024).unwrap(), b"");
    }

    #[test]
    fn take_frame_splits_pipelined_frames() {
        let mut reader = FrameReader::new();
        reader.buf = framed(&[b"one", b"two", b"three"]);
        assert_eq!(reader.take_frame(1024).unwrap().unwrap(), b"one");
        assert!(reader.mid_frame());
        assert_eq!(reader.take_frame(1024).unwrap().unwrap(), b"two");
        assert_eq!(reader.take_frame(1024).unwrap().unwrap(), b"three");
        assert!(reader.take_frame(1024).unwrap().is_none());
        assert!(!reader.mid_frame());
    }

    #[test]
    fn take_frame_reports_oversized_claims_from_garbage() {
        let mut reader = FrameReader::new();
        // Interleaved garbage is indistinguishable from a length prefix;
        // ASCII text decodes as a huge claimed length and trips the ceiling.
        reader.buf = b"GET / HTTP/1.1\r\n".to_vec();
        assert!(matches!(
            reader.take_frame(1 << 20),
            Err(FrameError::Oversized { .. })
        ));
    }
}
