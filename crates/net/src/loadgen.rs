//! The load-generator harness: replays a mixed read/write workload against
//! a running server at a target rate, with client-side retry + jittered
//! exponential backoff on shed requests. Scoring lives in [`crate::score`]
//! (harness/scorer split), so the same grading applies to live runs and
//! bench lanes.
//!
//! State preservation: every write the generator issues is an insert of a
//! synthetic fact from a reserved key range, paired with its own delete in
//! the same logical operation, so a run that completes leaves the server's
//! database exactly as it found it (the bench lane and the drain smoke both
//! rely on this).

use crate::client::{classify, Client, ReplyKind};
use crate::score::{score, LoadReport, Samples};
use rand::{Rng, SeedableRng};
use std::io;
use std::time::{Duration, Instant};

/// Client-side retry behavior for shed (`overloaded`) replies.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts after the first before giving up (`shed_final`).
    pub max_retries: u32,
    /// First backoff; doubles per retry. The server's `retry_after_ms` hint
    /// raises (never lowers) the computed backoff.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address, e.g. `127.0.0.1:4004`.
    pub addr: String,
    /// Concurrent client connections (one worker thread each).
    pub connections: usize,
    /// Offered load across all connections, requests/second.
    pub qps: f64,
    /// How long to run.
    pub duration: Duration,
    /// Fraction of logical operations that are write pairs (insert+delete)
    /// instead of queries, in `0.0..=1.0`.
    pub update_ratio: f64,
    /// Client-granted deadline attached to each query (writes are sent
    /// without one: a deadlined write could apply half of a pair).
    pub deadline_ms: Option<u64>,
    /// Queries bind the first argument to a key in `1..=key_space`.
    pub key_space: u64,
    /// The EDB predicate written by update pairs.
    pub update_predicate: String,
    /// The IDB predicate queried.
    pub query_predicate: String,
    /// Base RNG seed; worker `i` uses `seed + i`.
    pub seed: u64,
    /// Retry behavior on shed replies.
    pub retry: RetryPolicy,
}

impl Default for LoadSpec {
    fn default() -> LoadSpec {
        LoadSpec {
            addr: "127.0.0.1:4004".to_string(),
            connections: 4,
            qps: 200.0,
            duration: Duration::from_secs(2),
            update_ratio: 0.1,
            deadline_ms: Some(1000),
            key_space: 100,
            update_predicate: "A".to_string(),
            query_predicate: "P".to_string(),
            seed: 1,
            retry: RetryPolicy::default(),
        }
    }
}

/// Synthetic-fact key range reserved for write pairs, far above any real
/// dataset key so inserts never collide with existing facts.
const WRITE_KEY_BASE: u64 = 1 << 40;

/// Runs the load and scores it. Fails only if no worker could connect; all
/// in-run failures are recorded as samples, not errors.
pub fn run(spec: &LoadSpec) -> io::Result<LoadReport> {
    let connections = spec.connections.max(1);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for worker in 0..connections {
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || worker_run(&spec, worker)));
    }
    let mut merged = Samples::default();
    let mut connect_errors = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(samples)) => merged.merge(samples),
            Ok(Err(_)) => connect_errors += 1,
            Err(_) => connect_errors += 1,
        }
    }
    if connect_errors == connections {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("no load worker could connect to {}", spec.addr),
        ));
    }
    Ok(score(merged, spec.qps, started.elapsed()))
}

fn worker_run(spec: &LoadSpec, worker: usize) -> io::Result<Samples> {
    let mut client = Client::connect(&spec.addr, Duration::from_secs(5))?;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(spec.seed.wrapping_add(worker as u64));
    let mut samples = Samples::default();
    let per_worker_qps = spec.qps / spec.connections.max(1) as f64;
    let interval = Duration::from_secs_f64(1.0 / per_worker_qps.max(0.001));
    let deadline = Instant::now() + spec.duration;
    let mut next_send = Instant::now();
    let mut seq = 0u64;
    while Instant::now() < deadline {
        // Open-loop pacing: each logical op has a scheduled slot; falling
        // behind (server saturated) shows up as achieved_qps < target.
        if let Some(wait) = next_send.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        next_send += interval;
        seq += 1;
        if rng.gen_bool(spec.update_ratio) {
            run_write_pair(spec, &mut client, &mut samples, worker, seq);
        } else {
            let key = rng.gen_range(1..=spec.key_space.max(1));
            run_query(spec, &mut client, &mut samples, &mut rng, key);
        }
    }
    Ok(samples)
}

/// One query with retry-on-shed: the shed reply's `retry_after_ms` hint
/// floors a jittered exponential backoff.
fn run_query(
    spec: &LoadSpec,
    client: &mut Client,
    samples: &mut Samples,
    rng: &mut rand::rngs::SmallRng,
    key: u64,
) {
    // Mint a client-side trace id and attach it to every attempt: the
    // server tags its spans with it, so a straggler in the report can be
    // looked up in the server-side trace by the same id.
    let trace = recurs_obs::TraceId::mint();
    let line = match spec.deadline_ms {
        Some(ms) => format!(
            "@deadline={ms} @trace={trace} ?- {}({key}, y).",
            spec.query_predicate
        ),
        None => format!("@trace={trace} ?- {}({key}, y).", spec.query_predicate),
    };
    let mut attempt = 0u32;
    loop {
        let sent = Instant::now();
        let reply = match client.roundtrip(&line) {
            Ok(r) => r,
            Err(_) => {
                samples.transport_errors += 1;
                return;
            }
        };
        let latency_ms = sent.elapsed().as_secs_f64() * 1000.0;
        match classify(&reply) {
            ReplyKind::Ok => {
                samples.ok += 1;
                samples.latencies_ms.push(latency_ms);
                samples.traces.push(trace.to_string());
                return;
            }
            ReplyKind::Overloaded { retry_after_ms } => {
                samples.shed_replies += 1;
                if attempt >= spec.retry.max_retries {
                    samples.shed_final += 1;
                    return;
                }
                attempt += 1;
                samples.retries += 1;
                std::thread::sleep(backoff(&spec.retry, attempt, retry_after_ms, rng));
            }
            ReplyKind::Deadline => {
                samples.deadline += 1;
                return;
            }
            ReplyKind::Error => {
                samples.errors += 1;
                return;
            }
        }
    }
}

/// Jittered exponential backoff: `base * 2^(attempt-1)` floored by the
/// server's hint, capped, then multiplied by a uniform jitter in
/// `[0.5, 1.5)` so retry herds decorrelate.
fn backoff(
    policy: &RetryPolicy,
    attempt: u32,
    hint_ms: u64,
    rng: &mut rand::rngs::SmallRng,
) -> Duration {
    let exp = policy
        .base_backoff
        .saturating_mul(1u32 << (attempt - 1).min(16));
    let floor = Duration::from_millis(hint_ms);
    let raw = exp.max(floor).min(policy.max_backoff);
    let jitter = 0.5 + rng.gen_range(0..1000) as f64 / 1000.0;
    raw.mul_f64(jitter)
}

/// One write pair: insert a synthetic fact, then delete it. Updates are not
/// subject to shedding or deadlines (a half-applied pair would corrupt the
/// state-preservation invariant); both halves are latency-sampled.
fn run_write_pair(
    spec: &LoadSpec,
    client: &mut Client,
    samples: &mut Samples,
    worker: usize,
    seq: u64,
) {
    let k1 = WRITE_KEY_BASE + (worker as u64) * (1 << 20) + seq;
    let k2 = k1 + (1 << 19);
    let pred = &spec.update_predicate;
    for line in [
        format!("+{pred}({k1}, {k2})."),
        format!("-{pred}({k1}, {k2})."),
    ] {
        let sent = Instant::now();
        match client.roundtrip(&line) {
            Ok(reply) => {
                let latency_ms = sent.elapsed().as_secs_f64() * 1000.0;
                match classify(&reply) {
                    ReplyKind::Ok => {
                        samples.ok += 1;
                        samples.latencies_ms.push(latency_ms);
                        // Untraced (writes carry no @trace): keep the
                        // trace column index-aligned with latencies.
                        samples.traces.push(String::new());
                    }
                    ReplyKind::Overloaded { .. } => samples.shed_replies += 1,
                    ReplyKind::Deadline => samples.deadline += 1,
                    ReplyKind::Error => samples.errors += 1,
                }
            }
            Err(_) => {
                samples.transport_errors += 1;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    #[test]
    fn backoff_respects_hint_cap_and_jitter_band() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
        };
        let mut rng = SmallRng::seed_from_u64(42);
        for attempt in 1..=6 {
            let d = backoff(&policy, attempt, 25, &mut rng);
            // Floor 25ms (hint), cap 100ms, jitter in [0.5, 1.5).
            assert!(d >= Duration::from_millis(12), "attempt {attempt}: {d:?}");
            assert!(d < Duration::from_millis(150), "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn backoff_grows_exponentially_until_the_cap() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(8),
            max_backoff: Duration::from_secs(1),
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let d1 = backoff(&policy, 1, 0, &mut rng);
        let d4 = backoff(&policy, 4, 0, &mut rng);
        assert!(d4 > d1, "{d1:?} vs {d4:?}");
        assert!(d4 <= Duration::from_millis(96), "{d4:?}"); // 64ms * 1.5 max
    }

    #[test]
    fn spec_defaults_are_sane() {
        let spec = LoadSpec::default();
        assert!(spec.update_ratio < 1.0);
        assert!(spec.qps > 0.0);
        assert!(spec.connections > 0);
    }
}
