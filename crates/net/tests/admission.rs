//! Admission behavior over TCP: bounded queue waits under saturation,
//! typed shed replies carrying the retry-after hint, connection-cap
//! shedding, and the load generator's backoff consuming the hint.

mod common;

use common::{connect, fast_config, spawn_server, tc_service};
use recurs_net::loadgen::{self, LoadSpec, RetryPolicy};
use recurs_net::proto::{json_str_field, json_u64_field};
use recurs_net::{Client, NetConfig};
use recurs_serve::ServeConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The saturation tests are timing-sensitive and CPU-heavy (a hammer thread
/// running free queries in a debug build); running two at once starves both
/// past their client timeouts, so they serialize on this gate.
static HEAVY: Mutex<()> = Mutex::new(());

fn heavy() -> MutexGuard<'static, ()> {
    HEAVY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A serve config with a single evaluation slot, so one expensive query
/// saturates admission.
fn one_slot() -> ServeConfig {
    ServeConfig {
        max_concurrent: 1,
        cache_capacity: 0, // cache hits would bypass the contention
        ..ServeConfig::default()
    }
}

/// Spawns a thread hammering the single evaluation slot with expensive
/// free queries until the returned flag is set.
fn saturate(addr: &str, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    let addr = addr.to_string();
    std::thread::spawn(move || {
        let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
        while !stop.load(Ordering::SeqCst) {
            if client.roundtrip("?- P(x, y).").is_err() {
                break;
            }
        }
        let _ = client.roundtrip("!quit");
    })
}

#[test]
fn saturated_slot_sheds_with_the_configured_retry_hint_within_a_bounded_wait() {
    let _gate = heavy();
    let config = NetConfig {
        max_queue_wait: Duration::from_millis(20),
        retry_after_ms: 77,
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(500, one_slot()), config);
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = saturate(&addr, Arc::clone(&stop));
    std::thread::sleep(Duration::from_millis(60)); // let the slot fill

    let mut client = connect(&addr);
    let mut shed = None;
    // The hammer releases the slot between its queries; retry until our
    // probe lands while the slot is held.
    for _ in 0..50 {
        let started = Instant::now();
        let reply = client.roundtrip("?- P(1, y).").expect("reply");
        let waited = started.elapsed();
        if json_str_field(&reply, "type") == Some("overloaded") {
            assert!(
                waited < Duration::from_secs(2),
                "shed must be bounded by max_queue_wait, waited {waited:?}"
            );
            shed = Some(reply);
            break;
        }
    }
    let reply = shed.expect("a probe should get shed while the slot is held");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert_eq!(
        json_u64_field(&reply, "retry_after_ms"),
        Some(77),
        "shed replies must carry the configured hint: {reply}"
    );

    stop.store(true, Ordering::SeqCst);
    hammer.join().expect("hammer thread");
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn shed_request_succeeds_after_backing_off() {
    let _gate = heavy();
    let config = NetConfig {
        max_queue_wait: Duration::from_millis(10),
        retry_after_ms: 25,
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(500, one_slot()), config);
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = saturate(&addr, Arc::clone(&stop));
    std::thread::sleep(Duration::from_millis(60));

    let mut client = connect(&addr);
    let mut saw_shed = false;
    let mut answered = false;
    for _ in 0..200 {
        let reply = client.roundtrip("?- P(1, y).").expect("reply");
        match json_str_field(&reply, "type") {
            Some("overloaded") => {
                saw_shed = true;
                let hint = json_u64_field(&reply, "retry_after_ms").unwrap_or(25);
                std::thread::sleep(Duration::from_millis(hint));
            }
            Some("answers") => {
                answered = true;
                if saw_shed {
                    break; // shed, backed off, then succeeded: the contract
                }
            }
            other => panic!("unexpected reply type {other:?}: {reply}"),
        }
    }
    assert!(saw_shed, "the saturated slot should shed at least once");
    assert!(answered, "retrying after the hint must eventually succeed");

    stop.store(true, Ordering::SeqCst);
    hammer.join().expect("hammer thread");
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn connection_cap_sheds_new_connections_with_a_typed_reply() {
    let config = NetConfig {
        max_connections: 1,
        retry_after_ms: 99,
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(8, one_slot()), config);
    let mut first = connect(&addr);
    first
        .roundtrip("!health")
        .expect("first connection admitted");
    let mut second = connect(&addr);
    let reply = second.recv().expect("shed notice");
    assert_eq!(
        json_str_field(&reply, "type"),
        Some("overloaded"),
        "{reply}"
    );
    assert_eq!(
        json_u64_field(&reply, "retry_after_ms"),
        Some(99),
        "{reply}"
    );
    // The first connection is unaffected.
    let reply = first.roundtrip("?- P(1, y).").expect("still serving");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(first);
    drop(second);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn loadgen_backoff_consumes_shed_hints_and_still_makes_progress() {
    let _gate = heavy();
    let config = NetConfig {
        max_queue_wait: Duration::from_millis(5),
        retry_after_ms: 10,
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(500, one_slot()), config);
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = saturate(&addr, Arc::clone(&stop));
    std::thread::sleep(Duration::from_millis(60));

    // Release the hammer partway through the run: the first stretch proves
    // shedding + retries happen, the tail proves backed-off retries land
    // once capacity frees up (on a loaded machine the single slot may never
    // free while the hammer runs, so racing it end-to-end would be flaky).
    let releaser = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            stop.store(true, Ordering::SeqCst);
        })
    };

    let report = loadgen::run(&LoadSpec {
        addr: addr.clone(),
        connections: 2,
        qps: 150.0,
        duration: Duration::from_millis(1200),
        update_ratio: 0.0,
        deadline_ms: None,
        key_space: 10,
        seed: 7,
        retry: RetryPolicy {
            max_retries: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
        },
        ..LoadSpec::default()
    })
    .expect("load run");

    releaser.join().expect("releaser thread");
    hammer.join().expect("hammer thread");

    assert!(
        report.samples.shed_replies > 0,
        "a single busy slot must shed some load: {report:?}"
    );
    assert!(
        report.samples.retries > 0,
        "the generator must retry shed requests: {report:?}"
    );
    assert!(
        report.samples.ok > 0,
        "backed-off retries must eventually land: {report:?}"
    );
    assert!(
        report.shed_rate > 0.0 && report.shed_rate < 1.0,
        "{report:?}"
    );
    assert_eq!(report.samples.transport_errors, 0, "{report:?}");

    handle.drain();
    join.join().expect("server thread").expect("run ok");
}
