//! Shared fixtures for the net integration suites: a transitive-closure
//! service over a chain graph, and a spawned in-process server.

#![allow(dead_code)]

use recurs_datalog::database::Database;
use recurs_datalog::parser::parse_program;
use recurs_datalog::rule::LinearRecursion;
use recurs_net::{Client, NetConfig, NetServer, ShutdownHandle};
use recurs_serve::{QueryService, ServeConfig};
use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub fn tc() -> LinearRecursion {
    recurs_datalog::validate::validate_with_generic_exit(
        &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
    )
    .expect("TC validates")
}

pub fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", recurs_workload::graphs::chain(n));
    db.insert_relation("E", recurs_workload::graphs::chain(n));
    db
}

/// A transitive-closure service over `chain(n)` under `config`.
pub fn tc_service(n: u64, config: ServeConfig) -> Arc<QueryService> {
    Arc::new(QueryService::new(tc(), tc_db(n), config))
}

/// A spawned server over `service`; returns its address, control handle,
/// and the join handle yielding the drain report.
pub fn spawn_server(
    service: Arc<QueryService>,
    config: NetConfig,
) -> (
    String,
    ShutdownHandle,
    JoinHandle<io::Result<recurs_net::DrainReport>>,
) {
    let server = NetServer::bind(service, "127.0.0.1:0", config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr").to_string();
    let (handle, join) = server.spawn();
    (addr, handle, join)
}

/// A client with a test-friendly 5s timeout.
pub fn connect(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(5)).expect("connect to test server")
}

/// A config with a fast tick and short linger so drain tests run quickly.
pub fn fast_config() -> NetConfig {
    NetConfig {
        tick: Duration::from_millis(2),
        drain_linger: Duration::from_millis(40),
        ..NetConfig::default()
    }
}
