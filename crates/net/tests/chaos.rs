//! Chaos suite (requires `--features fault-inject`): injected torn reply
//! frames, stalled sockets, handler panics, and mid-request disconnects
//! must never let a panic escape a connection handler, never leave an
//! accepted request without exactly one framed reply or a clean close, and
//! never corrupt the database/snapshot chain. Every scenario ends with a
//! differential check against an untouched control service.

#![cfg(feature = "fault-inject")]

mod common;

use common::{connect, fast_config, spawn_server, tc_service};
use recurs_datalog::parser::parse_atom;
use recurs_net::fault::{arm, quiesce, FaultPlan};
use recurs_net::proto::{json_str_field, json_u64_field};
use recurs_net::{Client, NetConfig};
use recurs_serve::{QueryService, ServeConfig};
use std::time::Duration;

const N: u64 = 24;

/// Differential invariant: after chaos, the served state must be
/// indistinguishable from an untouched control service — same snapshot
/// fingerprint, same answers to probe queries.
fn assert_matches_control(client: &mut Client, control: &QueryService) {
    let snap = client.roundtrip("!snapshot").expect("snapshot after chaos");
    assert_eq!(
        json_str_field(&snap, "fingerprint"),
        Some(control.snapshot().fingerprint().to_string().as_str()),
        "snapshot chain diverged from control: {snap}"
    );
    for k in [1, N / 2, N - 1] {
        let reply = client
            .roundtrip(&format!("?- P({k}, y)."))
            .expect("probe query");
        let expected = control
            .query(&parse_atom(&format!("P({k}, y)")).expect("probe parses"))
            .expect("control query")
            .answers
            .len() as u64;
        assert_eq!(
            json_u64_field(&reply, "count"),
            Some(expected),
            "answers diverged from control for P({k}, y): {reply}"
        );
    }
}

#[test]
fn handler_panic_becomes_a_typed_internal_reply_and_the_connection_survives() {
    let control = tc_service(N, ServeConfig::default());
    let (addr, handle, join) = spawn_server(tc_service(N, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    client.roundtrip("!health").expect("admitted");
    {
        let _g = arm(FaultPlan {
            panic_in_handler: true,
            ..FaultPlan::default()
        });
        let reply = client
            .roundtrip("?- P(1, y).")
            .expect("typed reply, not a dead socket");
        assert_eq!(json_str_field(&reply, "type"), Some("internal"), "{reply}");
        assert!(reply.contains("\"ok\":false"), "{reply}");
        // Same connection, next pipelined request: unharmed.
        let reply = client.roundtrip("?- P(1, y).").expect("still serving");
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }
    assert_matches_control(&mut client, &control);
    drop(client);
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced);
}

#[test]
fn torn_reply_frame_drops_the_connection_but_not_the_server_or_state() {
    let control = tc_service(N, ServeConfig::default());
    let (addr, handle, join) = spawn_server(tc_service(N, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    client.roundtrip("!health").expect("admitted");
    {
        let _g = arm(FaultPlan {
            tear_reply_after: Some(2),
            ..FaultPlan::default()
        });
        // Mixed traffic: queries plus an atomic cancelling update group (a
        // no-op by construction, so any interruption point leaves state
        // equal to the control).
        let mut torn = false;
        for line in [
            "?- P(1, y).",
            "+A(90, 91) -A(90, 91).",
            "?- P(2, y).",
            "?- P(3, y).",
            "?- P(4, y).",
        ] {
            match client.roundtrip(line) {
                Ok(reply) => assert!(reply.contains("\"ok\""), "{reply}"),
                Err(_) => {
                    torn = true;
                    break;
                }
            }
        }
        assert!(torn, "the armed tear must surface as a transport error");
    }
    // The torn connection is dead; the server is not.
    let mut client = connect(&addr);
    assert_matches_control(&mut client, &control);
    drop(client);
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced);
}

#[test]
fn stalled_reply_is_bounded_by_the_client_timeout_and_the_server_recovers() {
    let control = tc_service(N, ServeConfig::default());
    let (addr, handle, join) = spawn_server(tc_service(N, ServeConfig::default()), fast_config());
    {
        let _g = arm(FaultPlan {
            stall_reply: Some(Duration::from_millis(400)),
            ..FaultPlan::default()
        });
        let mut client = Client::connect(&addr, Duration::from_millis(100)).expect("connect");
        client.send("?- P(1, y).").expect("send");
        // The stalled reply must not arrive inside the client timeout.
        assert!(
            client.recv().is_err(),
            "reply should have stalled past the timeout"
        );
    }
    // Disarmed: a fresh connection is served promptly and state is intact.
    let mut client = connect(&addr);
    assert_matches_control(&mut client, &control);
    drop(client);
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced);
}

#[test]
fn mid_request_disconnects_leave_the_server_healthy() {
    let _g = quiesce();
    let control = tc_service(N, ServeConfig::default());
    let (addr, handle, join) = spawn_server(tc_service(N, ServeConfig::default()), fast_config());
    for _ in 0..5 {
        let mut client = connect(&addr);
        // Fire a request and vanish before reading the reply.
        client.send("?- P(x, y).").expect("send");
        drop(client);
    }
    let mut client = connect(&addr);
    assert_matches_control(&mut client, &control);
    drop(client);
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(
        !report.forced,
        "abandoned requests must not wedge the drain"
    );
    assert_eq!(report.remaining_connections, 0);
}

#[test]
fn worker_panic_during_drain_still_drains_cleanly() {
    let control = tc_service(N, ServeConfig::default());
    let postmortem = std::env::temp_dir().join(format!(
        "recurs-chaos-postmortem-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&postmortem);
    let config = NetConfig {
        drain_linger: Duration::from_millis(200),
        postmortem: Some(postmortem.clone()),
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(N, ServeConfig::default()), config);
    let mut client = connect(&addr);
    client.roundtrip("!health").expect("admitted");
    {
        let _g = arm(FaultPlan {
            panic_in_handler: true,
            ..FaultPlan::default()
        });
        // Drain with a poisoned request in flight: the panic must neither
        // escape nor stall the drain.
        client.send("?- P(1, y).").expect("send");
        handle.drain();
        let reply = client
            .recv()
            .expect("the panicked request still gets its one reply");
        assert_eq!(json_str_field(&reply, "type"), Some("internal"), "{reply}");
        // Served within the linger window: verify state then let go.
        assert_matches_control(&mut client, &control);
    }
    drop(client);
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced, "an injected panic must not force the drain");
    assert_eq!(report.remaining_connections, 0);
    // The handler panic dumped the flight recorder: a non-empty postmortem
    // file whose every line is a well-formed trace event.
    let dump = std::fs::read_to_string(&postmortem).expect("postmortem file written");
    assert!(!dump.trim().is_empty(), "postmortem must not be empty");
    for line in dump.lines() {
        let v = recurs_obs::jsonl::parse(line).expect("postmortem line parses");
        assert!(v.get("kind").is_some(), "{line}");
    }
    let _ = std::fs::remove_file(&postmortem);
}

#[test]
fn torn_request_frame_from_the_client_is_contained() {
    let _g = quiesce();
    let control = tc_service(N, ServeConfig::default());
    let (addr, handle, join) = spawn_server(tc_service(N, ServeConfig::default()), fast_config());
    {
        use std::io::Write as _;
        let mut client = connect(&addr);
        client.roundtrip("!health").expect("admitted");
        // Claim 50 bytes, send 5, disconnect: a torn request frame.
        let stream = client.stream_mut();
        stream.write_all(&50u32.to_be_bytes()).expect("prefix");
        stream.write_all(b"?- P(").expect("partial");
        stream.flush().expect("flush");
        drop(client);
    }
    let mut client = connect(&addr);
    assert_matches_control(&mut client, &control);
    drop(client);
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced);
    assert_eq!(report.remaining_connections, 0);
}
