//! Basic TCP front-end behavior: framed round trips, pipelining with
//! strict reply ordering, deadlines, health, idle/slow-loris defense,
//! malformed frames, metrics exposure, and graceful drain.

mod common;

use common::{connect, fast_config, spawn_server, tc_service};
use recurs_net::frame::{self, FrameError};
use recurs_net::proto::{json_str_field, json_u64_field};
use recurs_net::NetConfig;
use recurs_serve::ServeConfig;
use std::io::Write;
use std::time::{Duration, Instant};

#[test]
fn query_round_trip_over_tcp() {
    let (addr, handle, join) = spawn_server(tc_service(8, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    let reply = client.roundtrip("?- P(1, y).").expect("round trip");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert_eq!(json_str_field(&reply, "type"), Some("answers"));
    assert_eq!(json_u64_field(&reply, "count"), Some(7));
    drop(client);
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced);
    assert_eq!(report.remaining_connections, 0);
}

#[test]
fn pipelined_requests_get_replies_in_order() {
    let (addr, handle, join) = spawn_server(tc_service(16, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    // Fire all requests before reading any reply.
    for k in 1..=10 {
        client.send(&format!("?- P({k}, y).")).expect("send");
    }
    for k in 1..=10 {
        let reply = client.recv().expect("reply");
        assert_eq!(
            json_str_field(&reply, "query"),
            Some(format!("P({k}, y)").as_str()),
            "reply {k} out of order: {reply}"
        );
        assert_eq!(json_u64_field(&reply, "count"), Some(16 - k));
    }
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn updates_and_queries_interleave_on_one_connection() {
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    let before = client.roundtrip("!snapshot").expect("snapshot");
    let fp_before = json_str_field(&before, "fingerprint")
        .expect("fingerprint")
        .to_string();
    let reply = client.roundtrip("+A(4, 5) +E(4, 5).").expect("insert");
    assert_eq!(json_u64_field(&reply, "version"), Some(1), "{reply}");
    let reply = client.roundtrip("?- P(1, y).").expect("query");
    assert_eq!(json_u64_field(&reply, "count"), Some(4), "{reply}");
    let reply = client.roundtrip("-A(4, 5) -E(4, 5).").expect("delete");
    assert_eq!(json_u64_field(&reply, "version"), Some(2), "{reply}");
    let after = client.roundtrip("!snapshot").expect("snapshot");
    assert_eq!(
        json_str_field(&after, "fingerprint"),
        Some(fp_before.as_str()),
        "state must return to the initial fingerprint"
    );
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn blank_and_comment_frames_get_noop_acks() {
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    for line in ["", "   ", "% a comment", "# another"] {
        let reply = client.roundtrip(line).expect("round trip");
        assert_eq!(
            json_str_field(&reply, "type"),
            Some("noop"),
            "{line:?} → {reply}"
        );
    }
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn quit_gets_bye_then_clean_close() {
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    let reply = client.roundtrip("!quit").expect("bye");
    assert_eq!(json_str_field(&reply, "type"), Some("bye"), "{reply}");
    assert!(matches!(client.recv(), Err(FrameError::Closed)));
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn expired_deadline_gets_a_typed_error_not_silence() {
    let (addr, handle, join) = spawn_server(tc_service(8, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    let reply = client.roundtrip("@deadline=0 ?- P(1, y).").expect("reply");
    assert_eq!(json_str_field(&reply, "type"), Some("deadline"), "{reply}");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    // The connection survives a deadlined request.
    let reply = client.roundtrip("?- P(1, y).").expect("still serving");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn health_reports_accepting_then_draining() {
    let config = NetConfig {
        drain_linger: Duration::from_secs(5), // hold connections open while we probe
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), config);
    let mut client = connect(&addr);
    let reply = client.roundtrip("!health").expect("health");
    assert_eq!(
        json_str_field(&reply, "state"),
        Some("accepting"),
        "{reply}"
    );
    assert_eq!(json_u64_field(&reply, "active_connections"), Some(1));
    handle.drain();
    assert!(handle.is_draining());
    let reply = client.roundtrip("!health").expect("health while draining");
    assert_eq!(json_str_field(&reply, "state"), Some("draining"), "{reply}");
    drop(client);
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced);
}

#[test]
fn idle_connection_is_closed_with_a_typed_reason() {
    let config = NetConfig {
        idle_timeout: Duration::from_millis(80),
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), config);
    let mut client = connect(&addr);
    let reply = client.recv().expect("idle notice");
    assert_eq!(json_str_field(&reply, "type"), Some("idle"), "{reply}");
    assert!(matches!(client.recv(), Err(FrameError::Closed)));
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn slow_loris_partial_frame_is_disconnected() {
    let config = NetConfig {
        idle_timeout: Duration::from_millis(100),
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), config);
    let mut client = connect(&addr);
    // Claim a 100-byte frame but dribble only the prefix and two bytes.
    let started = Instant::now();
    let stream = client.stream_mut();
    stream.write_all(&100u32.to_be_bytes()).expect("prefix");
    stream.write_all(b"?-").expect("dribble");
    stream.flush().expect("flush");
    // The server must cut us off near the idle timeout, not hang forever.
    while client.recv().is_ok() {
        // Drain any idle notice until the server closes on us.
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "slow-loris connection lingered {:?}",
        started.elapsed()
    );
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn oversized_frame_gets_typed_error_then_close() {
    let config = NetConfig {
        max_frame_len: 1024,
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), config);
    let mut client = connect(&addr);
    client
        .stream_mut()
        .write_all(&(1u32 << 30).to_be_bytes())
        .expect("bogus prefix");
    let reply = client.recv().expect("typed error before close");
    assert_eq!(json_str_field(&reply, "type"), Some("protocol"), "{reply}");
    assert!(reply.contains("ceiling"), "{reply}");
    assert!(matches!(client.recv(), Err(FrameError::Closed)));
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn non_utf8_frame_gets_protocol_error_and_connection_survives() {
    let (addr, handle, join) = spawn_server(tc_service(8, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    frame::write_frame(client.stream_mut(), &[0xff, 0xfe, 0x80, 0x41]).expect("send garbage");
    let reply = client.recv().expect("typed error");
    assert_eq!(json_str_field(&reply, "type"), Some("protocol"), "{reply}");
    assert!(reply.contains("UTF-8"), "{reply}");
    // Frame boundaries are intact, so the session continues.
    let reply = client.roundtrip("?- P(1, y).").expect("still serving");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn metrics_over_tcp_include_net_counters_and_end_in_eof() {
    let (addr, handle, join) = spawn_server(tc_service(8, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    client.roundtrip("?- P(1, y).").expect("warm a counter");
    let reply = client.roundtrip("!metrics").expect("metrics");
    assert!(
        reply.ends_with("# EOF"),
        "metrics must be EOF-framed: ...{}",
        &reply[reply.len().saturating_sub(60)..]
    );
    assert!(
        reply.contains("recurs_net_requests_total{result=\"ok\"}"),
        "net counters must flow into the service aggregator: {reply}"
    );
    assert!(reply.contains("recurs_net_connections_total"), "{reply}");
    assert!(reply.contains("recurs_serve_queries_total"), "{reply}");
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn unknown_command_is_an_error_reply_not_a_hang() {
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    let reply = client.roundtrip("!bogus").expect("reply");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("unknown command"), "{reply}");
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
}

#[test]
fn graceful_drain_answers_in_flight_work_then_closes() {
    let (addr, handle, join) = spawn_server(tc_service(200, ServeConfig::default()), fast_config());
    let mut client = connect(&addr);
    // Make sure the connection is admitted before the listener goes away.
    client.roundtrip("!health").expect("admitted");
    // An expensive free query, then drain while it is (likely) in flight.
    client.send("?- P(x, y).").expect("send");
    handle.drain();
    let reply = client.recv().expect("in-flight reply survives drain");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert_eq!(
        json_u64_field(&reply, "count"),
        Some(199 * 200 / 2),
        "{reply}"
    );
    // After the linger window the server closes the connection cleanly.
    assert!(matches!(client.recv(), Err(FrameError::Closed)));
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced, "drain should not need the hard cancel");
    assert_eq!(report.remaining_connections, 0);
}

#[test]
fn forced_drain_cancels_wedged_work_within_the_deadline() {
    let config = NetConfig {
        drain_deadline: Duration::from_millis(150),
        ..fast_config()
    };
    // Big enough that a free query cannot finish inside the drain deadline.
    let (addr, handle, join) = spawn_server(tc_service(4000, ServeConfig::default()), config);
    let mut client = connect(&addr);
    client.send("?- P(x, y).").expect("send");
    std::thread::sleep(Duration::from_millis(30)); // let evaluation start
    let drained_at = Instant::now();
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(report.forced, "the hard cancel must fire");
    assert!(
        drained_at.elapsed() < Duration::from_secs(5),
        "forced drain took {:?}",
        drained_at.elapsed()
    );
    // The cancelled evaluation still produced exactly one framed reply
    // (a sound truncation), not silence.
    let reply = client
        .recv()
        .expect("truncated reply, not a dropped request");
    assert!(reply.contains("\"ok\":true"), "{reply}");
}

#[test]
fn draining_server_stops_accepting_new_connections() {
    let (addr, handle, join) = spawn_server(tc_service(4, ServeConfig::default()), fast_config());
    handle.drain();
    let report = join.join().expect("server thread").expect("run ok");
    assert!(!report.forced);
    // The listener is gone: a fresh connection must fail.
    let refused = recurs_net::Client::connect(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "connection after drain must be refused");
}

#[test]
fn every_net_event_kind_is_registered_in_the_taxonomy() {
    let capture = std::sync::Arc::new(recurs_obs::CaptureRecorder::new());
    let service = tc_service(
        8,
        ServeConfig {
            obs: recurs_obs::Obs::new(capture.clone()),
            ..ServeConfig::default()
        },
    );
    let config = NetConfig {
        max_connections: 1,
        ..fast_config()
    };
    let (addr, handle, join) = spawn_server(service, config);
    let mut client = connect(&addr);
    // Traced query (spans + serve.query), malformed directive (frame
    // error), and a shed second connection (admission gate) — then drain.
    let reply = client
        .roundtrip("@trace=feedface ?- P(1, y).")
        .expect("traced query");
    assert_eq!(
        json_str_field(&reply, "trace"),
        Some("00000000feedface"),
        "{reply}"
    );
    let reply = client.roundtrip("@trace=xyz ?- P(1, y).").expect("reply");
    assert_eq!(json_str_field(&reply, "type"), Some("protocol"), "{reply}");
    let shed = connect(&addr).roundtrip("!health");
    assert!(shed.is_err() || shed.unwrap().contains("overloaded"));
    drop(client);
    handle.drain();
    join.join().expect("server thread").expect("run ok");
    // Everything the net layer (and the layers below it) emitted is a
    // registered kind — the DESIGN table is generated from this registry,
    // so an unregistered kind means drifting docs.
    let kinds = capture.kinds();
    for kind in &kinds {
        assert!(
            recurs_obs::taxonomy::is_known(kind),
            "unregistered event kind {kind} (add it to recurs_obs::taxonomy::EVENTS)"
        );
    }
    for expected in [
        "net.admission",
        "net.drain",
        "net.frame_error",
        "serve.query",
        "span",
    ] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "scenario should have emitted {expected}: got {kinds:?}"
        );
    }
}
