//! Strong stability (section 4.1, Theorem 1).
//!
//! A recursive formula is *strongly stable* if, for **any** query, the
//! determined variables of the recursive predicate in the consequent and in
//! the antecedent occur in the same positions. Theorem 1 proves this
//! semantic property equivalent to the syntactic one: the I-graph consists
//! of disjoint unit cycles only.
//!
//! Both characterizations are implemented here — the syntactic one via the
//! classification, the semantic one by checking determined-variable
//! propagation over every query form — so the equivalence can be tested
//! rather than assumed.

use crate::classify::Classification;
use recurs_datalog::adornment::{propagate, ArgBinding, QueryForm};
use recurs_datalog::rule::Rule;

/// Semantic strong stability: every query form maps to itself under
/// determined-variable propagation.
///
/// The check is exhaustive over the 2ⁿ query forms; formulas in the paper's
/// fragment have small dimension, and stability under all the single-`d`
/// forms already implies stability in general (closures of unions are unions
/// of closures), so this is cheap in practice.
pub fn is_strongly_stable_semantic(rule: &Rule) -> bool {
    let n = rule.head.arity();
    // Propagation distributes over unions of determined seeds, so checking
    // the n singleton forms suffices; the exhaustive loop below is kept for
    // dimensions ≤ 12 as an executable statement of the definition.
    if n <= 12 {
        for mask in 0u32..(1 << n) {
            let form = QueryForm(
                (0..n)
                    .map(|i| {
                        if mask & (1 << i) != 0 {
                            ArgBinding::Determined
                        } else {
                            ArgBinding::Free
                        }
                    })
                    .collect(),
            );
            if propagate(rule, &form) != form {
                return false;
            }
        }
        true
    } else {
        (0..n).all(|i| {
            let form = QueryForm(
                (0..n)
                    .map(|j| {
                        if i == j {
                            ArgBinding::Determined
                        } else {
                            ArgBinding::Free
                        }
                    })
                    .collect(),
            );
            propagate(rule, &form) == form
        })
    }
}

/// Syntactic strong stability (Theorem 1): only disjoint unit cycles.
pub fn is_strongly_stable_syntactic(rule: &Rule) -> bool {
    Classification::of(rule).is_strongly_stable()
}

/// Checks Theorem 1 on a rule: the two characterizations must agree.
/// Returns the common verdict.
///
/// # Panics
/// Panics if the characterizations disagree — that would falsify Theorem 1
/// (or reveal an implementation bug); the property-test suite drives this
/// over randomly generated rules.
pub fn check_theorem_1(rule: &Rule) -> bool {
    let semantic = is_strongly_stable_semantic(rule);
    let syntactic = is_strongly_stable_syntactic(rule);
    assert_eq!(
        semantic, syntactic,
        "Theorem 1 violated for {rule}: semantic={semantic}, syntactic={syntactic}"
    );
    semantic
}

/// The smallest expansion index k₀ ≥ 0 such that the propagation pattern for
/// `form` repeats from k₀ on with period 1 (the formula behaves stably for
/// this query from expansion k₀), if that happens within `max_steps`.
///
/// Example 14 (s12): for `P(d,v,v)` the formula "becomes stable from the
/// second expansion" — this function returns 1 (the pattern met at
/// expansion 1 persists).
pub fn stable_from(rule: &Rule, form: &QueryForm, max_steps: usize) -> Option<usize> {
    let mut current = form.clone();
    for k in 0..=max_steps {
        let next = propagate(rule, &current);
        if next == current {
            return Some(k);
        }
        current = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_rule;

    fn rule(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn theorem_1_on_paper_examples() {
        // Stable formulas.
        for src in [
            "P(x, y) :- A(x, z), P(z, y).",
            "P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).",
            "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).",
        ] {
            assert!(check_theorem_1(&rule(src)), "{src} should be stable");
        }
        // Unstable formulas.
        for src in [
            "P(x, y) :- A(x, z), P(y, z).",
            "P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).",
            "P(x, y, z) :- P(y, z, x).",
            "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
            "P(x, y) :- B(y), C(x, y1), P(x1, y1).",
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
            "P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).",
        ] {
            assert!(!check_theorem_1(&rule(src)), "{src} should be unstable");
        }
    }

    #[test]
    fn s12_stable_from_second_expansion_for_dvv() {
        let r = rule("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).");
        assert_eq!(stable_from(&r, &QueryForm::parse("dvv"), 10), Some(1));
    }

    #[test]
    fn s12_stable_from_the_beginning_for_vvd() {
        let r = rule("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).");
        assert_eq!(stable_from(&r, &QueryForm::parse("vvd"), 10), Some(0));
    }

    #[test]
    fn rotation_never_settles() {
        // s5: pure rotation of a single d never reaches a fixed pattern.
        let r = rule("P(x, y, z) :- P(y, z, x).");
        assert_eq!(stable_from(&r, &QueryForm::parse("dvv"), 50), None);
    }

    #[test]
    fn stable_formula_settles_immediately() {
        let r = rule("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        for pat in ["dvv", "vdv", "vvd", "ddd", "vvv"] {
            assert_eq!(stable_from(&r, &QueryForm::parse(pat), 5), Some(0));
        }
    }
}
