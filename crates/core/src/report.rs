//! Human-readable classification and compilation reports — the text the
//! report binaries print for every example and figure of the paper.

use crate::classify::Classification;
use crate::plan::{plan_for_form, StrategyKind};
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::rule::LinearRecursion;
use recurs_igraph::component::ComponentKind;
use recurs_igraph::dot::to_ascii;
use std::fmt::Write as _;

/// Renders the full classification report for a formula.
pub fn classification_report(lr: &LinearRecursion) -> String {
    let c = Classification::of(&lr.recursive_rule);
    let mut out = String::new();
    let _ = writeln!(out, "formula : {}", lr.recursive_rule);
    for exit in &lr.exit_rules {
        let _ = writeln!(out, "exit    : {exit}");
    }
    let _ = writeln!(out, "dimension: {}", lr.dimension());
    let _ = writeln!(out, "I-graph:");
    for line in to_ascii(&c.igraph).lines() {
        let _ = writeln!(out, "  {line}");
    }
    let _ = writeln!(out, "condensed groups:");
    for (i, g) in c.condensed.groups.iter().enumerate() {
        let names: Vec<&str> = g.iter().map(|s| s.as_str()).collect();
        let _ = writeln!(out, "  g{i}: {{{}}}", names.join(", "));
    }
    let _ = writeln!(out, "components:");
    let mut class_iter = c.component_classes.iter();
    for comp in &c.components {
        if !comp.is_nontrivial() {
            let _ = writeln!(out, "  - trivial (no directed edge)");
            continue;
        }
        let label = class_iter
            .next()
            .expect("aligned with nontrivial components");
        let detail = match &comp.kind {
            ComponentKind::IndependentCycle(cy) => format!(
                "independent cycle, weight {}, {}",
                cy.magnitude(),
                if cy.one_directional {
                    if cy.rotational {
                        "one-directional rotational"
                    } else {
                        "one-directional permutational"
                    }
                } else {
                    "multi-directional"
                }
            ),
            ComponentKind::NoNontrivialCycle => "no non-trivial cycle".to_string(),
            ComponentKind::Dependent => {
                format!("dependent ({} cycles)", comp.cycles.len())
            }
            ComponentKind::Trivial => unreachable!("filtered above"),
        };
        let _ = writeln!(out, "  - class {label}: {detail}");
    }
    let _ = writeln!(out, "class    : {}", c.class);
    let _ = writeln!(out, "strongly stable       : {}", c.is_strongly_stable());
    let _ = writeln!(
        out,
        "transformable->stable : {}{}",
        c.is_transformable_to_stable(),
        c.stabilization_period()
            .map(|p| format!(" (unfold {p}×)"))
            .unwrap_or_default()
    );
    let _ = writeln!(
        out,
        "bounded               : {}{}",
        c.is_bounded(),
        c.rank_bound()
            .map(|r| format!(" (rank ≤ {r})"))
            .unwrap_or_default()
    );
    out
}

/// Renders the plan report for a query form: strategy, compiled formula,
/// and propagation trace.
pub fn plan_report(lr: &LinearRecursion, form: &QueryForm) -> String {
    let plan = plan_for_form(lr, form);
    let mut out = String::new();
    let _ = writeln!(out, "query form      : {}({form})", lr.predicate);
    let _ = writeln!(
        out,
        "strategy        : {}",
        match plan.strategy {
            StrategyKind::Bounded => "bounded (finite union, no fixpoint)",
            StrategyKind::Counting => "counting (per-position chains)",
            StrategyKind::Magic => "magic sets (general information passing)",
        }
    );
    if let Some(t) = &plan.transform {
        let _ = writeln!(
            out,
            "transformation  : unfolded {}×, {} exit rules",
            t.period,
            t.exit_rules.len()
        );
    }
    let _ = writeln!(out, "compiled formula: {}", plan.compiled);
    let _ = writeln!(out, "strategy detail : {}", plan.compiled.strategy);
    // Propagation trace.
    let (trace, cycle) = recurs_datalog::adornment::propagation_trace(&lr.recursive_rule, form, 16);
    let rendered: Vec<String> = trace.iter().map(|f| f.to_string()).collect();
    let _ = writeln!(
        out,
        "propagation     : {}{}",
        rendered.join(" → "),
        cycle
            .map(|i| format!("  (cycles back to step {i})"))
            .unwrap_or_else(|| "  (no repetition within horizon)".into())
    );
    // The executable rewrite, where the strategy has one.
    if let Some(program) = plan.rewrite_program() {
        let _ = writeln!(out, "rewritten program (magic sets):");
        for rule in &program.rules {
            let _ = writeln!(out, "  {rule}");
        }
    }
    if let Some(levels) = plan.bounded_levels() {
        let _ = writeln!(out, "non-recursive levels:");
        for rule in &levels.rules {
            let _ = writeln!(out, "  {rule}");
        }
    }
    if let Some(chains) = plan.counting_chains() {
        let _ = writeln!(out, "per-position chains:");
        for (i, (top, bottom, labels)) in chains.iter().enumerate() {
            let names: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
            let _ = writeln!(
                out,
                "  position {i}: {top} ⇝ {bottom} via [{}]",
                if names.is_empty() {
                    "identity".to_string()
                } else {
                    names.join(", ")
                }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn classification_report_mentions_key_facts() {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        let r = classification_report(&f);
        assert!(r.contains("class    : A1"));
        assert!(r.contains("strongly stable       : true"));
        assert!(r.contains("dimension: 3"));
    }

    #[test]
    fn plan_report_mentions_strategy_and_formula() {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        let r = plan_report(&f, &QueryForm::parse("ddv"));
        assert!(r.contains("counting"));
        assert!(r.contains("σE"));
        assert!(r.contains("propagation"));
    }

    #[test]
    fn plan_report_shows_counting_chains() {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        let r = plan_report(&f, &QueryForm::parse("ddv"));
        assert!(r.contains("per-position chains:"), "{r}");
        assert!(r.contains("via [A]"), "{r}");
        assert!(r.contains("via [C]"), "{r}");
    }

    #[test]
    fn plan_report_shows_magic_rewrite() {
        let f = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).");
        let r = plan_report(&f, &QueryForm::parse("dv"));
        assert!(r.contains("rewritten program (magic sets):"), "{r}");
        assert!(r.contains("magic__"), "{r}");
    }

    #[test]
    fn plan_report_shows_bounded_levels() {
        let f = lr("P(x, y, z) :- P(y, z, x).");
        let r = plan_report(&f, &QueryForm::parse("dvv"));
        assert!(r.contains("non-recursive levels:"), "{r}");
        assert!(r.contains("P(x, y, z) :- E(y, z, x)."), "{r}");
    }

    #[test]
    fn bounded_report() {
        let f = lr("P(x, y, z) :- P(y, z, x).");
        let r = classification_report(&f);
        assert!(r.contains("bounded               : true (rank ≤ 2)"));
        let p = plan_report(&f, &QueryForm::parse("dvv"));
        assert!(p.contains("bounded"));
    }
}
