//! The bounded strategy (section 6 — "pseudo recursion").
//!
//! A bounded formula is equivalent to the finite union of its exit-closed
//! expansions `0 ..= rank`, so a query is answered by evaluating each level
//! as a non-recursive conjunctive query with the query constants pushed in
//! first (the paper's selection-before-join discipline), and unioning the
//! results. No fixpoint is ever run.

use crate::classify::Classification;
use crate::transform::to_nonrecursive_with_rank;
use recurs_datalog::algebra::union;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::eval_body;
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::{LinearRecursion, Program, Rule};
use recurs_datalog::subst::{unify_atoms, Subst};
use recurs_datalog::term::Atom;
use recurs_datalog::Symbol;
use std::collections::HashMap;

/// A compiled bounded plan: the non-recursive levels.
#[derive(Debug, Clone)]
pub struct BoundedPlan {
    /// The rank bound used (number of recursive levels materialized).
    pub rank: u64,
    /// The equivalent non-recursive program (exit level + levels 1..=rank).
    pub levels: Program,
}

/// Builds a bounded plan. Returns `None` if the formula is not bounded.
pub fn build_plan(lr: &LinearRecursion) -> Option<BoundedPlan> {
    let rank = Classification::of(&lr.recursive_rule).rank_bound()?;
    Some(BoundedPlan {
        rank,
        levels: to_nonrecursive_with_rank(lr, rank),
    })
}

/// Answers `query` by evaluating every level with the query constants pushed
/// in (specializing each level rule's head against the query atom), and
/// unioning the per-level answers. The result is over the query's distinct
/// variables in first-occurrence order, matching
/// [`recurs_datalog::eval::answer_query`].
pub fn execute(plan: &BoundedPlan, db: &Database, query: &Atom) -> Result<Relation, DatalogError> {
    let mut out: Option<Relation> = None;
    for rule in &plan.levels.rules {
        let level = eval_specialized(db, rule, query)?;
        out = Some(match out {
            None => level,
            Some(acc) => union(&acc, &level),
        });
    }
    Ok(out.unwrap_or_else(|| Relation::new(0)))
}

/// Specializes a non-recursive rule against a query atom (pushing query
/// constants into the body — selection before join), evaluates the body,
/// and projects onto the query's distinct variables in first-occurrence
/// order. Repeated query variables induce equality selections.
pub fn eval_specialized(
    db: &Database,
    rule: &Rule,
    query: &Atom,
) -> Result<Relation, DatalogError> {
    debug_assert!(!rule.is_recursive(), "bounded levels are non-recursive");
    // Rename the query's variables so they cannot clash with rule variables,
    // remembering the mapping to restore projection order.
    let mut fresh_counter = 0u32;
    let mut renaming = Subst::new();
    let mut query_vars: Vec<Symbol> = Vec::new(); // distinct, first-occurrence
    let mut renamed_terms = Vec::with_capacity(query.terms.len());
    for t in &query.terms {
        match t.as_var() {
            Some(v) => {
                let renamed = match renaming.get(v) {
                    Some(t) => *t,
                    None => {
                        let f = Symbol::fresh("q", &mut fresh_counter);
                        renaming.bind(v, recurs_datalog::Term::Var(f));
                        query_vars.push(v);
                        recurs_datalog::Term::Var(f)
                    }
                };
                renamed_terms.push(renamed);
            }
            None => renamed_terms.push(*t),
        }
    }
    let renamed_query = Atom::new(query.predicate, renamed_terms);
    let Some(mgu) = unify_atoms(&rule.head, &renamed_query) else {
        // Head constants (if any) clash with the query: this level
        // contributes nothing.
        return Ok(Relation::new(query_vars.len()));
    };
    let specialized = mgu.apply_rule(rule);
    let bindings = eval_body(db, &specialized.body, &HashMap::new())?;
    // Each distinct query variable resolves (through the renaming and the
    // unifier) to either a constant or a body variable with a column.
    enum Out {
        Fixed(recurs_datalog::Value),
        Col(usize),
    }
    let mut outs: Vec<Out> = Vec::with_capacity(query_vars.len());
    for &orig in &query_vars {
        let renamed = *renaming
            .get(orig)
            .expect("every query variable was renamed");
        match mgu.resolve(renamed) {
            recurs_datalog::Term::Const(c) => outs.push(Out::Fixed(c)),
            recurs_datalog::Term::Var(v) => match bindings.column_of(v) {
                Some(col) => outs.push(Out::Col(col)),
                // Range-restricted rules always bind head variables, so this
                // is unreachable for validated input.
                None => return Err(DatalogError::UnboundVariable(v)),
            },
        }
    }
    let mut result = Relation::new(outs.len());
    for row in bindings.rel.iter() {
        result.insert(
            outs.iter()
                .map(|o| match o {
                    Out::Fixed(c) => *c,
                    Out::Col(i) => row[*i],
                })
                .collect(),
        );
    }
    // Equality among repeated query variables is enforced by unification
    // (both occurrences rename to the same fresh variable), so no
    // post-selection is needed.
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::eval::{answer_query, semi_naive};
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::relation::tuple_u64;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    fn check(lr: &LinearRecursion, db: &Database, query: &str) {
        let plan = build_plan(lr).expect("formula must be bounded");
        let q = parse_atom(query).unwrap();
        let got = execute(&plan, db, &q).unwrap();
        let mut db2 = db.clone();
        semi_naive(&mut db2, &lr.to_program(), None).unwrap();
        let want = answer_query(&db2, &q).unwrap();
        assert_eq!(got, want, "bounded ≠ oracle for {query}");
    }

    fn s8() -> LinearRecursion {
        lr("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).\n\
            P(x,y,z,u) :- E(x,y,z,u).")
    }

    fn s8_db() -> Database {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (3, 4), (5, 6)]));
        db.insert_relation("B", Relation::from_pairs([(2, 9), (4, 8), (6, 7)]));
        db.insert_relation("C", Relation::from_pairs([(7, 2), (6, 4), (5, 5)]));
        db.insert_relation(
            "E",
            Relation::from_tuples(
                4,
                [
                    tuple_u64([3, 2, 7, 2]),
                    tuple_u64([5, 4, 6, 4]),
                    tuple_u64([1, 6, 5, 5]),
                ],
            ),
        );
        db
    }

    #[test]
    fn s8_plan_has_rank_two() {
        let plan = build_plan(&s8()).unwrap();
        assert_eq!(plan.rank, 2);
        assert_eq!(plan.levels.rules.len(), 3);
    }

    #[test]
    fn s8_queries_match_oracle() {
        let f = s8();
        let db = s8_db();
        check(&f, &db, "P(x, y, z, u)");
        check(&f, &db, "P('1', y, z, u)");
        check(&f, &db, "P(x, y, '5', u)");
        check(&f, &db, "P('3', '2', '7', '2')");
        check(&f, &db, "P('9', y, z, u)");
    }

    #[test]
    fn s5_rotation_queries() {
        let f = lr("P(x, y, z) :- P(y, z, x).");
        let mut db = Database::new();
        db.insert_relation(
            "E",
            Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([4, 5, 6])]),
        );
        check(&f, &db, "P(x, y, z)");
        check(&f, &db, "P('2', y, z)");
        check(&f, &db, "P('3', '1', '2')");
    }

    #[test]
    fn s10_acyclic_queries() {
        let f = lr("P(x, y) :- B(y), C(x, y1), P(x1, y1).\nP(x, y) :- E(x, y).");
        let mut db = Database::new();
        db.insert_relation(
            "B",
            Relation::from_tuples(1, [tuple_u64([5]), tuple_u64([6])]),
        );
        db.insert_relation("C", Relation::from_pairs([(1, 7), (2, 8)]));
        db.insert_relation("E", Relation::from_pairs([(9, 7), (9, 8), (3, 5)]));
        check(&f, &db, "P(x, y)");
        check(&f, &db, "P('1', y)");
        check(&f, &db, "P(x, '5')");
    }

    #[test]
    fn repeated_query_variable() {
        let f = s8();
        let db = s8_db();
        check(&f, &db, "P(x, x, z, u)");
        check(&f, &db, "P(x, y, y, y)");
    }

    #[test]
    fn unbounded_formula_has_no_plan() {
        let f = lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        assert!(build_plan(&f).is_none());
    }
}
