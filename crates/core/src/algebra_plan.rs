//! An executable plan algebra mirroring the paper's plan notation: scans,
//! selections, projections, joins, Cartesian products (×), existence gates
//! (∃), unions, and the level union `∪ₖ F^k(base)`.
//!
//! The symbolic [`crate::formula`] module *displays* compiled formulas; this
//! module *runs* them. It exists so the per-case plans the paper derives for
//! individual formulas (section 6's s9 plans with × and ∃, for instance) can
//! be written down exactly as published and executed — see
//! [`crate::paper_plans`].

use recurs_datalog::algebra;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::relation::Relation;
use recurs_datalog::{Symbol, Value};

/// An executable plan expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanExpr {
    /// Scan a base relation.
    Rel(Symbol),
    /// The previous iterate inside an [`PlanExpr::Iterate`] step.
    Prev,
    /// σ — keep tuples with the given column values.
    Select(Box<PlanExpr>, Vec<(usize, Value)>),
    /// π — project columns (order given, repeats allowed).
    Project(Box<PlanExpr>, Vec<usize>),
    /// ⋈ — equi-join on (left column, right column) pairs; output is the
    /// concatenation of both tuples.
    Join(Box<PlanExpr>, Box<PlanExpr>, Vec<(usize, usize)>),
    /// × — Cartesian product.
    Product(Box<PlanExpr>, Box<PlanExpr>),
    /// ∪ — union of same-arity expressions.
    Union(Vec<PlanExpr>),
    /// ∪ₖ F^k(base): evaluate `base`, then repeatedly substitute the result
    /// for [`PlanExpr::Prev`] inside `step`; accumulate the union of all
    /// iterates. Terminates when an iterate adds nothing new (sound because
    /// each iterate is the image of the previous one under a fixed monotone
    /// operator).
    Iterate {
        /// The level-0 term.
        base: Box<PlanExpr>,
        /// The level-(k+1) term as a function of level k (via `Prev`).
        step: Box<PlanExpr>,
    },
    /// ∃cond → then: if `cond` is non-empty, the value of `then`, else the
    /// empty relation of `then`'s arity. The paper's existence check.
    ExistsThen {
        /// The checked expression.
        cond: Box<PlanExpr>,
        /// Produced when the check passes.
        then: Box<PlanExpr>,
    },
}

impl PlanExpr {
    /// Scan constructor.
    pub fn rel(name: impl Into<Symbol>) -> PlanExpr {
        PlanExpr::Rel(name.into())
    }

    /// σ with one condition.
    pub fn select(self, col: usize, value: Value) -> PlanExpr {
        PlanExpr::Select(Box::new(self), vec![(col, value)])
    }

    /// π.
    pub fn project(self, cols: Vec<usize>) -> PlanExpr {
        PlanExpr::Project(Box::new(self), cols)
    }

    /// ⋈.
    pub fn join(self, right: PlanExpr, pairs: Vec<(usize, usize)>) -> PlanExpr {
        PlanExpr::Join(Box::new(self), Box::new(right), pairs)
    }

    /// ×.
    pub fn product(self, right: PlanExpr) -> PlanExpr {
        PlanExpr::Product(Box::new(self), Box::new(right))
    }
}

/// Evaluates a plan against a database. `prev` supplies the meaning of
/// [`PlanExpr::Prev`] (only valid inside an `Iterate` step).
pub fn eval_plan(db: &Database, plan: &PlanExpr) -> Result<Relation, DatalogError> {
    eval_with_prev(db, plan, None)
}

fn eval_with_prev(
    db: &Database,
    plan: &PlanExpr,
    prev: Option<&Relation>,
) -> Result<Relation, DatalogError> {
    match plan {
        PlanExpr::Rel(name) => db.require(*name).cloned(),
        PlanExpr::Prev => prev
            .cloned()
            .ok_or_else(|| DatalogError::UnknownRelation(Symbol::intern("<prev>"))),
        PlanExpr::Select(input, conds) => {
            let rel = eval_with_prev(db, input, prev)?;
            Ok(algebra::select_eq_many(&rel, conds))
        }
        PlanExpr::Project(input, cols) => {
            let rel = eval_with_prev(db, input, prev)?;
            Ok(algebra::project(&rel, cols))
        }
        PlanExpr::Join(l, r, pairs) => {
            let lr = eval_with_prev(db, l, prev)?;
            let rr = eval_with_prev(db, r, prev)?;
            Ok(algebra::join(&lr, &rr, pairs))
        }
        PlanExpr::Product(l, r) => {
            let lr = eval_with_prev(db, l, prev)?;
            let rr = eval_with_prev(db, r, prev)?;
            Ok(algebra::product(&lr, &rr))
        }
        PlanExpr::Union(parts) => {
            let mut out: Option<Relation> = None;
            for p in parts {
                let rel = eval_with_prev(db, p, prev)?;
                out = Some(match out {
                    None => rel,
                    Some(acc) => algebra::union(&acc, &rel),
                });
            }
            Ok(out.unwrap_or_else(|| Relation::new(0)))
        }
        PlanExpr::Iterate { base, step } => {
            let mut current = eval_with_prev(db, base, prev)?;
            let mut acc = current.clone();
            loop {
                let next = eval_with_prev(db, step, Some(&current))?;
                let added = {
                    let mut acc2 = acc.clone();
                    let n = acc2.union_in_place(&next);
                    acc = acc2;
                    n
                };
                if added == 0 {
                    // The next iterate is the image of `current` only; once
                    // it is covered, all later iterates are covered too.
                    return Ok(acc);
                }
                current = next;
            }
        }
        PlanExpr::ExistsThen { cond, then } => {
            let c = eval_with_prev(db, cond, prev)?;
            let t = eval_with_prev(db, then, prev)?;
            if c.is_empty() {
                Ok(Relation::new(t.arity()))
            } else {
                Ok(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::relation::tuple_u64;

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        db.insert_relation("B", Relation::from_pairs([(2, 9), (3, 9)]));
        db
    }

    #[test]
    fn scan_select_project() {
        let plan = PlanExpr::rel("A").select(0, v(2)).project(vec![1]);
        let out = eval_plan(&db(), &plan).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&[v(3)]));
    }

    #[test]
    fn join_and_product() {
        let j = PlanExpr::rel("A").join(PlanExpr::rel("B"), vec![(1, 0)]);
        let out = eval_plan(&db(), &j).unwrap();
        assert_eq!(out.len(), 2); // A(1,2)⋈B(2,9), A(2,3)⋈B(3,9)
        let p = PlanExpr::rel("A").product(PlanExpr::rel("B"));
        assert_eq!(eval_plan(&db(), &p).unwrap().len(), 6);
    }

    #[test]
    fn union_dedups() {
        let u = PlanExpr::Union(vec![PlanExpr::rel("A"), PlanExpr::rel("A")]);
        assert_eq!(eval_plan(&db(), &u).unwrap().len(), 3);
    }

    #[test]
    fn iterate_computes_reachability() {
        // base = {1}; step = π₁(Prev ⋈ A): forward closure of node 1.
        let mut d = db();
        d.insert_relation("S", Relation::from_tuples(1, [tuple_u64([1])]));
        let plan = PlanExpr::Iterate {
            base: Box::new(PlanExpr::rel("S")),
            step: Box::new(
                PlanExpr::Prev
                    .join(PlanExpr::rel("A"), vec![(0, 0)])
                    .project(vec![2]),
            ),
        };
        let out = eval_plan(&d, &plan).unwrap();
        assert_eq!(out.len(), 4); // 1, 2, 3, 4
    }

    #[test]
    fn iterate_terminates_on_cycles() {
        let mut d = Database::new();
        d.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        d.insert_relation("S", Relation::from_tuples(1, [tuple_u64([1])]));
        let plan = PlanExpr::Iterate {
            base: Box::new(PlanExpr::rel("S")),
            step: Box::new(
                PlanExpr::Prev
                    .join(PlanExpr::rel("A"), vec![(0, 0)])
                    .project(vec![2]),
            ),
        };
        let out = eval_plan(&d, &plan).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn exists_gates() {
        let d = db();
        let yes = PlanExpr::ExistsThen {
            cond: Box::new(PlanExpr::rel("B").select(0, v(2))),
            then: Box::new(PlanExpr::rel("A")),
        };
        assert_eq!(eval_plan(&d, &yes).unwrap().len(), 3);
        let no = PlanExpr::ExistsThen {
            cond: Box::new(PlanExpr::rel("B").select(0, v(77))),
            then: Box::new(PlanExpr::rel("A")),
        };
        let out = eval_plan(&d, &no).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.arity(), 2); // arity of `then` preserved
    }

    #[test]
    fn prev_outside_iterate_is_an_error() {
        assert!(eval_plan(&db(), &PlanExpr::Prev).is_err());
    }

    #[test]
    fn missing_relation_is_an_error() {
        assert!(eval_plan(&db(), &PlanExpr::rel("Nope")).is_err());
    }
}
