//! The classification of linear recursive formulas (section 3 of the paper).
//!
//! Components of the condensed I-graph are classified first; the formula's
//! class is then determined by the (multi)set of component classes:
//!
//! * **A1** unit rotational, **A2** unit permutational, **A3** non-unit
//!   rotational, **A4** non-unit permutational one-directional cycles,
//!   **A5** disjoint combinations of different Ai's;
//! * **B** bounded cycles (independent multi-directional, weight 0);
//! * **C** unbounded cycles (independent multi-directional, weight ≠ 0);
//! * **D** non-trivial components with no non-trivial cycle;
//! * **E** dependent cycles;
//! * **F** mixed: disjoint combinations of different classes.
//!
//! Theorem 12 (completeness): every valid formula falls in exactly one class;
//! this is enforced by construction here and property-tested in the suite.

use recurs_datalog::rule::Rule;
use recurs_igraph::build::igraph_of;
use recurs_igraph::component::{analyze_components, Component, ComponentKind};
use recurs_igraph::condense::{condense, Condensed};
use recurs_igraph::graph::IGraph;
use recurs_igraph::paths::max_path_weight;
use std::fmt;

/// The class of one non-trivial component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentClass {
    /// A1 — independent unit rotational cycle.
    UnitRotational,
    /// A2 — independent unit permutational cycle (directed self-loop).
    UnitPermutational,
    /// A3 — independent non-unit rotational one-directional cycle.
    NonUnitRotational,
    /// A4 — independent non-unit permutational cycle.
    NonUnitPermutational,
    /// B — independent multi-directional cycle of weight 0.
    BoundedCycle,
    /// C — independent multi-directional cycle of non-zero weight.
    UnboundedCycle,
    /// D — directed edges but no non-trivial cycle.
    NoNontrivialCycle,
    /// E — dependent cycles.
    Dependent,
}

impl ComponentClass {
    /// True for the one-directional classes A1–A4.
    pub fn is_one_directional(self) -> bool {
        matches!(
            self,
            ComponentClass::UnitRotational
                | ComponentClass::UnitPermutational
                | ComponentClass::NonUnitRotational
                | ComponentClass::NonUnitPermutational
        )
    }

    /// True for the unit classes A1–A2.
    pub fn is_unit(self) -> bool {
        matches!(
            self,
            ComponentClass::UnitRotational | ComponentClass::UnitPermutational
        )
    }

    /// True if expansions of this component alone can never produce new
    /// values forever: permutational cycles (A2/A4), bounded cycles (B) and
    /// acyclic components (D).
    pub fn is_bounded(self) -> bool {
        matches!(
            self,
            ComponentClass::UnitPermutational
                | ComponentClass::NonUnitPermutational
                | ComponentClass::BoundedCycle
                | ComponentClass::NoNontrivialCycle
        )
    }

    /// The paper's letter for the component, e.g. `"A1"`.
    pub fn label(self) -> &'static str {
        match self {
            ComponentClass::UnitRotational => "A1",
            ComponentClass::UnitPermutational => "A2",
            ComponentClass::NonUnitRotational => "A3",
            ComponentClass::NonUnitPermutational => "A4",
            ComponentClass::BoundedCycle => "B",
            ComponentClass::UnboundedCycle => "C",
            ComponentClass::NoNontrivialCycle => "D",
            ComponentClass::Dependent => "E",
        }
    }
}

impl fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The class of a whole formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormulaClass {
    /// A1–A5: only one-directional cycles. The payload distinguishes the
    /// subclass.
    OneDirectional(OneDirectionalSubclass),
    /// B: only bounded cycles.
    Bounded,
    /// C: only unbounded cycles.
    Unbounded,
    /// D: only components with no non-trivial cycle.
    NoNontrivialCycles,
    /// E: only dependent-cycle components.
    Dependent,
    /// F: a disjoint combination of different classes.
    Mixed,
}

/// Which of A1–A5 a purely one-directional formula is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OneDirectionalSubclass {
    /// All components are unit rotational.
    A1,
    /// All components are unit permutational.
    A2,
    /// All components are non-unit rotational.
    A3,
    /// All components are non-unit permutational.
    A4,
    /// A disjoint combination of different Ai's.
    A5,
}

impl FormulaClass {
    /// The paper's label, e.g. `"A3"`, `"F"`.
    pub fn label(self) -> &'static str {
        match self {
            FormulaClass::OneDirectional(sub) => match sub {
                OneDirectionalSubclass::A1 => "A1",
                OneDirectionalSubclass::A2 => "A2",
                OneDirectionalSubclass::A3 => "A3",
                OneDirectionalSubclass::A4 => "A4",
                OneDirectionalSubclass::A5 => "A5",
            },
            FormulaClass::Bounded => "B",
            FormulaClass::Unbounded => "C",
            FormulaClass::NoNontrivialCycles => "D",
            FormulaClass::Dependent => "E",
            FormulaClass::Mixed => "F",
        }
    }
}

impl fmt::Display for FormulaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The full result of classifying a linear recursive rule.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The rule that was classified.
    pub rule: Rule,
    /// Its I-graph.
    pub igraph: IGraph,
    /// The condensed graph.
    pub condensed: Condensed,
    /// All components (including trivial ones) with their raw analysis.
    pub components: Vec<Component>,
    /// The class of each non-trivial component, aligned with the non-trivial
    /// entries of `components`.
    pub component_classes: Vec<ComponentClass>,
    /// The formula's class.
    pub class: FormulaClass,
}

impl Classification {
    /// Classifies a linear recursive rule.
    ///
    /// # Panics
    /// Panics if the rule is not linear recursive (validate first).
    pub fn of(rule: &Rule) -> Classification {
        let igraph = igraph_of(rule);
        let condensed = condense(&igraph);
        let components = analyze_components(&condensed);
        let component_classes: Vec<ComponentClass> = components
            .iter()
            .filter(|c| c.is_nontrivial())
            .map(classify_component)
            .collect();
        let class = formula_class(&component_classes);
        Classification {
            rule: rule.clone(),
            igraph,
            condensed,
            components,
            component_classes,
            class,
        }
    }

    /// The non-trivial components, aligned with `component_classes`.
    pub fn nontrivial_components(&self) -> impl Iterator<Item = &Component> {
        self.components.iter().filter(|c| c.is_nontrivial())
    }

    /// Theorem 1: strongly stable iff only disjoint unit cycles.
    pub fn is_strongly_stable(&self) -> bool {
        !self.component_classes.is_empty() && self.component_classes.iter().all(|c| c.is_unit())
    }

    /// Corollary 3: transformable to an equivalent unit-cycle (stable)
    /// formula iff all cycles are one-directional (classes A1–A5).
    pub fn is_transformable_to_stable(&self) -> bool {
        !self.component_classes.is_empty()
            && self
                .component_classes
                .iter()
                .all(|c| c.is_one_directional())
    }

    /// Theorem 4: the number of unfoldings after which a class-A formula is
    /// stable — the least common multiple of its cycle weights. `None` for
    /// formulas that are not transformable.
    pub fn stabilization_period(&self) -> Option<u64> {
        if !self.is_transformable_to_stable() {
            return None;
        }
        let mut l = 1u64;
        for comp in self.nontrivial_components() {
            if let ComponentKind::IndependentCycle(cy) = &comp.kind {
                l = lcm(l, cy.magnitude().max(1));
            }
        }
        Some(l)
    }

    /// Is the formula *bounded* (pseudo-recursive)? Per Ioannidis's theorem
    /// and Theorems 10/11: every component must be bounded on its own
    /// (permutational A2/A4, bounded cycle B, or acyclic D).
    pub fn is_bounded(&self) -> bool {
        !self.component_classes.is_empty() && self.component_classes.iter().all(|c| c.is_bounded())
    }

    /// A *proven* upper bound on the rank of a bounded formula:
    ///
    /// * pure permutational combination ({A2, A4}): lcm of weights − 1
    ///   (Theorem 10, tight);
    /// * no permutational rotation ({A2, B, D} — weight-1 self-loops are
    ///   identity connections and do not rotate): the maximum path weight of
    ///   the I-graph (Ioannidis's theorem, tight);
    /// * a mixture of a rotating permutational cycle (weight ≥ 2) with B/D
    ///   components: **`None`**. Theorem 11 proves such formulas bounded but
    ///   gives no bound formula, and the naive `max` of the two bounds is
    ///   unsound (the rotation's parity can delay coverage of the B/D
    ///   component's last new tuples past both bounds). The planner answers
    ///   these with the general strategy instead.
    ///
    /// Returns `None` if the formula is not bounded or no proven static
    /// bound exists.
    pub fn rank_bound(&self) -> Option<u64> {
        if !self.is_bounded() {
            return None;
        }
        let mut perm_lcm: u64 = 1;
        for comp in self.nontrivial_components() {
            if let ComponentKind::IndependentCycle(cy) = &comp.kind {
                if cy.is_permutational() {
                    perm_lcm = lcm(perm_lcm, cy.magnitude().max(1));
                }
            }
        }
        let has_nonperm = self.component_classes.iter().any(|c| {
            matches!(
                c,
                ComponentClass::BoundedCycle | ComponentClass::NoNontrivialCycle
            )
        });
        if !has_nonperm {
            return Some(perm_lcm - 1);
        }
        if perm_lcm == 1 {
            let path_bound =
                u64::try_from(max_path_weight(&self.igraph).max(0)).expect("non-negative");
            return Some(path_bound);
        }
        None
    }
}

fn classify_component(comp: &Component) -> ComponentClass {
    match &comp.kind {
        ComponentKind::Trivial => unreachable!("trivial components are filtered out"),
        ComponentKind::NoNontrivialCycle => ComponentClass::NoNontrivialCycle,
        ComponentKind::Dependent => ComponentClass::Dependent,
        ComponentKind::IndependentCycle(cy) => {
            if cy.one_directional {
                match (cy.is_unit(), cy.rotational) {
                    (true, true) => ComponentClass::UnitRotational,
                    (true, false) => ComponentClass::UnitPermutational,
                    (false, true) => ComponentClass::NonUnitRotational,
                    (false, false) => ComponentClass::NonUnitPermutational,
                }
            } else if cy.weight == 0 {
                ComponentClass::BoundedCycle
            } else {
                ComponentClass::UnboundedCycle
            }
        }
    }
}

fn formula_class(classes: &[ComponentClass]) -> FormulaClass {
    assert!(
        !classes.is_empty(),
        "a linear recursive rule always has at least one directed edge"
    );
    let all_one_directional = classes.iter().all(|c| c.is_one_directional());
    if all_one_directional {
        let first = classes[0];
        let uniform = classes.iter().all(|&c| c == first);
        let sub = if uniform {
            match first {
                ComponentClass::UnitRotational => OneDirectionalSubclass::A1,
                ComponentClass::UnitPermutational => OneDirectionalSubclass::A2,
                ComponentClass::NonUnitRotational => OneDirectionalSubclass::A3,
                ComponentClass::NonUnitPermutational => OneDirectionalSubclass::A4,
                _ => unreachable!("checked one-directional"),
            }
        } else {
            OneDirectionalSubclass::A5
        };
        return FormulaClass::OneDirectional(sub);
    }
    let first = classes[0];
    if classes.iter().all(|&c| c == first) {
        return match first {
            ComponentClass::BoundedCycle => FormulaClass::Bounded,
            ComponentClass::UnboundedCycle => FormulaClass::Unbounded,
            ComponentClass::NoNontrivialCycle => FormulaClass::NoNontrivialCycles,
            ComponentClass::Dependent => FormulaClass::Dependent,
            _ => unreachable!("one-directional handled above"),
        };
    }
    FormulaClass::Mixed
}

/// Least common multiple (inputs ≥ 1).
pub fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Greatest common divisor.
pub fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_rule;

    fn classify(src: &str) -> Classification {
        Classification::of(&parse_rule(src).unwrap())
    }

    #[test]
    fn s1a_is_a5_stable() {
        // One A1 component (x→z over A) and one A2 (y self-loop): a disjoint
        // combination of different Ai's, strongly stable by Theorem 1.
        let c = classify("P(x, y) :- A(x, z), P(z, y).");
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A5)
        );
        assert!(c.is_strongly_stable());
        assert_eq!(c.stabilization_period(), Some(1));
        assert!(!c.is_bounded());
    }

    #[test]
    fn s3_is_a1() {
        let c = classify("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A1)
        );
        assert!(c.is_strongly_stable());
        assert_eq!(c.stabilization_period(), Some(1));
    }

    #[test]
    fn s4a_is_a3() {
        let c = classify("P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).");
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A3)
        );
        assert!(!c.is_strongly_stable());
        assert!(c.is_transformable_to_stable());
        assert_eq!(c.stabilization_period(), Some(3));
        assert!(!c.is_bounded());
    }

    #[test]
    fn s5_is_a4_bounded() {
        let c = classify("P(x, y, z) :- P(y, z, x).");
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A4)
        );
        assert!(c.is_bounded());
        assert_eq!(c.rank_bound(), Some(2)); // lcm(3) − 1
        assert_eq!(c.stabilization_period(), Some(3));
    }

    #[test]
    fn s6_is_a4_with_lcm_six() {
        let c = classify("P(x,y,z,u,v,w) :- P(z,y,u,x,w,v).");
        // Three permutational cycles of weights 3, 1, 2. Weight-1 cycles are
        // unit (A2); weight-2/3 are non-unit (A4) — a mixed-Ai combination.
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A5)
        );
        assert_eq!(c.stabilization_period(), Some(6));
        assert!(c.is_bounded());
        assert_eq!(c.rank_bound(), Some(5)); // Theorem 10: lcm − 1
    }

    #[test]
    fn s7_is_a5() {
        let c = classify("P(x,y,z,u,w,s,v) :- A(x,t), P(t,z,y,w,s,r,v), B(u,r).");
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A5)
        );
        assert_eq!(c.stabilization_period(), Some(6)); // lcm(1,2,3,1)
        assert!(!c.is_bounded()); // rotational components produce new values
    }

    #[test]
    fn s8_is_class_b() {
        let c = classify("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).");
        assert_eq!(c.class, FormulaClass::Bounded);
        assert!(c.is_bounded());
        assert_eq!(c.rank_bound(), Some(2)); // paper: upper bound 2
        assert!(!c.is_transformable_to_stable()); // Theorem 5
    }

    #[test]
    fn s9_is_class_c() {
        let c = classify("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).");
        assert_eq!(c.class, FormulaClass::Unbounded);
        assert!(!c.is_bounded());
        assert!(!c.is_transformable_to_stable());
        assert_eq!(c.rank_bound(), None);
    }

    #[test]
    fn s10_is_class_d() {
        let c = classify("P(x, y) :- B(y), C(x, y1), P(x1, y1).");
        assert_eq!(c.class, FormulaClass::NoNontrivialCycles);
        assert!(c.is_bounded()); // Corollary 2
        assert_eq!(c.rank_bound(), Some(2)); // paper: upper bound 2
    }

    #[test]
    fn s11_is_class_e() {
        let c = classify("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).");
        assert_eq!(c.class, FormulaClass::Dependent);
        assert!(!c.is_transformable_to_stable()); // Theorem 8
        assert!(!c.is_bounded());
    }

    #[test]
    fn s12_is_mixed() {
        let c = classify("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).");
        assert_eq!(c.class, FormulaClass::Mixed);
        assert!(!c.is_transformable_to_stable()); // Theorem 9
        assert!(!c.is_bounded());
        // Components: one dependent (E) + one unit rotational (A1).
        let mut labels: Vec<&str> = c.component_classes.iter().map(|c| c.label()).collect();
        labels.sort();
        assert_eq!(labels, vec!["A1", "E"]);
    }

    #[test]
    fn pure_a2_formula() {
        let c = classify("P(x, y) :- A(x), B(y), P(x, y).");
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A2)
        );
        assert!(c.is_strongly_stable());
        assert!(c.is_bounded());
        assert_eq!(c.rank_bound(), Some(0));
    }

    #[test]
    fn compressed_remark_formula_is_a1() {
        let c = classify("P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).");
        // The paper's Remark: compresses to ABC(x,u), two unit cycles.
        assert!(c.is_strongly_stable());
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A5)
        );
    }

    #[test]
    fn uniform_two_cycle_is_a3() {
        // Thm 1's instability counterexample is nonetheless transformable:
        // one-directional weight-2 rotational cycle.
        let c = classify("P(x, y) :- A(x, z), P(y, z).");
        assert_eq!(
            c.class,
            FormulaClass::OneDirectional(OneDirectionalSubclass::A3)
        );
        assert!(!c.is_strongly_stable());
        assert_eq!(c.stabilization_period(), Some(2));
    }

    #[test]
    fn lcm_gcd_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 7), 7);
        assert_eq!(lcm(lcm(1, 2), lcm(3, 1)), 6);
    }

    #[test]
    fn every_example_has_exactly_one_class() {
        // Theorem 12 smoke test over the paper's formulas.
        for src in [
            "P(x, y) :- A(x, z), P(z, y).",
            "P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).",
            "P(x, y) :- A(x, z), P(z, u), B(u, y).",
            "P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).",
            "P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).",
            "P(x, y, z) :- P(y, z, x).",
            "P(x,y,z,u,v,w) :- P(z,y,u,x,w,v).",
            "P(x,y,z,u,w,s,v) :- A(x,t), P(t,z,y,w,s,r,v), B(u,r).",
            "P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).",
            "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
            "P(x, y) :- B(y), C(x, y1), P(x1, y1).",
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
            "P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).",
        ] {
            let c = classify(src);
            // `formula_class` is total and returns exactly one label.
            assert!(!c.class.label().is_empty(), "{src} got no class");
        }
    }
}
