//! Formula transformations: unfold-to-stable (Theorems 2 and 4) and
//! bounded-to-nonrecursive (Ioannidis's theorem, Theorems 10/11).

use crate::classify::Classification;
use recurs_datalog::rule::{LinearRecursion, Program, Rule};
use recurs_datalog::unfold::{close_with_exit, Unfolder};

/// The result of transforming a class-A formula into an equivalent stable
/// formula with multiple exits (Theorem 2 part 2, generalized by Theorem 4).
#[derive(Debug, Clone)]
pub struct StableTransform {
    /// How many times the recursive rule was unfolded (the lcm of the cycle
    /// weights).
    pub period: u64,
    /// The new (stable) recursive rule: the `period`-th expansion.
    pub stable_rule: Rule,
    /// The exit rules of the transformed formula: the original exits plus
    /// the exit-closed expansions 1 .. period−1.
    pub exit_rules: Vec<Rule>,
}

impl StableTransform {
    /// The transformed formula as a [`LinearRecursion`].
    pub fn to_linear_recursion(&self) -> LinearRecursion {
        LinearRecursion {
            predicate: self.stable_rule.head.predicate,
            recursive_rule: self.stable_rule.clone(),
            exit_rules: self.exit_rules.clone(),
        }
    }

    /// The transformed formula as a program (recursive rule + exits).
    pub fn to_program(&self) -> Program {
        self.to_linear_recursion().to_program()
    }
}

/// Transforms a class-A formula (only one-directional cycles) into an
/// equivalent stable formula by unfolding `lcm(cycle weights)` times.
/// Returns `None` for formulas outside class A (Corollary 3: those are not
/// transformable).
///
/// ```
/// use recurs_core::transform::unfold_to_stable;
/// use recurs_core::classify::Classification;
/// use recurs_datalog::parser::parse_program;
/// use recurs_datalog::validate::validate_with_generic_exit;
///
/// // The paper's s4a: a weight-3 rotational cycle (class A3).
/// let lr = validate_with_generic_exit(&parse_program(
///     "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).",
/// ).unwrap()).unwrap();
/// let t = unfold_to_stable(&lr).expect("class A is transformable");
/// assert_eq!(t.period, 3);
/// assert_eq!(t.exit_rules.len(), 3); // original exit + two closed expansions
/// assert!(Classification::of(&t.stable_rule).is_strongly_stable());
/// ```
pub fn unfold_to_stable(lr: &LinearRecursion) -> Option<StableTransform> {
    let classification = Classification::of(&lr.recursive_rule);
    let period = classification.stabilization_period()?;
    Some(unfold_by(lr, period))
}

/// Unfolds by an explicit period (exposed for experimentation; correctness
/// of the *stability* claim requires the period from
/// [`Classification::stabilization_period`]).
pub fn unfold_by(lr: &LinearRecursion, period: u64) -> StableTransform {
    assert!(period >= 1, "period must be at least 1");
    let mut exit_rules = lr.exit_rules.clone();
    let mut counter = 0u32;
    let mut unfolder = Unfolder::new(&lr.recursive_rule);
    let mut last = unfolder.next().expect("unfolder is infinite");
    // Expansions 1 .. period−1 closed with each original exit become new
    // exit rules; the period-th expansion becomes the recursive rule.
    for _ in 1..period {
        for exit in &lr.exit_rules {
            exit_rules.push(close_with_exit(&last, exit, &mut counter));
        }
        last = unfolder.next().expect("unfolder is infinite");
    }
    StableTransform {
        period,
        stable_rule: last,
        exit_rules,
    }
}

/// Replaces a bounded formula by the equivalent finite set of non-recursive
/// rules (pseudo-recursion, section 6): the exit-closed expansions
/// 0 ..= rank. Returns `None` if the formula is not bounded.
pub fn to_nonrecursive(lr: &LinearRecursion) -> Option<Program> {
    let classification = Classification::of(&lr.recursive_rule);
    let rank = classification.rank_bound()?;
    Some(to_nonrecursive_with_rank(lr, rank))
}

/// The exit-closed expansions `0 ..= rank` as a non-recursive program.
/// Level 0 is the exit rules themselves; level k is the k-th expansion with
/// its recursive atom replaced by each exit body.
pub fn to_nonrecursive_with_rank(lr: &LinearRecursion, rank: u64) -> Program {
    let mut rules: Vec<Rule> = lr.exit_rules.clone();
    let mut counter = 50_000u32;
    for (k, expansion) in Unfolder::new(&lr.recursive_rule).enumerate() {
        if (k as u64) >= rank {
            break;
        }
        for exit in &lr.exit_rules {
            rules.push(close_with_exit(&expansion, exit, &mut counter));
        }
    }
    Program::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classification;
    use recurs_datalog::database::Database;
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::relation::{tuple_u64, Relation};
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn s4_unfolds_three_times() {
        // Example 4: weight-3 cycle; transformed formula has the original
        // exit plus two more (s4a′ and s4c′).
        let f = lr(
            "P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).\n\
                    P(x1,x2,x3) :- E(x1,x2,x3).",
        );
        let t = unfold_to_stable(&f).expect("class A3 is transformable");
        assert_eq!(t.period, 3);
        assert_eq!(t.exit_rules.len(), 3);
        // s4d: the 3rd expansion has 9 non-recursive atoms + P.
        assert_eq!(t.stable_rule.body.len(), 10);
        // The result is genuinely stable.
        assert!(Classification::of(&t.stable_rule).is_strongly_stable());
    }

    #[test]
    fn s4_transform_preserves_semantics() {
        let f = lr(
            "P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).\n\
                    P(x1,x2,x3) :- E(x1,x2,x3).",
        );
        let t = unfold_to_stable(&f).unwrap();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5)]));
        db.insert_relation("B", Relation::from_pairs([(11, 12), (12, 13), (13, 14)]));
        db.insert_relation("C", Relation::from_pairs([(21, 22), (22, 23), (23, 24)]));
        db.insert_relation(
            "E",
            Relation::from_tuples(
                3,
                [
                    tuple_u64([2, 12, 22]),
                    tuple_u64([3, 13, 23]),
                    tuple_u64([4, 11, 21]),
                ],
            ),
        );
        let mut db2 = db.clone();
        semi_naive(&mut db, &f.to_program(), None).unwrap();
        semi_naive(&mut db2, &t.to_program(), None).unwrap();
        assert_eq!(db.get("P").unwrap(), db2.get("P").unwrap());
    }

    #[test]
    fn s7_unfolds_six_times() {
        let f = lr("P(x,y,z,u,w,s,v) :- A(x,t), P(t,z,y,w,s,r,v), B(u,r).");
        let t = unfold_to_stable(&f).unwrap();
        assert_eq!(t.period, 6);
        assert_eq!(t.exit_rules.len(), 6); // 1 original + 5 closed expansions
        assert!(Classification::of(&t.stable_rule).is_strongly_stable());
    }

    #[test]
    fn stable_formula_has_period_one() {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        let t = unfold_to_stable(&f).unwrap();
        assert_eq!(t.period, 1);
        assert_eq!(t.stable_rule, f.recursive_rule);
        assert_eq!(t.exit_rules, f.exit_rules);
    }

    #[test]
    fn class_b_is_not_transformable() {
        let f = lr("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).");
        assert!(unfold_to_stable(&f).is_none());
    }

    #[test]
    fn s8_to_nonrecursive_matches_paper() {
        // Example 8: rank 2 — exits + two closed expansions (s8a′, s8b′).
        let f = lr("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).\n\
                    P(x,y,z,u) :- E(x,y,z,u).");
        let p = to_nonrecursive(&f).expect("class B is bounded");
        assert_eq!(p.rules.len(), 3); // exit, level 1, level 2
        assert!(p.rules.iter().all(|r| !r.is_recursive()));
        // Level 1 (s8a′): 3 non-recursive atoms + E = 4 atoms.
        assert_eq!(p.rules[1].body.len(), 4);
        // Level 2 (s8b′): 6 non-recursive atoms + E = 7 atoms.
        assert_eq!(p.rules[2].body.len(), 7);
    }

    #[test]
    fn s8_nonrecursive_is_equivalent_on_data() {
        let f = lr("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).\n\
                    P(x,y,z,u) :- E(x,y,z,u).");
        let p = to_nonrecursive(&f).unwrap();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (3, 4), (5, 6)]));
        db.insert_relation("B", Relation::from_pairs([(2, 9), (4, 8)]));
        db.insert_relation("C", Relation::from_pairs([(7, 2), (6, 4)]));
        db.insert_relation(
            "E",
            Relation::from_tuples(
                4,
                [
                    tuple_u64([3, 2, 7, 2]),
                    tuple_u64([5, 4, 6, 4]),
                    tuple_u64([1, 1, 1, 1]),
                ],
            ),
        );
        let mut db2 = db.clone();
        semi_naive(&mut db, &f.to_program(), None).unwrap();
        semi_naive(&mut db2, &p, None).unwrap();
        assert_eq!(db.get("P").unwrap(), db2.get("P").unwrap());
    }

    #[test]
    fn s5_to_nonrecursive() {
        // s5: permutational, rank 2: exits + levels 1, 2.
        let f = lr("P(x, y, z) :- P(y, z, x).");
        let p = to_nonrecursive(&f).unwrap();
        assert_eq!(p.rules.len(), 3);
        let mut db = Database::new();
        db.insert_relation(
            "E",
            Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([4, 5, 6])]),
        );
        let mut db2 = db.clone();
        semi_naive(&mut db, &f.to_program(), None).unwrap();
        semi_naive(&mut db2, &p, None).unwrap();
        let p_rel = db.get("P").unwrap();
        assert_eq!(p_rel, db2.get("P").unwrap());
        // All three rotations of each exit tuple are derived.
        assert_eq!(p_rel.len(), 6);
    }

    #[test]
    fn unfold_by_larger_period_is_still_equivalent() {
        // Unfolding a stable formula by any period preserves semantics.
        let f = lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        let t = unfold_by(&f, 4);
        assert_eq!(t.exit_rules.len(), 4);
        let mut db = Database::new();
        let edges = Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        db.insert_relation("A", edges.clone());
        db.insert_relation("E", edges);
        let mut db2 = db.clone();
        semi_naive(&mut db, &f.to_program(), None).unwrap();
        semi_naive(&mut db2, &t.to_program(), None).unwrap();
        assert_eq!(db.get("P").unwrap(), db2.get("P").unwrap());
    }
}
