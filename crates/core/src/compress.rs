//! The paper's compression Remark (section 3) as an executable rule
//! transformation: several undirected edges within one connectivity group
//! compress into a single combined predicate —
//!
//! ```text
//! P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y)
//!   ⇒  P(x, y) :- ABC(x, u), P(u, y)
//! ```
//!
//! where the relation `ABC` is the join of `A`, `B`, `C` projected onto the
//! group's *interface* variables (those touched by directed edges). The
//! compressed rule has the same I-graph class and the same answers once the
//! combined relations are materialized — both facts are tested. Compression
//! is also a practical optimization: the inner joins are evaluated once
//! instead of once per fixpoint iteration.

use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::eval_body;
use recurs_datalog::rule::{LinearRecursion, Rule};
use recurs_datalog::term::{Atom, Term};
use recurs_datalog::Symbol;
use recurs_igraph::condense::condense;
use recurs_igraph::igraph_of;
use std::collections::{BTreeSet, HashMap};

/// One combined predicate produced by compression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedPredicate {
    /// The fresh predicate name (concatenated member labels).
    pub name: Symbol,
    /// The interface variables, in the order they appear in the combined
    /// atom.
    pub interface: Vec<Symbol>,
    /// The original atoms this predicate replaces.
    pub members: Vec<Atom>,
}

/// The result of compressing a formula.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The rewritten formula.
    pub lr: LinearRecursion,
    /// The combined predicates to materialize before evaluation.
    pub combined: Vec<CombinedPredicate>,
}

impl Compressed {
    /// Materializes every combined predicate into the database (joins the
    /// member atoms and projects the interface).
    pub fn materialize(&self, db: &mut Database) -> Result<(), DatalogError> {
        for cp in &self.combined {
            let bindings = eval_body(db, &cp.members, &HashMap::new())?;
            let rel = bindings.project_vars(&cp.interface)?;
            db.insert_relation(cp.name, rel);
        }
        Ok(())
    }
}

/// Compresses the recursive rule: within each undirected-connectivity group,
/// if two or more non-recursive atoms exist, they are replaced by a single
/// combined atom over the group's interface variables (variables that are
/// endpoints of directed edges, i.e. occur in the recursive predicate's head
/// or body occurrence). Groups with fewer than two atoms, or atoms whose
/// group lacks an interface, are left untouched.
pub fn compress(lr: &LinearRecursion) -> Compressed {
    let rule = &lr.recursive_rule;
    let condensed = condense(&igraph_of(rule));
    let rec_atom = lr.recursive_body_atom().clone();
    // Interface variables: endpoints of directed edges.
    let interface_vars: BTreeSet<Symbol> =
        rule.head.variables().chain(rec_atom.variables()).collect();
    // Group → atoms.
    let mut group_atoms: HashMap<usize, Vec<Atom>> = HashMap::new();
    for atom in lr.nonrecursive_body_atoms() {
        let var = atom
            .variables()
            .next()
            .expect("atoms have at least one variable");
        group_atoms
            .entry(condensed.group(var))
            .or_default()
            .push(atom.clone());
    }
    let mut combined: Vec<CombinedPredicate> = Vec::new();
    let mut new_body: Vec<Atom> = Vec::new();
    // Keep group order deterministic.
    let mut groups: Vec<usize> = group_atoms.keys().copied().collect();
    groups.sort_unstable();
    for g in groups {
        let atoms = &group_atoms[&g];
        let interface: Vec<Symbol> = condensed.groups[g]
            .iter()
            .copied()
            .filter(|v| interface_vars.contains(v))
            .collect();
        if atoms.len() < 2 || interface.is_empty() {
            new_body.extend(atoms.iter().cloned());
            continue;
        }
        let mut label: String = atoms
            .iter()
            .map(|a| a.predicate.as_str())
            .collect::<Vec<_>>()
            .join("");
        // Avoid clashing with an existing predicate of the program.
        while lr
            .to_program()
            .rules
            .iter()
            .flat_map(|r| r.body.iter().map(|a| a.predicate))
            .any(|p| p.as_str() == label)
        {
            label.push('_');
        }
        let name = Symbol::intern(&label);
        new_body.push(Atom::new(
            name,
            interface.iter().map(|&v| Term::Var(v)).collect(),
        ));
        combined.push(CombinedPredicate {
            name,
            interface,
            members: atoms.clone(),
        });
    }
    new_body.push(rec_atom);
    let compressed_rule = Rule::new(rule.head.clone(), new_body);
    Compressed {
        lr: LinearRecursion {
            predicate: lr.predicate,
            recursive_rule: compressed_rule,
            exit_rules: lr.exit_rules.clone(),
        },
        combined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classification;
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::relation::Relation;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn remark_example_compresses_to_abc() {
        let f = lr("P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).");
        let c = compress(&f);
        assert_eq!(c.combined.len(), 1);
        let cp = &c.combined[0];
        assert_eq!(cp.name.as_str(), "ABC");
        assert_eq!(cp.members.len(), 3);
        // Interface: x and u (z is internal).
        assert_eq!(cp.interface, vec![Symbol::intern("u"), Symbol::intern("x")]);
        // The compressed rule is the paper's P(x,y) :- ABC(x,u), P(u,y)
        // (argument order follows the group's sorted interface).
        assert_eq!(c.lr.recursive_rule.body.len(), 2);
        assert!(Classification::of(&c.lr.recursive_rule).is_strongly_stable());
    }

    #[test]
    fn compression_preserves_class() {
        for src in [
            "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).",
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).",
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
        ] {
            let f = lr(src);
            let c = compress(&f);
            assert_eq!(
                Classification::of(&f.recursive_rule).class,
                Classification::of(&c.lr.recursive_rule).class,
                "class changed for {src}"
            );
        }
    }

    #[test]
    fn compression_preserves_answers() {
        let f = lr("P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).");
        let c = compress(&f);
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        db.insert_relation("B", Relation::from_pairs([(1, 8), (2, 9), (3, 7)]));
        db.insert_relation("C", Relation::from_pairs([(8, 2), (9, 3), (7, 5)]));
        db.insert_relation("E", Relation::from_pairs([(2, 20), (3, 30), (4, 40)]));
        let mut db2 = db.clone();
        c.materialize(&mut db2).unwrap();
        semi_naive(&mut db, &f.to_program(), None).unwrap();
        semi_naive(&mut db2, &c.lr.to_program(), None).unwrap();
        assert_eq!(db.get("P").unwrap(), db2.get("P").unwrap());
    }

    #[test]
    fn single_atom_groups_untouched() {
        let f = lr("P(x, y) :- A(x, z), P(z, y).");
        let c = compress(&f);
        assert!(c.combined.is_empty());
        assert_eq!(c.lr.recursive_rule, f.recursive_rule);
    }

    #[test]
    fn trivial_groups_are_not_compressed() {
        // D(a,b), G(b,c) form a trivial two-atom component with no interface
        // variable — compression must leave them alone (they gate levels,
        // and the interface projection would be nullary).
        let f = lr("P(x, y) :- A(x, z), D(a, b), G(b, cc), P(z, y).");
        let c = compress(&f);
        assert!(c.combined.is_empty());
        assert_eq!(c.lr.recursive_rule.body.len(), f.recursive_rule.body.len());
    }

    #[test]
    fn name_clash_is_avoided() {
        // A body already using predicate "AB" forces the combined name to
        // grow a suffix.
        let f = lr("P(x, y) :- A(x, u), B(u, x), AB(x, q), P(u, y).");
        let c = compress(&f);
        // Group of {x, u, q}: atoms A, B, AB → label "ABAB"? members sorted
        // by body order; whatever the label, it must not equal an existing
        // predicate.
        for cp in &c.combined {
            assert_ne!(cp.name.as_str(), "A");
            assert_ne!(cp.name.as_str(), "B");
            assert_ne!(cp.name.as_str(), "AB");
        }
    }
}
