//! Symbolic *compiled formulas* — the paper's σ / ⋈ / × / ∃ / ∪ₖ notation.
//!
//! A compiled formula is the logical-level object the paper derives for each
//! class: e.g. for the stable s3 and query `P(a, b, Z)`
//!
//! ```text
//! σE, ∪k (σA^k ‖ σB^k)-C^k-E
//! ```
//!
//! These are **display** objects: they document the plan a query will follow
//! (and are tested against the paper's figures); execution is handled by the
//! strategy modules ([`crate::counting`], [`crate::bounded`],
//! [`crate::magic`]).

use std::fmt;

/// Exponent attached to a chain segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Power {
    /// `e^k` — repeated k times at level k.
    K,
    /// `e^{k+1}`.
    KPlus1,
    /// A fixed count.
    Fixed(u64),
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Power::K => write!(f, "^k"),
            Power::KPlus1 => write!(f, "^(k+1)"),
            Power::Fixed(n) => write!(f, "^{n}"),
        }
    }
}

/// A symbolic compiled-formula expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FExpr {
    /// A base relation, e.g. `A` or `E`.
    Rel(String),
    /// σe — selection (query constants pushed into e).
    Sigma(Box<FExpr>),
    /// A join chain written by juxtaposition: `A-C-B`.
    Seq(Vec<FExpr>),
    /// Parallel branches evaluated independently: `{A ‖ B}`.
    Par(Vec<FExpr>),
    /// A segment repeated per level: `(...)^k`.
    Pow(Box<FExpr>, Power),
    /// ∪ₖ₌₀..∞ e — union over expansion levels.
    UnionK(Box<FExpr>),
    /// e × e — Cartesian product (information passing stopped).
    Product(Box<FExpr>, Box<FExpr>),
    /// ∃e — existence check gating the following expression.
    Exists(Box<FExpr>),
    /// e ⋈ e — explicit join (when the paper writes ⋈ rather than a chain).
    Join(Box<FExpr>, Box<FExpr>),
}

impl FExpr {
    /// A base relation by name.
    pub fn rel(name: impl Into<String>) -> FExpr {
        FExpr::Rel(name.into())
    }

    /// σ of a base relation — the most common leaf.
    pub fn sigma(name: impl Into<String>) -> FExpr {
        FExpr::Sigma(Box::new(FExpr::rel(name)))
    }

    /// Chains `self` with `next` (flattens nested chains).
    pub fn then(self, next: FExpr) -> FExpr {
        match self {
            FExpr::Seq(mut v) => {
                v.push(next);
                FExpr::Seq(v)
            }
            other => FExpr::Seq(vec![other, next]),
        }
    }

    /// Raises to a per-level power.
    pub fn pow(self, p: Power) -> FExpr {
        FExpr::Pow(Box::new(self), p)
    }
}

impl fmt::Display for FExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FExpr::Rel(name) => f.write_str(name),
            FExpr::Sigma(e) => write!(f, "σ{e}"),
            FExpr::Seq(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "-")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            FExpr::Par(branches) => {
                write!(f, "{{")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ‖ ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, "}}")
            }
            FExpr::Pow(e, p) => {
                let simple = matches!(**e, FExpr::Rel(_) | FExpr::Par(_))
                    || matches!(**e, FExpr::Sigma(ref inner) if matches!(**inner, FExpr::Rel(_)));
                let needs_parens = !simple;
                if needs_parens {
                    write!(f, "[{e}]{p}")
                } else {
                    write!(f, "{e}{p}")
                }
            }
            FExpr::UnionK(e) => write!(f, "∪k[{e}]"),
            FExpr::Product(a, b) => write!(f, "({a}) × ({b})"),
            FExpr::Exists(e) => write!(f, "(∃ {e})"),
            FExpr::Join(a, b) => write!(f, "({a} ⋈ {b})"),
        }
    }
}

/// A compiled formula: the exit part evaluated first (`σE`), followed by the
/// per-level terms — rendered as the paper writes them, comma-separated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledFormula {
    /// Human-readable description of the strategy that will execute it.
    pub strategy: String,
    /// The ordered parts, e.g. `[σE, ∪k[...]]`.
    pub parts: Vec<FExpr>,
}

impl fmt::Display for CompiledFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ",  ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_s3_style_counting_formula() {
        // σE, ∪k (σA^k ‖ σB^k)-C^k-E
        let per_level = FExpr::Par(vec![
            FExpr::sigma("A").pow(Power::K),
            FExpr::sigma("B").pow(Power::K),
        ])
        .then(FExpr::rel("C").pow(Power::K))
        .then(FExpr::rel("E"));
        let cf = CompiledFormula {
            strategy: "counting".into(),
            parts: vec![FExpr::sigma("E"), FExpr::UnionK(Box::new(per_level))],
        };
        assert_eq!(cf.to_string(), "σE,  ∪k[{σA^k ‖ σB^k}-C^k-E]");
    }

    #[test]
    fn renders_s9_product_plan() {
        // σE, (σA) × (∪k (E ⋈ B)(BA)^k)
        let chain = FExpr::Join(Box::new(FExpr::rel("E")), Box::new(FExpr::rel("B")))
            .then(FExpr::rel("BA").pow(Power::K));
        let plan = FExpr::Product(
            Box::new(FExpr::sigma("A")),
            Box::new(FExpr::UnionK(Box::new(chain))),
        );
        let cf = CompiledFormula {
            strategy: "per-case (class C)".into(),
            parts: vec![FExpr::sigma("E"), plan],
        };
        assert_eq!(cf.to_string(), "σE,  (σA) × (∪k[(E ⋈ B)-BA^k])");
    }

    #[test]
    fn renders_existence_plan() {
        // (∃ ∪k (AB)^k (E ⋈ B)) A   — s9's P(v,v,d) plan.
        let chain = FExpr::rel("AB").pow(Power::K).then(FExpr::Join(
            Box::new(FExpr::rel("E")),
            Box::new(FExpr::rel("B")),
        ));
        let plan = FExpr::Exists(Box::new(FExpr::UnionK(Box::new(chain)))).then(FExpr::rel("A"));
        assert_eq!(plan.to_string(), "(∃ ∪k[AB^k-(E ⋈ B)])-A");
    }

    #[test]
    fn then_flattens_chains() {
        let e = FExpr::rel("A").then(FExpr::rel("B")).then(FExpr::rel("C"));
        assert_eq!(e.to_string(), "A-B-C");
        match e {
            FExpr::Seq(v) => assert_eq!(v.len(), 3),
            _ => panic!("expected flattened Seq"),
        }
    }

    #[test]
    fn power_display() {
        assert_eq!(FExpr::rel("D").pow(Power::KPlus1).to_string(), "D^(k+1)");
        assert_eq!(FExpr::rel("D").pow(Power::Fixed(3)).to_string(), "D^3");
    }
}
