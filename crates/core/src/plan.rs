//! Query planning: class-driven strategy selection and compiled-formula
//! generation.
//!
//! Given a validated linear recursion and a query atom, [`plan_query`]
//! classifies the formula and picks the executable strategy:
//!
//! | class | strategy |
//! |-------|----------|
//! | bounded (B, D, pure permutational, bounded mixes) | [`crate::bounded`] — finite union of non-recursive levels |
//! | A1–A5 (after unfold-to-stable if needed) | [`crate::counting`] — per-position chains, σ-first |
//! | C, E, F (and anything else) | [`crate::magic`] — adorned magic sets |
//!
//! The plan also carries the symbolic [`CompiledFormula`] in the paper's
//! notation, generated from the same structural analysis.

use crate::bounded::{self, BoundedPlan};
use crate::classify::Classification;
use crate::counting::{self, CountingPlan};
use crate::formula::{CompiledFormula, FExpr, Power};
use crate::magic::{self, MagicPlan};
use crate::transform::{unfold_to_stable, StableTransform};
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::{LinearRecursion, Rule};
use recurs_datalog::term::Atom;
use recurs_datalog::Symbol;
use std::collections::BTreeSet;

/// Which executable strategy a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Finite union of exit-closed expansions (pseudo recursion).
    Bounded,
    /// Counting over per-position chains (stable formulas).
    Counting,
    /// Adorned magic-sets rewrite (the general method).
    Magic,
}

enum PlanImpl {
    Bounded(BoundedPlan),
    Counting(CountingPlan),
    Magic(MagicPlan),
}

/// A fully prepared query plan.
pub struct QueryPlan {
    /// The classification that drove strategy selection.
    pub classification: Classification,
    /// The strategy chosen.
    pub strategy: StrategyKind,
    /// The unfold-to-stable transformation, when one was applied (A3–A5).
    pub transform: Option<StableTransform>,
    /// The compiled formula in the paper's notation.
    pub compiled: CompiledFormula,
    /// The query form the plan serves.
    pub form: QueryForm,
    inner: PlanImpl,
}

impl QueryPlan {
    /// Executes the plan. The result is over the query's distinct variables
    /// in first-occurrence order (arity 0 for a fully bound query — then
    /// non-emptiness means "yes").
    pub fn execute(&self, db: &Database, query: &Atom) -> Result<Relation, DatalogError> {
        assert_eq!(
            QueryForm::of_atom(query),
            self.form,
            "query does not match the plan's form"
        );
        match &self.inner {
            PlanImpl::Bounded(p) => bounded::execute(p, db, query),
            PlanImpl::Counting(p) => match counting::execute(p, db, query) {
                // Counting refuses to answer when the frontier trajectory
                // did not repeat within budget (data with astronomically
                // long periods); the general strategy always terminates, so
                // fall back transparently.
                Err(DatalogError::LimitExceeded { .. }) => {
                    let fallback = magic::build_plan(&p.lr, &self.form);
                    magic::execute(&fallback, db, query).map(|(r, _)| r)
                }
                other => other,
            },
            PlanImpl::Magic(p) => magic::execute(p, db, query).map(|(r, _)| r),
        }
    }

    /// For a magic plan: the rewritten (adorned + magic) Datalog program the
    /// plan evaluates — the executable form of the paper's information
    /// passing. `None` for other strategies.
    pub fn rewrite_program(&self) -> Option<&recurs_datalog::Program> {
        match &self.inner {
            PlanImpl::Magic(p) => Some(&p.program),
            _ => None,
        }
    }

    /// For a bounded plan: the equivalent non-recursive levels (the paper's
    /// s8a′/s8b′-style rules). `None` for other strategies.
    pub fn bounded_levels(&self) -> Option<&recurs_datalog::Program> {
        match &self.inner {
            PlanImpl::Bounded(p) => Some(&p.levels),
            _ => None,
        }
    }

    /// For a counting plan: the per-position chains as `(top, bottom,
    /// predicate labels)` triples. `None` for other strategies.
    pub fn counting_chains(&self) -> Option<Vec<(Symbol, Symbol, Vec<Symbol>)>> {
        match &self.inner {
            PlanImpl::Counting(p) => Some(
                p.chains
                    .iter()
                    .map(|c| {
                        (
                            c.top,
                            c.bottom,
                            c.atoms.iter().map(|a| a.predicate).collect(),
                        )
                    })
                    .collect(),
            ),
            _ => None,
        }
    }
}

/// Plans a query against a linear recursion.
pub fn plan_query(lr: &LinearRecursion, query: &Atom) -> QueryPlan {
    assert_eq!(query.predicate, lr.predicate, "query predicate mismatch");
    let form = QueryForm::of_atom(query);
    plan_for_form(lr, &form)
}

/// Plans for a query form (the shape `P(d, v, …)` without the constants).
pub fn plan_for_form(lr: &LinearRecursion, form: &QueryForm) -> QueryPlan {
    let classification = Classification::of(&lr.recursive_rule);
    // 1. Bounded formulas with a *proven* rank bound: the finite union
    //    always wins — no fixpoint at all. (Bounded mixtures without a
    //    proven bound — Theorem 11's rotating-permutational + B/D case —
    //    fall through to the general strategy, which still terminates.)
    if let Some(plan) = bounded::build_plan(lr) {
        let compiled = compiled_bounded(&plan);
        return QueryPlan {
            classification,
            strategy: StrategyKind::Bounded,
            transform: None,
            compiled,
            form: form.clone(),
            inner: PlanImpl::Bounded(plan),
        };
    }
    // 2. Class A: transform to stable if needed, then count.
    if classification.is_transformable_to_stable() {
        let transform = unfold_to_stable(lr).expect("class A is transformable");
        let stable = transform.to_linear_recursion();
        let plan = counting::build_plan(&stable).expect("the unfolded formula is strongly stable");
        let compiled = compiled_counting(&plan, form);
        return QueryPlan {
            classification,
            strategy: StrategyKind::Counting,
            transform: Some(transform),
            compiled,
            form: form.clone(),
            inner: PlanImpl::Counting(plan),
        };
    }
    // 3. Everything else: magic sets.
    let plan = magic::build_plan(lr, form);
    let compiled = compiled_magic(lr, form);
    QueryPlan {
        classification,
        strategy: StrategyKind::Magic,
        transform: None,
        compiled,
        form: form.clone(),
        inner: PlanImpl::Magic(plan),
    }
}

/// Renders a bounded plan: `σ<level0>, σ<level1>, …` — one selection-pushed
/// conjunction per materialized level.
fn compiled_bounded(plan: &BoundedPlan) -> CompiledFormula {
    let parts = plan
        .levels
        .rules
        .iter()
        .map(|rule| FExpr::Sigma(Box::new(chain_of_rule(rule))))
        .collect();
    CompiledFormula {
        strategy: format!(
            "bounded: finite union of {} levels (rank {})",
            plan.levels.rules.len(),
            plan.rank
        ),
        parts,
    }
}

fn chain_of_rule(rule: &Rule) -> FExpr {
    let mut parts: Vec<FExpr> = rule
        .body
        .iter()
        .map(|a| FExpr::rel(a.predicate.as_str()))
        .collect();
    if parts.len() == 1 {
        parts.pop().expect("non-empty")
    } else {
        FExpr::Seq(parts)
    }
}

/// Renders a counting plan in the paper's style for a query form:
/// `σE, ∪k[{σA^k ‖ σB^k}-E-C^k]`.
fn compiled_counting(plan: &CountingPlan, form: &QueryForm) -> CompiledFormula {
    let bound: BTreeSet<usize> = form.determined_positions().collect();
    let mut down: Vec<FExpr> = Vec::new();
    let mut up: Vec<FExpr> = Vec::new();
    for (i, chain) in plan.chains.iter().enumerate() {
        if chain.is_identity() {
            continue;
        }
        let label: String = chain
            .atoms
            .iter()
            .map(|a| a.predicate.as_str())
            .collect::<Vec<_>>()
            .join("");
        if bound.contains(&i) {
            down.push(FExpr::Sigma(Box::new(FExpr::rel(label))).pow(Power::K));
        } else {
            up.push(FExpr::rel(label).pow(Power::K));
        }
    }
    let mut level = match down.len() {
        0 => None,
        1 => Some(down.pop().expect("one element")),
        _ => Some(FExpr::Par(down)),
    };
    let exit = FExpr::rel("E");
    let mut seq = match level.take() {
        Some(d) => d.then(exit),
        None => exit,
    };
    for u in up {
        seq = seq.then(u);
    }
    CompiledFormula {
        strategy: "counting over per-position chains (stable formula)".into(),
        parts: vec![FExpr::sigma("E"), FExpr::UnionK(Box::new(seq))],
    }
}

/// Renders a best-effort compiled formula for the magic strategy from the
/// propagation trace: the σ-chains of the pre-periodic forms, the periodic
/// segment raised to `^k`, the exit, and any chains outside every closure
/// rendered as the up-phase. For the paper's dependent/mixed examples this
/// reproduces the published plans (σA-C-B-[{A‖B}-C]^k-…-E); for class C the
/// disconnected part shows up as a trailing product/existence note in the
/// strategy string.
fn compiled_magic(lr: &LinearRecursion, form: &QueryForm) -> CompiledFormula {
    let rule = &lr.recursive_rule;
    let p = lr.predicate;
    // Propagation trace with cycle detection.
    let mut trace = vec![form.clone()];
    let cycle_start = loop {
        let next = recurs_datalog::adornment::propagate(rule, trace.last().expect("non-empty"));
        if let Some(idx) = trace.iter().position(|f| *f == next) {
            break idx;
        }
        trace.push(next);
    };
    let chain_for = |f: &QueryForm| -> Option<FExpr> {
        let seed: BTreeSet<Symbol> = f
            .determined_positions()
            .filter_map(|i| rule.head.terms[i].as_var())
            .collect();
        closure_chain(lr, &seed)
    };
    let mut seq: Option<FExpr> = None;
    let push = |part: FExpr, seq: &mut Option<FExpr>| {
        *seq = Some(match seq.take() {
            None => part,
            Some(s) => s.then(part),
        });
    };
    for f in &trace[..cycle_start] {
        if let Some(c) = chain_for(f) {
            push(c, &mut seq);
        }
    }
    // Periodic segment.
    let cyclic: Vec<FExpr> = trace[cycle_start..].iter().filter_map(chain_for).collect();
    if !cyclic.is_empty() {
        let inner = if cyclic.len() == 1 {
            cyclic.into_iter().next().expect("one element")
        } else {
            FExpr::Seq(cyclic)
        };
        push(inner.pow(Power::K), &mut seq);
    }
    push(FExpr::rel("E"), &mut seq);
    // Atoms outside every closure: the up-phase / disconnected part.
    let all_closure: BTreeSet<Symbol> = trace
        .iter()
        .flat_map(|f| {
            let seed: BTreeSet<Symbol> = f
                .determined_positions()
                .filter_map(|i| rule.head.terms[i].as_var())
                .collect();
            recurs_datalog::adornment::determined_closure(rule, p, &seed)
        })
        .collect();
    let mut outside: Vec<&str> = Vec::new();
    for atom in lr.nonrecursive_body_atoms() {
        if !atom.variables().any(|v| all_closure.contains(&v)) {
            outside.push(atom.predicate.as_str());
        }
    }
    for name in &outside {
        push(FExpr::rel(*name).pow(Power::KPlus1), &mut seq);
    }
    let body = FExpr::Sigma(Box::new(seq.expect("at least the exit")));
    CompiledFormula {
        strategy: if outside.is_empty() {
            "magic-sets information passing (general method)".into()
        } else {
            format!(
                "magic-sets information passing; {} disconnected from the query constants \
                 (Cartesian product / existence check at evaluation)",
                outside.join(", ")
            )
        },
        parts: vec![FExpr::sigma("E"), FExpr::UnionK(Box::new(body))],
    }
}

/// Orders the atoms of the determined closure by evaluability rounds
/// (selection-first): round 1 holds atoms touching the seed, round 2 atoms
/// touching round 1's variables, … Atoms sharing a round render as parallel
/// branches. Returns `None` if the closure is empty.
fn closure_chain(lr: &LinearRecursion, seed: &BTreeSet<Symbol>) -> Option<FExpr> {
    let mut determined = seed.clone();
    let mut remaining: Vec<&Atom> = lr.nonrecursive_body_atoms().collect();
    let mut rounds: Vec<Vec<&Atom>> = Vec::new();
    loop {
        let (this_round, rest): (Vec<&Atom>, Vec<&Atom>) = remaining
            .iter()
            .partition(|a| a.variables().any(|v| determined.contains(&v)));
        if this_round.is_empty() {
            break;
        }
        for a in &this_round {
            for v in a.variables() {
                determined.insert(v);
            }
        }
        rounds.push(this_round);
        remaining = rest;
    }
    if rounds.is_empty() {
        return None;
    }
    let mut seq: Option<FExpr> = None;
    for round in rounds {
        let part = if round.len() == 1 {
            FExpr::rel(round[0].predicate.as_str())
        } else {
            FExpr::Par(
                round
                    .iter()
                    .map(|a| FExpr::rel(a.predicate.as_str()))
                    .collect(),
            )
        };
        seq = Some(match seq {
            None => part,
            Some(s) => s.then(part),
        });
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::eval::{answer_query, semi_naive};
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::relation::tuple_u64;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    fn check(f: &LinearRecursion, db: &Database, query: &str, expect: StrategyKind) {
        let q = parse_atom(query).unwrap();
        let plan = plan_query(f, &q);
        assert_eq!(plan.strategy, expect, "strategy for {query}");
        let got = plan.execute(db, &q).unwrap();
        let mut db2 = db.clone();
        semi_naive(&mut db2, &f.to_program(), None).unwrap();
        let want = answer_query(&db2, &q).unwrap();
        assert_eq!(got, want, "plan ≠ oracle for {query}");
    }

    #[test]
    fn stable_formula_uses_counting() {
        let f = lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        check(&f, &db, "P('1', y)", StrategyKind::Counting);
        check(&f, &db, "P(x, y)", StrategyKind::Counting);
    }

    #[test]
    fn a3_formula_transforms_then_counts() {
        let f = lr(
            "P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).\n\
                    P(x1,x2,x3) :- E(x1,x2,x3).",
        );
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5)]));
        db.insert_relation("B", Relation::from_pairs([(11, 12), (12, 13), (13, 14)]));
        db.insert_relation("C", Relation::from_pairs([(21, 22), (22, 23), (23, 24)]));
        db.insert_relation(
            "E",
            Relation::from_tuples(3, [tuple_u64([2, 12, 22]), tuple_u64([4, 11, 23])]),
        );
        let q = parse_atom("P('1', '11', z)").unwrap();
        let plan = plan_query(&f, &q);
        assert_eq!(plan.strategy, StrategyKind::Counting);
        assert_eq!(plan.transform.as_ref().unwrap().period, 3);
        check(&f, &db, "P('1', '11', z)", StrategyKind::Counting);
        check(&f, &db, "P(x, y, z)", StrategyKind::Counting);
    }

    #[test]
    fn bounded_formula_uses_bounded() {
        let f = lr("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).\n\
                    P(x,y,z,u) :- E(x,y,z,u).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2)]));
        db.insert_relation("B", Relation::from_pairs([(2, 9)]));
        db.insert_relation("C", Relation::from_pairs([(7, 2)]));
        db.insert_relation("E", Relation::from_tuples(4, [tuple_u64([3, 2, 7, 2])]));
        check(&f, &db, "P(x, y, z, u)", StrategyKind::Bounded);
        check(&f, &db, "P('1', y, z, u)", StrategyKind::Bounded);
    }

    #[test]
    fn class_c_uses_magic() {
        let f = lr("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\n\
                    P(x, y, z) :- E(x, y, z).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2)]));
        db.insert_relation("B", Relation::from_pairs([(5, 6)]));
        db.insert_relation("E", Relation::from_tuples(3, [tuple_u64([5, 9, 6])]));
        check(&f, &db, "P('1', y, z)", StrategyKind::Magic);
    }

    #[test]
    fn class_e_uses_magic() {
        let f = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).\n\
                    P(x, y) :- E(x, y).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("B", Relation::from_pairs([(11, 12)]));
        db.insert_relation("C", Relation::from_pairs([(2, 12)]));
        db.insert_relation("E", Relation::from_pairs([(2, 12), (1, 11)]));
        check(&f, &db, "P('1', y)", StrategyKind::Magic);
    }

    #[test]
    fn compiled_formula_for_s3() {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).\n\
                    P(x,y,z) :- E(x,y,z).");
        let plan = plan_for_form(&f, &QueryForm::parse("ddv"));
        assert_eq!(plan.compiled.to_string(), "σE,  ∪k[{σA^k ‖ σB^k}-E-C^k]");
    }

    #[test]
    fn compiled_formula_for_s11_matches_paper() {
        // Paper (Example 11): σE, σA-C-B-E, ∪k σA-C-B-[{A‖B}-C]^k-C-E …
        // Our renderer folds the pre-period into the same ∪k term:
        let f = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).\n\
                    P(x, y) :- E(x, y).");
        let plan = plan_for_form(&f, &QueryForm::parse("dv"));
        let s = plan.compiled.to_string();
        assert!(s.starts_with("σE,"), "{s}");
        assert!(s.contains("A-C-B"), "paper's σA-C-B chain missing: {s}");
        assert!(s.contains("^k"), "{s}");
    }

    #[test]
    fn compiled_formula_for_s12_matches_paper() {
        // Paper (Example 14): ∪k σA-C-B-[{A‖B}-C]^k-E-D^(k+1).
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).\n\
                    P(x,y,z) :- E(x,y,z).");
        let plan = plan_for_form(&f, &QueryForm::parse("dvv"));
        let s = plan.compiled.to_string();
        assert!(s.contains("A-C-B"), "{s}");
        assert!(s.contains("{A ‖ B}-C"), "{s}");
        assert!(s.contains("D^(k+1)"), "{s}");
    }

    #[test]
    fn bounded_compiled_formula_lists_levels() {
        let f = lr("P(x, y, z) :- P(y, z, x).");
        let plan = plan_for_form(&f, &QueryForm::parse("vvv"));
        assert_eq!(plan.strategy, StrategyKind::Bounded);
        // Exit + 2 rotations: three σ-terms.
        assert_eq!(plan.compiled.parts.len(), 3);
    }

    #[test]
    fn plan_introspection_matches_strategy() {
        let stable = lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        let p = plan_for_form(&stable, &QueryForm::parse("dv"));
        assert!(p.rewrite_program().is_none());
        assert!(p.bounded_levels().is_none());
        let chains = p.counting_chains().expect("counting plan");
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].2, vec![Symbol::intern("A")]);
        assert!(chains[1].2.is_empty()); // identity position

        let bounded = lr("P(x, y, z) :- P(y, z, x).");
        let p = plan_for_form(&bounded, &QueryForm::parse("vvv"));
        assert_eq!(p.bounded_levels().unwrap().rules.len(), 3);
        assert!(p.counting_chains().is_none());

        let dependent = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).\n\
                            P(x, y) :- E(x, y).");
        let p = plan_for_form(&dependent, &QueryForm::parse("dv"));
        let program = p.rewrite_program().expect("magic plan");
        // Adorned exit + adorned recursive + magic rule for the dv form,
        // plus the same for the reachable dd form.
        assert!(program.rules.len() >= 4);
        assert!(program
            .rules
            .iter()
            .any(|r| r.head.predicate.as_str().starts_with("magic__")));
    }

    #[test]
    fn fully_bound_queries_all_strategies() {
        let stable = lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
        check(&stable, &db, "P('1', '3')", StrategyKind::Counting);
        check(&stable, &db, "P('3', '1')", StrategyKind::Counting);
    }
}
