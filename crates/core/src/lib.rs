//! `recurs-core` — classification, compilation and query planning for linear
//! recursive formulas in deductive databases.
//!
//! This crate implements the primary contribution of *Classification of
//! Recursive Formulas in Deductive Databases* (Youn, Henschen & Han, SIGMOD
//! 1988):
//!
//! * the full **classification** A1–A5 / B / C / D / E / F over the
//!   condensed I-graph ([`classify`]);
//! * **strong stability**, both syntactically and semantically, with
//!   Theorem 1's equivalence checkable on any rule ([`stability`]);
//! * the **transformations**: unfold-to-stable for class A (Theorems 2/4)
//!   and bounded-to-nonrecursive (Ioannidis's theorem, Theorems 10/11)
//!   ([`transform`]);
//! * symbolic **compiled formulas** in the paper's σ/⋈/×/∃/∪ₖ notation
//!   ([`formula`]);
//! * three executable **strategies** — [`bounded`], [`counting`], and
//!   [`magic`] — selected per class by the [`plan`] module;
//! * an equivalence [`oracle`] certifying every plan against the semi-naive
//!   fixpoint, and human-readable [`report`]s.
//!
//! # Quick example
//!
//! ```
//! use recurs_core::classify::{Classification, FormulaClass};
//! use recurs_core::plan::{plan_query, StrategyKind};
//! use recurs_datalog::parser::{parse_atom, parse_program};
//! use recurs_datalog::validate::validate_with_generic_exit;
//! use recurs_datalog::{Database, Relation};
//!
//! let lr = validate_with_generic_exit(&parse_program(
//!     "P(x, y) :- A(x, z), P(z, y).\n\
//!      P(x, y) :- E(x, y).",
//! ).unwrap()).unwrap();
//!
//! let class = Classification::of(&lr.recursive_rule);
//! assert!(class.is_strongly_stable()); // Theorem 1: disjoint unit cycles
//!
//! let mut db = Database::new();
//! db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
//! db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
//! let query = parse_atom("P('1', y)").unwrap();
//! let plan = plan_query(&lr, &query);
//! assert_eq!(plan.strategy, StrategyKind::Counting);
//! assert_eq!(plan.execute(&db, &query).unwrap().len(), 2); // 1 → {2, 3}
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algebra_plan;
pub mod bounded;
pub mod classify;
pub mod compress;
pub mod counting;
pub mod formula;
pub mod magic;
pub mod oracle;
pub mod paper_plans;
pub mod plan;
pub mod report;
pub mod stability;
pub mod transform;

pub use algebra_plan::{eval_plan, PlanExpr};
pub use classify::{Classification, ComponentClass, FormulaClass, OneDirectionalSubclass};
pub use compress::{compress, Compressed};
pub use formula::{CompiledFormula, FExpr, Power};
pub use plan::{plan_for_form, plan_query, QueryPlan, StrategyKind};
pub use transform::{to_nonrecursive, unfold_to_stable, StableTransform};
