//! The equivalence oracle: every compiled plan must agree with the
//! semi-naive fixpoint on every database. Tests and benches use this to
//! certify strategies; it is also handy for downstream users who extend the
//! planner.

use crate::plan::{plan_query, QueryPlan, StrategyKind};
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::{answer_query, semi_naive};
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::term::Atom;

/// The outcome of one oracle comparison.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Strategy the planner chose.
    pub strategy: StrategyKind,
    /// The plan's answers.
    pub plan_answers: Relation,
    /// The fixpoint's answers.
    pub oracle_answers: Relation,
    /// Tuples derived by the full fixpoint (cost indicator).
    pub oracle_tuples_derived: usize,
}

impl OracleReport {
    /// True if plan and oracle agree.
    pub fn agrees(&self) -> bool {
        self.plan_answers == self.oracle_answers
    }
}

/// Ground truth: semi-naive fixpoint, then selection + projection.
pub fn ground_truth(
    lr: &LinearRecursion,
    db: &Database,
    query: &Atom,
) -> Result<(Relation, usize), DatalogError> {
    let mut db = db.clone();
    let stats = semi_naive(&mut db, &lr.to_program(), None)?;
    Ok((answer_query(&db, query)?, stats.tuples_derived))
}

/// Plans `query`, executes it, and compares against the ground truth.
pub fn compare(
    lr: &LinearRecursion,
    db: &Database,
    query: &Atom,
) -> Result<OracleReport, DatalogError> {
    let plan = plan_query(lr, query);
    compare_with_plan(&plan, lr, db, query)
}

/// Like [`compare`] but with a pre-built plan (to amortize planning).
pub fn compare_with_plan(
    plan: &QueryPlan,
    lr: &LinearRecursion,
    db: &Database,
    query: &Atom,
) -> Result<OracleReport, DatalogError> {
    let plan_answers = plan.execute(db, query)?;
    let (oracle_answers, oracle_tuples_derived) = ground_truth(lr, db, query)?;
    Ok(OracleReport {
        strategy: plan.strategy,
        plan_answers,
        oracle_answers,
        oracle_tuples_derived,
    })
}

/// Asserts agreement, with a readable panic message on divergence.
///
/// # Panics
/// Panics if the plan and the fixpoint disagree.
pub fn assert_equivalent(lr: &LinearRecursion, db: &Database, query: &Atom) {
    let report = compare(lr, db, query).expect("oracle comparison failed to run");
    assert!(
        report.agrees(),
        "plan ({:?}) disagrees with fixpoint for {query} on {db:?}\nplan: {}\noracle: {}",
        report.strategy,
        report.plan_answers,
        report.oracle_answers,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::validate::validate_with_generic_exit;

    #[test]
    fn oracle_agrees_on_simple_case() {
        let lr = validate_with_generic_exit(
            &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
        let q = parse_atom("P('1', y)").unwrap();
        let report = compare(&lr, &db, &q).unwrap();
        assert!(report.agrees());
        assert_eq!(report.plan_answers.len(), 2);
        assert_equivalent(&lr, &db, &q);
    }
}
