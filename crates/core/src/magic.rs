//! The general executable strategy: adorned magic-sets specialization.
//!
//! For classes C, E, and F the paper derives evaluation plans per individual
//! case from the resolution graph and states that "a general method … is not
//! known at this time". As the executable general method, this module
//! implements the magic-sets transformation specialized to the paper's
//! single-linear-recursion setting. It performs exactly the information
//! passing the paper's plans describe — the determined-variable closure per
//! expansion level becomes a *magic* predicate per reachable query form, and
//! evaluation derives only tuples connected to the query constants — while
//! always terminating (it is ordinary Datalog run semi-naively).
//!
//! The correspondence with the paper's plan notation:
//! * the magic seed is the initial `σ` on the query constants;
//! * each magic rule is one `σ…-…` chain segment over the determined
//!   closure (the "down" part of the plan);
//! * the adorned rules perform the `…-E` exit join and the "up" chains;
//! * a reachable all-free form (information passing stops, e.g. s9's
//!   `P(d,v,v)`) yields an unconstrained adorned predicate — the paper's
//!   "retrieve the exit relation and take the Cartesian product".

use recurs_datalog::adornment::{propagate, QueryForm};
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::{answer_query, semi_naive, EvalStats};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::rule::{LinearRecursion, Program, Rule};
use recurs_datalog::term::{Atom, Term};
use recurs_datalog::Symbol;
use std::collections::BTreeSet;

/// The magic-sets rewrite of a linear recursion for one query form.
#[derive(Debug, Clone)]
pub struct MagicPlan {
    /// The original formula.
    pub lr: LinearRecursion,
    /// The query form the plan was specialized for.
    pub form: QueryForm,
    /// All query forms reachable by propagation (including `form`).
    pub reachable_forms: Vec<QueryForm>,
    /// The rewritten program (magic + adorned rules).
    pub program: Program,
    /// The adorned predicate holding the query's answers.
    pub answer_predicate: Symbol,
    /// The magic predicate to seed (if the query form has bound positions).
    pub seed_predicate: Option<Symbol>,
}

fn adorned_name(p: Symbol, form: &QueryForm) -> Symbol {
    Symbol::intern(&format!("{p}__{form}"))
}

fn magic_name(p: Symbol, form: &QueryForm) -> Symbol {
    Symbol::intern(&format!("magic__{p}__{form}"))
}

/// Builds the magic-sets plan for a query form. Works for every class.
///
/// ```
/// use recurs_core::magic::build_plan;
/// use recurs_datalog::parser::parse_program;
/// use recurs_datalog::validate::validate_with_generic_exit;
/// use recurs_datalog::QueryForm;
///
/// // The paper's s12 (Example 14): the dvv form propagates to ddv.
/// let lr = validate_with_generic_exit(&parse_program(
///     "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).",
/// ).unwrap()).unwrap();
/// let plan = build_plan(&lr, &QueryForm::parse("dvv"));
/// assert_eq!(plan.reachable_forms.len(), 2); // dvv and ddv
/// assert!(plan.seed_predicate.is_some());
/// ```
pub fn build_plan(lr: &LinearRecursion, form: &QueryForm) -> MagicPlan {
    assert_eq!(form.arity(), lr.dimension(), "query form arity mismatch");
    let p = lr.predicate;
    let rule = &lr.recursive_rule;

    // Reachable forms: iterate propagation until it cycles.
    let mut reachable: Vec<QueryForm> = vec![form.clone()];
    loop {
        let next = propagate(rule, reachable.last().expect("non-empty"));
        if reachable.contains(&next) {
            break;
        }
        reachable.push(next);
    }

    let mut rules: Vec<Rule> = Vec::new();
    for a in &reachable {
        let pa = adorned_name(p, a);
        let bound: Vec<usize> = a.determined_positions().collect();
        let magic_atom: Option<Atom> = if bound.is_empty() {
            None
        } else {
            Some(Atom::new(
                magic_name(p, a),
                bound.iter().map(|&i| rule.head.terms[i]).collect(),
            ))
        };

        // Adorned exit rules: P_a(head) :- Magic_a(bound head vars), exit body.
        for exit in &lr.exit_rules {
            // The exit rule's own head variables differ from the recursive
            // rule's; build its magic guard from its head terms.
            let exit_magic: Option<Atom> = if bound.is_empty() {
                None
            } else {
                Some(Atom::new(
                    magic_name(p, a),
                    bound.iter().map(|&i| exit.head.terms[i]).collect(),
                ))
            };
            let mut body = Vec::new();
            body.extend(exit_magic);
            body.extend(exit.body.iter().cloned());
            rules.push(Rule::new(Atom::new(pa, exit.head.terms.clone()), body));
        }

        // Adorned recursive rule:
        // P_a(head) :- Magic_a(..), nonrec body, P_a'(rec vars).
        let a_next = propagate(rule, a);
        let pa_next = adorned_name(p, &a_next);
        let rec_atom = lr.recursive_body_atom();
        let mut body = Vec::new();
        body.extend(magic_atom.clone());
        for atom in lr.nonrecursive_body_atoms() {
            body.push(atom.clone());
        }
        body.push(Atom::new(pa_next, rec_atom.terms.clone()));
        rules.push(Rule::new(Atom::new(pa, rule.head.terms.clone()), body));

        // Magic rule: Magic_a'(bound rec vars) :- Magic_a(..), closure atoms.
        let next_bound: Vec<usize> = a_next.determined_positions().collect();
        if !next_bound.is_empty() {
            // Atoms of the determined closure: those whose variables become
            // determined from the bound head variables.
            let seed: BTreeSet<Symbol> = bound
                .iter()
                .filter_map(|&i| rule.head.terms[i].as_var())
                .collect();
            let closure = recurs_datalog::adornment::determined_closure(rule, p, &seed);
            let mut body: Vec<Atom> = Vec::new();
            body.extend(magic_atom);
            for atom in lr.nonrecursive_body_atoms() {
                if atom.variables().any(|v| closure.contains(&v)) {
                    body.push(atom.clone());
                }
            }
            let head = Atom::new(
                magic_name(p, &a_next),
                next_bound.iter().map(|&i| rec_atom.terms[i]).collect(),
            );
            rules.push(Rule::new(head, body));
        }
    }

    let seed_predicate = if form.determined_positions().next().is_some() {
        Some(magic_name(p, form))
    } else {
        None
    };
    MagicPlan {
        lr: lr.clone(),
        form: form.clone(),
        reachable_forms: reachable,
        program: Program::new(rules),
        answer_predicate: adorned_name(p, form),
        seed_predicate,
    }
}

/// Executes the plan: seeds the magic predicate with the query constants,
/// runs semi-naive evaluation of the rewritten program, and projects the
/// answers. Returns the answer relation (over the query's distinct
/// variables, first-occurrence order) and the evaluation statistics.
pub fn execute(
    plan: &MagicPlan,
    db: &Database,
    query: &Atom,
) -> Result<(Relation, EvalStats), DatalogError> {
    assert_eq!(
        query.predicate, plan.lr.predicate,
        "query predicate mismatch"
    );
    assert_eq!(
        QueryForm::of_atom(query),
        plan.form,
        "query does not match the plan's form"
    );
    let mut db = db.clone();
    if let Some(seed) = plan.seed_predicate {
        let constants: Tuple = query.terms.iter().filter_map(Term::as_const).collect();
        db.declare(seed, constants.len())?;
        db.insert(seed, constants)?;
    }
    // Declare magic predicates that may never be derived (e.g. a reachable
    // all-free form has no magic), so rule bodies can always be evaluated.
    for rule in &plan.program.rules {
        for atom in &rule.body {
            if !db.contains(atom.predicate)
                && plan.program.rules_for(atom.predicate).next().is_none()
            {
                db.declare(atom.predicate, atom.arity())?;
            }
        }
    }
    let stats = semi_naive(&mut db, &plan.program, None)?;
    let adorned_query = Atom::new(plan.answer_predicate, query.terms.clone());
    let answers = answer_query(&db, &adorned_query)?;
    Ok((answers, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::relation::tuple_u64;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    fn check(f: &LinearRecursion, db: &Database, query: &str) {
        let q = parse_atom(query).unwrap();
        let plan = build_plan(f, &QueryForm::of_atom(&q));
        let (got, _) = execute(&plan, db, &q).unwrap();
        let mut db2 = db.clone();
        semi_naive(&mut db2, &f.to_program(), None).unwrap();
        let want = answer_query(&db2, &q).unwrap();
        assert_eq!(got, want, "magic ≠ oracle for {query}");
    }

    fn tc() -> LinearRecursion {
        lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
    }

    #[test]
    fn plan_structure_for_tc_bound_free() {
        let f = tc();
        let plan = build_plan(&f, &QueryForm::parse("dv"));
        // dv propagates to dv: one reachable form.
        assert_eq!(plan.reachable_forms.len(), 1);
        assert!(plan.seed_predicate.is_some());
        // exit + recursive + magic rule.
        assert_eq!(plan.program.rules.len(), 3);
    }

    #[test]
    fn tc_queries() {
        let f = tc();
        let mut db = Database::new();
        db.insert_relation(
            "A",
            Relation::from_pairs([(1, 2), (2, 3), (3, 4), (10, 11)]),
        );
        db.insert_relation(
            "E",
            Relation::from_pairs([(1, 2), (2, 3), (3, 4), (10, 11)]),
        );
        check(&f, &db, "P('1', y)");
        check(&f, &db, "P(x, '4')");
        check(&f, &db, "P(x, y)");
        check(&f, &db, "P('1', '4')");
        check(&f, &db, "P('4', '1')");
    }

    #[test]
    fn tc_on_cyclic_data() {
        let f = tc();
        let mut db = Database::new();
        let cyc = Relation::from_pairs([(1, 2), (2, 3), (3, 1)]);
        db.insert_relation("A", cyc.clone());
        db.insert_relation("E", cyc);
        check(&f, &db, "P('1', y)");
        check(&f, &db, "P(x, x)");
    }

    #[test]
    fn magic_restricts_derivation() {
        // On a long chain with a bound source, magic should derive far fewer
        // tuples than the full closure.
        let f = tc();
        let n = 60u64;
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        db.insert_relation("E", Relation::from_pairs((1..n).map(|i| (i, i + 1))));
        // A source near the end of the chain only reaches a short suffix;
        // magic must confine derivation to it. (A source at the head reaches
        // everything — no restriction is possible there.)
        let q = parse_atom("P('55', y)").unwrap();
        let plan = build_plan(&f, &QueryForm::of_atom(&q));
        let (answers, stats) = execute(&plan, &db, &q).unwrap();
        assert_eq!(answers.len(), (n - 55) as usize);
        // Full closure has n·(n−1)/2 = 1770 tuples; the suffix needs ~20.
        assert!(
            stats.tuples_derived < 60,
            "derived {} tuples — magic is not restricting",
            stats.tuples_derived
        );
    }

    #[test]
    fn s9_class_c_queries() {
        // s9: P(x,y,z) :- A(x,y), B(u,v), P(u,z,v).
        let f = lr("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\n\
                    P(x, y, z) :- E(x, y, z).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (3, 4)]));
        db.insert_relation("B", Relation::from_pairs([(5, 6), (7, 8)]));
        db.insert_relation(
            "E",
            Relation::from_tuples(3, [tuple_u64([5, 9, 6]), tuple_u64([1, 9, 9])]),
        );
        // The paper's two representative query forms:
        check(&f, &db, "P('1', y, z)"); // P(d, v, v)
        check(&f, &db, "P(x, y, '9')"); // P(v, v, d)
        check(&f, &db, "P(x, y, z)");
    }

    #[test]
    fn s9_dvv_reaches_all_free_form() {
        let f = lr("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\n\
                    P(x, y, z) :- E(x, y, z).");
        let plan = build_plan(&f, &QueryForm::parse("dvv"));
        // dvv → vvv (information passing stops — the Cartesian-product case).
        assert!(plan
            .reachable_forms
            .iter()
            .any(recurs_datalog::QueryForm::all_free));
    }

    #[test]
    fn s11_class_e_queries() {
        let f = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).\n\
                    P(x, y) :- E(x, y).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        db.insert_relation("B", Relation::from_pairs([(11, 12), (12, 13)]));
        db.insert_relation("C", Relation::from_pairs([(2, 12), (3, 13)]));
        db.insert_relation("E", Relation::from_pairs([(2, 12), (3, 13), (1, 11)]));
        check(&f, &db, "P('1', y)"); // the paper's P(d, v)
        check(&f, &db, "P(x, y)");
        check(&f, &db, "P(x, '13')");
    }

    #[test]
    fn s12_mixed_class_queries() {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).\n\
                    P(x,y,z) :- E(x,y,z).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("B", Relation::from_pairs([(11, 12), (12, 13)]));
        db.insert_relation("C", Relation::from_pairs([(2, 12), (3, 13)]));
        db.insert_relation("D", Relation::from_pairs([(21, 22), (23, 24)]));
        db.insert_relation(
            "E",
            Relation::from_tuples(3, [tuple_u64([2, 12, 21]), tuple_u64([3, 13, 23])]),
        );
        check(&f, &db, "P('1', y, z)"); // P(d, v, v): Example 14
        check(&f, &db, "P(x, y, '22')"); // P(v, v, d)
        check(&f, &db, "P(x, y, z)");
    }

    #[test]
    fn s12_dvv_propagation_in_plan() {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).\n\
                    P(x,y,z) :- E(x,y,z).");
        let plan = build_plan(&f, &QueryForm::parse("dvv"));
        // dvv → ddv → ddv: two reachable forms.
        assert_eq!(plan.reachable_forms.len(), 2);
        assert_eq!(plan.reachable_forms[1], QueryForm::parse("ddv"));
    }

    #[test]
    fn rotation_a4_queries() {
        // Magic also works on permutational formulas (bounded data shapes).
        let f = lr("P(x, y, z) :- P(y, z, x).");
        let mut db = Database::new();
        db.insert_relation(
            "E",
            Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([4, 5, 6])]),
        );
        check(&f, &db, "P('2', y, z)");
        check(&f, &db, "P(x, y, z)");
    }
}
