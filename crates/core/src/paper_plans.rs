//! The paper's hand-derived per-case query evaluation plans, written down in
//! the executable plan algebra and verified against the fixpoint oracle.
//!
//! Section 6 derives two plans for s9 — `P(x,y,z) :- A(x,y), B(u,v),
//! P(u,z,v)` — directly from its resolution graphs:
//!
//! * for `P(d, v, v)`:  `σE,  (σA) × (∪k [(E ⋈ B)(BA)^k])`
//! * for `P(v, v, d)`:  `σE,  (∃ ∪k [(AB)^k (E ⋈ B)]) A`
//!
//! The information passing stops after the selection on A, so the remainder
//! of the answer is assembled by a Cartesian product (first form) or an
//! existence check over the whole chain (second form). These constructors
//! build exactly those plans; the test suite proves them equivalent to the
//! semi-naive fixpoint.

use crate::algebra_plan::PlanExpr;
use recurs_datalog::Value;

/// The chain term `∪k [(E ⋈ B)(BA)^k]` shared by both s9 plans: the set of
/// values that can sit in `P`'s middle position when the first/third
/// positions are generated through `B`.
///
/// * level 0: `π_z(E ⋈ B)` — join `E(u, z, v)` with `B(u, v)` on both
///   columns, keep `z`;
/// * step: one more `(B, A)` layer — `S(v)` joins `B(u, v)` on `v`, then
///   `A(u, z)` on `u`, keep `z`.
pub fn s9_middle_chain() -> PlanExpr {
    let base = PlanExpr::rel("E")
        .join(PlanExpr::rel("B"), vec![(0, 0), (2, 1)])
        .project(vec![1]);
    let step = PlanExpr::Prev
        .join(PlanExpr::rel("B"), vec![(0, 1)]) // S.v = B.v → cols [v, u, v]
        .join(PlanExpr::rel("A"), vec![(1, 0)]) // B.u = A.u → …[u, z]
        .project(vec![4]);
    PlanExpr::Iterate {
        base: Box::new(base),
        step: Box::new(step),
    }
}

/// The paper's plan for `P(a, Y, Z)` (query form `dvv`):
/// `σE,  (σ_a A) × (∪k [(E ⋈ B)(BA)^k])`. The result has columns `(Y, Z)`:
/// the exit's direct answers unioned with the product of the selected `A`
/// side and the middle chain.
pub fn s9_plan_dvv(a: Value) -> PlanExpr {
    let exit_part = PlanExpr::rel("E").select(0, a).project(vec![1, 2]);
    let ys = PlanExpr::rel("A").select(0, a).project(vec![1]);
    PlanExpr::Union(vec![exit_part, ys.product(s9_middle_chain())])
}

/// The paper's plan for `P(X, Y, c)` (query form `vvd`):
/// `σE,  (∃ ∪k [(AB)^k (E ⋈ B)]) A` — the exit's direct answers, plus: if
/// `c` is derivable as a middle value, every `A` tuple is an answer `(X, Y)`.
pub fn s9_plan_vvd(c: Value) -> PlanExpr {
    let exit_part = PlanExpr::rel("E").select(2, c).project(vec![0, 1]);
    let recursive_part = PlanExpr::ExistsThen {
        cond: Box::new(s9_middle_chain().select(0, c)),
        then: Box::new(PlanExpr::rel("A")),
    };
    PlanExpr::Union(vec![exit_part, recursive_part])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_plan::eval_plan;
    use recurs_core_test_support::*;

    /// Shared test fixtures (kept local to this module).
    mod recurs_core_test_support {
        pub use recurs_datalog::eval::{answer_query, semi_naive};
        pub use recurs_datalog::parser::{parse_atom, parse_program};
        pub use recurs_datalog::relation::tuple_u64;
        pub use recurs_datalog::validate::validate_with_generic_exit;
        pub use recurs_datalog::{Database, LinearRecursion, Relation};

        pub fn s9() -> LinearRecursion {
            validate_with_generic_exit(
                &parse_program(
                    "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\n\
                     P(x, y, z) :- E(x, y, z).",
                )
                .unwrap(),
            )
            .unwrap()
        }

        pub fn s9_db() -> Database {
            let mut db = Database::new();
            db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (5, 5)]));
            db.insert_relation("B", Relation::from_pairs([(6, 7), (7, 6), (2, 9)]));
            db.insert_relation(
                "E",
                Relation::from_tuples(
                    3,
                    [
                        tuple_u64([6, 100, 7]),
                        tuple_u64([2, 200, 9]),
                        tuple_u64([1, 300, 1]),
                    ],
                ),
            );
            db
        }
    }

    #[test]
    fn dvv_plan_matches_fixpoint() {
        let f = s9();
        let db = s9_db();
        for a in [1u64, 2, 5, 99] {
            let plan = s9_plan_dvv(recurs_datalog::Value::from_u64(a));
            let got = eval_plan(&db, &plan).unwrap();
            let mut db2 = db.clone();
            semi_naive(&mut db2, &f.to_program(), None).unwrap();
            let q = parse_atom(&format!("P('{a}', y, z)")).unwrap();
            let want = answer_query(&db2, &q).unwrap();
            assert_eq!(got, want, "s9 dvv plan diverged for a = {a}");
        }
    }

    #[test]
    fn vvd_plan_matches_fixpoint() {
        let f = s9();
        let db = s9_db();
        for c in [100u64, 200, 300, 12345] {
            let plan = s9_plan_vvd(recurs_datalog::Value::from_u64(c));
            let got = eval_plan(&db, &plan).unwrap();
            let mut db2 = db.clone();
            semi_naive(&mut db2, &f.to_program(), None).unwrap();
            let q = parse_atom(&format!("P(x, y, '{c}')")).unwrap();
            let want = answer_query(&db2, &q).unwrap();
            assert_eq!(got, want, "s9 vvd plan diverged for c = {c}");
        }
    }

    #[test]
    fn middle_chain_grows_through_levels() {
        // E(6,100,7) with B(6,7) seeds 100 at level 0. One (B,A) layer:
        // B(7,6)... level-1 values need A(u, z) with B(u, v), v ∈ chain —
        // verify at least that the chain is a superset of the level-0 seed
        // and that iteration terminated on this cyclic B.
        let db = s9_db();
        let chain = eval_plan(&db, &s9_middle_chain()).unwrap();
        assert!(chain.contains(&[recurs_datalog::Value::from_u64(100)]));
        assert!(chain.contains(&[recurs_datalog::Value::from_u64(200)]));
    }

    #[test]
    fn vvd_existence_is_all_or_nothing() {
        let db = s9_db();
        let yes = eval_plan(&db, &s9_plan_vvd(recurs_datalog::Value::from_u64(100))).unwrap();
        assert_eq!(yes.len(), db.get("A").unwrap().len());
        let no = eval_plan(&db, &s9_plan_vvd(recurs_datalog::Value::from_u64(4242))).unwrap();
        assert!(no.is_empty());
    }
}
