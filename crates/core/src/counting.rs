//! The counting strategy: executable query evaluation for **stable**
//! formulas (the paper's classes A1/A2, and A3–A5 after the
//! unfold-to-stable transformation).
//!
//! A stable formula has one disjoint unit cycle per argument position, so
//! the recursive rule factors into independent per-position *chains*:
//!
//! ```text
//! P(x₁, …, xₙ) :- Step₁(x₁, y₁), …, Stepₙ(xₙ, yₙ), P(y₁, …, yₙ)
//! ```
//!
//! where `Stepᵢ` is the join of the non-recursive atoms in position *i*'s
//! component (for a self-loop, the identity, possibly filtered). Evaluation
//! follows the paper's plan `σE, ∪k (σA^k ‖ σB^k)-C^k-E`:
//!
//! 1. **descend** — per bound position, the level-k frontier `Vᵢᵏ` is the
//!    image of the query constant under `Stepᵢ` applied k times (the `σA^k`
//!    branches, evaluated independently);
//! 2. **exit** — the exit relation is semijoined against the level's
//!    frontiers (`…-E`);
//! 3. **ascend** — free positions are walked up k times (`C^k`) to produce
//!    level-k answers.
//!
//! Levels are combined Horner-style (`∪ₖ Upᵏ(Dₖ) = D₀ ∪ Up(D₁ ∪ Up(…))`),
//! and cyclic data is handled soundly: when the joint frontier state
//! repeats with period p, the periodic tail is the least fixpoint of a
//! p-step equation, computed by iteration-to-convergence. This makes the
//! counting method terminate on *all* databases, not just acyclic ones.

use recurs_datalog::algebra::{project, union};
use recurs_datalog::database::Database;
use recurs_datalog::error::DatalogError;
use recurs_datalog::eval::{eval_body, eval_rule};
use recurs_datalog::relation::{Relation, Tuple};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::term::{Atom, Value};
use recurs_datalog::Symbol;
use recurs_igraph::condense::condense;
use recurs_igraph::igraph_of;
use std::collections::{BTreeSet, HashMap};

/// One argument position's chain.
#[derive(Debug, Clone)]
pub struct PositionChain {
    /// The head variable (top of the chain).
    pub top: Symbol,
    /// The recursive-atom variable (bottom of the chain).
    pub bottom: Symbol,
    /// The non-recursive atoms of this position's component. Empty together
    /// with `top == bottom` means the chain is the identity (class A2).
    pub atoms: Vec<Atom>,
}

impl PositionChain {
    /// True if the chain is a pure identity (no step relation needed).
    pub fn is_identity(&self) -> bool {
        self.atoms.is_empty() && self.top == self.bottom
    }
}

/// A compiled counting plan for a stable formula.
#[derive(Debug, Clone)]
pub struct CountingPlan {
    /// The stable formula (already transformed if the original was A3–A5).
    pub lr: LinearRecursion,
    /// One chain per argument position.
    pub chains: Vec<PositionChain>,
    /// Atoms in trivial components (no argument position touches them);
    /// they gate levels ≥ 1 by non-emptiness, one conjunction per component.
    pub guards: Vec<Vec<Atom>>,
}

/// Builds the counting plan. The formula must be strongly stable
/// (`Classification::is_strongly_stable`); returns `None` otherwise.
pub fn build_plan(lr: &LinearRecursion) -> Option<CountingPlan> {
    let classification = crate::classify::Classification::of(&lr.recursive_rule);
    if !classification.is_strongly_stable() {
        return None;
    }
    let rule = &lr.recursive_rule;
    let condensed = condense(&igraph_of(rule));
    let rec_atom = lr.recursive_body_atom().clone();
    let n = lr.dimension();
    // Map: group id → position (each group hosts at most one directed edge
    // in a stable formula).
    let mut group_position: HashMap<usize, usize> = HashMap::new();
    for e in &condensed.edges {
        debug_assert_eq!(e.from, e.to, "stable formulas have only self-loops");
        let prior = group_position.insert(e.from, e.position);
        debug_assert!(prior.is_none(), "stable formulas have disjoint cycles");
    }
    // Assign each non-recursive atom to its group (all its variables share
    // one group by construction of the condensation).
    let mut group_atoms: HashMap<usize, Vec<Atom>> = HashMap::new();
    for atom in lr.nonrecursive_body_atoms() {
        let var = atom
            .variables()
            .next()
            .expect("atoms in the fragment have at least one variable");
        group_atoms
            .entry(condensed.group(var))
            .or_default()
            .push(atom.clone());
    }
    let mut chains = Vec::with_capacity(n);
    for i in 0..n {
        let top = rule.head.terms[i].as_var().expect("validated variable");
        let bottom = rec_atom.terms[i].as_var().expect("validated variable");
        let group = condensed.group(top);
        let atoms = group_atoms.remove(&group).unwrap_or_default();
        chains.push(PositionChain { top, bottom, atoms });
    }
    // Whatever atoms remain live in trivial components.
    let guards: Vec<Vec<Atom>> = group_atoms.into_values().collect();
    Some(CountingPlan {
        lr: lr.clone(),
        chains,
        guards,
    })
}

/// A materialized step relation: columns `(top, bottom)`, or `None` for the
/// identity chain.
type StepRel = Option<Relation>;

fn materialize_step(db: &Database, chain: &PositionChain) -> Result<StepRel, DatalogError> {
    if chain.is_identity() {
        return Ok(None);
    }
    let bindings = eval_body(db, &chain.atoms, &HashMap::new())?;
    Ok(Some(bindings.project_vars(&[chain.top, chain.bottom])?))
}

/// Advances a frontier one level down: `{bottom | (top, bottom) ∈ step, top ∈ v}`.
fn advance(v: &BTreeSet<Value>, step: &StepRel) -> BTreeSet<Value> {
    match step {
        None => v.clone(),
        Some(rel) => rel
            .iter()
            .filter(|t| v.contains(&t[0]))
            .map(|t| t[1])
            .collect(),
    }
}

/// Walks a relation's column `col` one level up through `step`
/// (bottom → top).
fn walk_up(x: &Relation, col: usize, step: &StepRel) -> Relation {
    match step {
        None => x.clone(),
        Some(rel) => {
            // Index step by bottom value.
            let mut idx: HashMap<Value, Vec<Value>> = HashMap::new();
            for t in rel.iter() {
                idx.entry(t[1]).or_default().push(t[0]);
            }
            let mut out = Relation::new(x.arity());
            for t in x.iter() {
                if let Some(tops) = idx.get(&t[col]) {
                    for &top in tops {
                        let mut nt: Vec<Value> = t.to_vec();
                        nt[col] = top;
                        out.insert(Tuple::from(nt));
                    }
                }
            }
            out
        }
    }
}

/// Executes the counting plan for a query atom over the recursive predicate.
/// Returns the answer relation over the query's free positions, in position
/// order (for an all-bound query the result has arity 0 and is non-empty iff
/// the query holds).
pub fn execute(plan: &CountingPlan, db: &Database, query: &Atom) -> Result<Relation, DatalogError> {
    assert_eq!(
        query.predicate, plan.lr.predicate,
        "query must target the recursive predicate"
    );
    assert_eq!(query.arity(), plan.lr.dimension(), "query arity mismatch");
    let n = plan.lr.dimension();
    let bound: Vec<usize> = (0..n).filter(|&i| !query.terms[i].is_var()).collect();
    let free: Vec<usize> = (0..n).filter(|&i| query.terms[i].is_var()).collect();

    // Materialize per-position step relations and the full exit relation.
    let steps: Vec<StepRel> = plan
        .chains
        .iter()
        .map(|c| materialize_step(db, c))
        .collect::<Result<_, _>>()?;
    let mut exit = Relation::new(n);
    for rule in &plan.lr.exit_rules {
        exit.union_in_place(&eval_rule(db, rule, &HashMap::new())?);
    }
    // Trivial components gate levels ≥ 1.
    let mut guard_ok = true;
    for atoms in &plan.guards {
        if eval_body(db, atoms, &HashMap::new())?.rel.is_empty() {
            guard_ok = false;
            break;
        }
    }

    // Level-k answer contribution, over the free columns, before up-walking.
    let level_d = |frontiers: &[BTreeSet<Value>]| -> Relation {
        let mut out = Relation::new(free.len());
        'tuples: for t in exit.iter() {
            for (bi, &pos) in bound.iter().enumerate() {
                if !frontiers[bi].contains(&t[pos]) {
                    continue 'tuples;
                }
            }
            out.insert(free.iter().map(|&pos| t[pos]).collect());
        }
        out
    };
    // One full up-step over all free positions.
    let up = |x: &Relation| -> Relation {
        let mut cur = x.clone();
        for (fi, &pos) in free.iter().enumerate() {
            cur = walk_up(&cur, fi, &steps[pos]);
            if cur.is_empty() {
                break;
            }
        }
        cur
    };

    // Phase 1: descend, recording per-level D until the frontier state
    // repeats or dies.
    let mut frontiers: Vec<BTreeSet<Value>> = bound
        .iter()
        .map(|&pos| {
            let c = query.terms[pos]
                .as_const()
                .expect("bound positions hold constants");
            BTreeSet::from([c])
        })
        .collect();
    let mut ds: Vec<Relation> = Vec::new();
    let mut seen: HashMap<Vec<Vec<Value>>, usize> = HashMap::new();
    let mut tail: Option<(usize, usize)> = None; // (start level j, period p)
    let max_levels = level_cap(db);
    let mut converged = false;
    for k in 0..=max_levels {
        let state: Vec<Vec<Value>> = frontiers
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        if let Some(&j) = seen.get(&state) {
            tail = Some((j, k - j));
            converged = true;
            break;
        }
        if frontiers.iter().any(|v| v.is_empty()) && !bound.is_empty() {
            converged = true;
            break; // dead frontier: no level ≥ k contributes
        }
        seen.insert(state, k);
        let d = level_d(&frontiers);
        if k >= 1 && !guard_ok {
            // A trivial component is empty: levels ≥ 1 are unsatisfiable.
            converged = true;
            break;
        }
        ds.push(d);
        for (bi, &pos) in bound.iter().enumerate() {
            frontiers[bi] = advance(&frontiers[bi], &steps[pos]);
        }
        if bound.is_empty() {
            // The state is constant; detect the 1-cycle immediately at k=1.
            continue;
        }
    }

    if !converged {
        // The frontier trajectory did not repeat within the budget (possible
        // on data whose disjoint cycle lengths have a huge lcm). Refuse to
        // answer rather than truncate; the planner falls back to the general
        // strategy, which always terminates.
        return Err(DatalogError::LimitExceeded {
            what: "counting frontier levels",
            limit: max_levels,
        });
    }

    // Phase 2: periodic tail as a least fixpoint, when needed. The tail
    // satisfies T = D_j ∪ Up(D_{j+1} ∪ … ∪ Up(D_{j+p-1} ∪ Up(T)) …); Kleene
    // iteration over the finite active domain converges to its lfp, which
    // equals the infinite union ∪_{m≥j} Up^{m-j}(D_m).
    let tail_rel = match tail {
        Some((j, p)) if guard_ok => {
            let mut t = Relation::new(free.len());
            loop {
                let mut next = t.clone();
                for m in (j..j + p).rev() {
                    next = union(&ds[m], &up(&next));
                }
                if next == t {
                    break;
                }
                t = next;
            }
            Some((j, t))
        }
        _ => None,
    };

    // Phase 3: Horner from the deepest recorded level down to 0:
    // answer = D_0 ∪ Up(D_1 ∪ Up(… ∪ Up(T) …)).
    let (mut a, start) = match tail_rel {
        Some((j, t)) => (t, j),
        None => (Relation::new(free.len()), ds.len()),
    };
    for m in (0..start).rev() {
        a = union(&ds[m], &up(&a));
    }

    // Repeated query variables: equality-select, then keep first occurrences
    // (matching `eval::answer_query`'s projection).
    let mut first: HashMap<Symbol, usize> = HashMap::new();
    let mut keep: Vec<usize> = Vec::new();
    let mut result = a;
    for (fi, &pos) in free.iter().enumerate() {
        let v = query.terms[pos]
            .as_var()
            .expect("free positions are variables");
        if let Some(&fj) = first.get(&v) {
            result = recurs_datalog::algebra::select_col_eq(&result, fj, fi);
        } else {
            first.insert(v, fi);
            keep.push(fi);
        }
    }
    Ok(project(&result, &keep))
}

/// The level budget for the descent phase. The frontier trajectory is
/// deterministic over a finite state space, so it always becomes periodic —
/// but on adversarial data (disjoint cycles with coprime lengths) the period
/// is the lcm of the cycle lengths, which can exceed any linear budget. When
/// the budget is hit, [`execute`] returns [`DatalogError::LimitExceeded`]
/// and the planner falls back to the general strategy.
fn level_cap(db: &Database) -> usize {
    16 * db.total_tuples() + 256
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::relation::tuple_u64;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn stable_lr(src: &str) -> LinearRecursion {
        validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
    }

    /// Oracle: semi-naive fixpoint + selection + projection.
    fn oracle(lr: &LinearRecursion, db: &Database, query: &Atom) -> Relation {
        let mut db = db.clone();
        semi_naive(&mut db, &lr.to_program(), None).unwrap();
        recurs_datalog::eval::answer_query(&db, query).unwrap()
    }

    fn check(lr: &LinearRecursion, db: &Database, query: &str) {
        let plan = build_plan(lr).expect("formula must be stable");
        let q = parse_atom(query).unwrap();
        let got = execute(&plan, db, &q).unwrap();
        let want = oracle(lr, db, &q);
        assert_eq!(got, want, "counting ≠ oracle for {query}");
    }

    fn tc() -> LinearRecursion {
        stable_lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
    }

    #[test]
    fn plan_structure_for_s3() {
        let lr = stable_lr("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).\nP(x,y,z) :- E(x,y,z).");
        let plan = build_plan(&lr).unwrap();
        assert_eq!(plan.chains.len(), 3);
        assert!(plan.guards.is_empty());
        assert_eq!(plan.chains[0].atoms[0].predicate, Symbol::intern("A"));
        assert_eq!(plan.chains[1].atoms[0].predicate, Symbol::intern("B"));
        assert_eq!(plan.chains[2].atoms[0].predicate, Symbol::intern("C"));
        assert!(!plan.chains[0].is_identity());
    }

    #[test]
    fn transitive_closure_bound_first() {
        let lr = tc();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        check(&lr, &db, "P('1', y)");
        check(&lr, &db, "P('2', y)");
        check(&lr, &db, "P('9', y)"); // no such source
    }

    #[test]
    fn transitive_closure_on_cyclic_data_terminates() {
        let lr = tc();
        let mut db = Database::new();
        let cyc = Relation::from_pairs([(1, 2), (2, 3), (3, 1), (3, 4)]);
        db.insert_relation("A", cyc.clone());
        db.insert_relation("E", cyc);
        check(&lr, &db, "P('1', y)");
        check(&lr, &db, "P('4', y)");
    }

    #[test]
    fn free_queries_compute_full_closure() {
        let lr = tc();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
        check(&lr, &db, "P(x, y)");
    }

    #[test]
    fn second_position_bound() {
        let lr = tc();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        // y bound: the identity chain on position 1 keeps the frontier fixed.
        check(&lr, &db, "P(x, '4')");
        check(&lr, &db, "P(x, '1')");
    }

    #[test]
    fn fully_bound_existence_query() {
        let lr = tc();
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
        let plan = build_plan(&lr).unwrap();
        let yes = execute(&plan, &db, &parse_atom("P('1', '3')").unwrap()).unwrap();
        assert!(!yes.is_empty());
        let no = execute(&plan, &db, &parse_atom("P('3', '1')").unwrap()).unwrap();
        assert!(no.is_empty());
    }

    #[test]
    fn s3_three_dimensional_query() {
        let lr = stable_lr("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).\nP(x,y,z) :- E(x,y,z).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("B", Relation::from_pairs([(4, 5), (5, 6)]));
        db.insert_relation("C", Relation::from_pairs([(7, 8), (8, 9)]));
        db.insert_relation("E", Relation::from_tuples(3, [tuple_u64([3, 6, 7])]));
        // Paper's representative query P(a, b, Z):
        check(&lr, &db, "P('1', '4', z)");
        check(&lr, &db, "P('2', '5', z)");
        check(&lr, &db, "P(x, y, z)");
        check(&lr, &db, "P(x, '4', '9')");
    }

    #[test]
    fn guards_gate_recursive_levels() {
        // D(a,b) is a trivial component: if D is empty, only the exit level
        // contributes.
        let lr = stable_lr("P(x, y) :- A(x, z), D(a, b), P(z, y).\nP(x, y) :- E(x, y).");
        let plan = build_plan(&lr).unwrap();
        assert_eq!(plan.guards.len(), 1);
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("D", Relation::new(2));
        check(&lr, &db, "P('1', y)");
        // Non-empty guard: full recursion.
        db.insert_relation("D", Relation::from_pairs([(7, 7)]));
        check(&lr, &db, "P('1', y)");
    }

    #[test]
    fn identity_chain_with_filter() {
        // B(y) filters the identity position each level.
        let lr = stable_lr("P(x, y) :- A(x, z), B(y), P(z, y).\nP(x, y) :- E(x, y).");
        let plan = build_plan(&lr).unwrap();
        assert!(!plan.chains[1].is_identity()); // has the B filter
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("E", Relation::from_pairs([(1, 5), (2, 6), (3, 5)]));
        db.insert_relation("B", Relation::from_tuples(1, [tuple_u64([5])]));
        check(&lr, &db, "P('1', y)");
        check(&lr, &db, "P(x, y)");
    }

    #[test]
    fn multiple_exit_rules() {
        let lr =
            stable_lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).\nP(x, y) :- F(y, x).");
        let mut db = Database::new();
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        db.insert_relation("E", Relation::from_pairs([(2, 9)]));
        db.insert_relation("F", Relation::from_pairs([(8, 3)]));
        check(&lr, &db, "P('1', y)");
        check(&lr, &db, "P(x, y)");
    }

    #[test]
    fn non_stable_formula_has_no_plan() {
        let lr =
            stable_lr("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\nP(x, y, z) :- E(x, y, z).");
        assert!(build_plan(&lr).is_none());
    }
}
