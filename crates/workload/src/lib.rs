//! `recurs-workload` — synthetic workload generators for the `recurs`
//! benchmarks and property tests.
//!
//! * [`graphs`] — deterministic, seeded EDB generators: chains, cycles,
//!   trees, random digraphs, layered graphs, grids, and random relations of
//!   arbitrary arity;
//! * [`rules`] — random *valid* linear recursive rules (the input space for
//!   property-testing Theorems 1 and 12 and plan/oracle equivalence);
//! * [`queries`] — random databases and query atoms for a given formula.
//!
//! Everything is deterministic given its seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graphs;
pub mod queries;
pub mod rules;

pub use graphs::{chain, cycle, grid, layered, random_digraph, random_relation, tree};
pub use queries::{all_query_atoms, random_database, random_query};
pub use rules::{random_linear_recursion, random_rule, RuleConfig};
