//! Random linear-recursive-rule generation — the input space for property
//! tests of the classification (Theorems 1 and 12) and of plan/oracle
//! equivalence.
//!
//! Generated rules always satisfy the paper's restrictions: single linear
//! recursion, constant-free, distinct variables under the recursive
//! predicate (both occurrences), and range restriction.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use recurs_datalog::rule::{LinearRecursion, Rule};
use recurs_datalog::term::{Atom, Term};
use recurs_datalog::validate::{generic_exit_rule, validate_with_generic_exit};
use recurs_datalog::Symbol;

/// Shape parameters for random rules.
#[derive(Debug, Clone, Copy)]
pub struct RuleConfig {
    /// Minimum dimension of the recursive predicate.
    pub min_dim: usize,
    /// Maximum dimension.
    pub max_dim: usize,
    /// Maximum number of extra non-recursive atoms beyond those needed for
    /// range restriction.
    pub max_extra_atoms: usize,
}

impl Default for RuleConfig {
    fn default() -> RuleConfig {
        RuleConfig {
            min_dim: 1,
            max_dim: 4,
            max_extra_atoms: 3,
        }
    }
}

/// Generates a random valid linear recursive rule from a seed.
pub fn random_rule(seed: u64, config: RuleConfig) -> Rule {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(config.min_dim..=config.max_dim);
    let head_vars: Vec<Symbol> = (0..n).map(|i| Symbol::intern(&format!("h{i}"))).collect();
    // Recursive-atom variables: a random mix of head variables (each used at
    // most once — distinctness) and fresh variables.
    let mut available_heads: Vec<Symbol> = head_vars.clone();
    available_heads.shuffle(&mut rng);
    let mut rec_vars: Vec<Symbol> = Vec::with_capacity(n);
    let mut fresh = 0usize;
    for _ in 0..n {
        if !available_heads.is_empty() && rng.gen_bool(0.5) {
            rec_vars.push(available_heads.pop().expect("checked non-empty"));
        } else {
            rec_vars.push(Symbol::intern(&format!("f{fresh}")));
            fresh += 1;
        }
    }
    rec_vars.shuffle(&mut rng);

    let p = Symbol::intern("P");
    let mut pool: Vec<Symbol> = head_vars.iter().chain(rec_vars.iter()).copied().collect();
    pool.sort();
    pool.dedup();

    let mut body: Vec<Atom> = Vec::new();
    let predicates = ["A", "B", "C", "D", "G", "H"];
    let mut pred_i = 0usize;
    let mut next_pred = |rng: &mut StdRng| {
        let name = if rng.gen_bool(0.8) && pred_i < predicates.len() {
            let n = predicates[pred_i];
            pred_i += 1;
            n
        } else {
            predicates[rng.gen_range(0..predicates.len())]
        };
        Symbol::intern(name)
    };

    // Range restriction: every head variable not in the recursive atom must
    // occur in a non-recursive atom; give each a random partner.
    for &hv in &head_vars {
        if !rec_vars.contains(&hv) {
            let partner = pool[rng.gen_range(0..pool.len())];
            let pred = next_pred(&mut rng);
            if rng.gen_bool(0.5) {
                body.push(Atom::new(pred, vec![Term::Var(hv), Term::Var(partner)]));
            } else {
                body.push(Atom::new(pred, vec![Term::Var(partner), Term::Var(hv)]));
            }
        }
    }
    // Extra atoms connecting random variables (unary or binary).
    let extra = rng.gen_range(0..=config.max_extra_atoms);
    let mut unary_i = 0usize;
    for _ in 0..extra {
        if rng.gen_bool(0.15) {
            // Unary atoms get their own predicate namespace so no predicate
            // is ever used at two different arities.
            let pred = Symbol::intern(&format!("U{unary_i}"));
            unary_i += 1;
            let v = pool[rng.gen_range(0..pool.len())];
            body.push(Atom::new(pred, vec![Term::Var(v)]));
        } else {
            let pred = next_pred(&mut rng);
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            body.push(Atom::new(pred, vec![Term::Var(a), Term::Var(b)]));
        }
    }
    // Insert the recursive atom at a random body position.
    let rec_atom = Atom::new(p, rec_vars.iter().map(|&v| Term::Var(v)).collect());
    let at = rng.gen_range(0..=body.len());
    body.insert(at, rec_atom);

    Rule::new(
        Atom::new(p, head_vars.iter().map(|&v| Term::Var(v)).collect()),
        body,
    )
}

/// A random rule wrapped into a [`LinearRecursion`] with a generic exit.
pub fn random_linear_recursion(seed: u64, config: RuleConfig) -> LinearRecursion {
    let rule = random_rule(seed, config);
    let exit = generic_exit_rule(&rule);
    validate_with_generic_exit(&recurs_datalog::rule::Program::new(vec![rule, exit]))
        .expect("generated rules satisfy the paper's restrictions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::validate::validate_with_generic_exit;

    #[test]
    fn generated_rules_always_validate() {
        for seed in 0..500 {
            let rule = random_rule(seed, RuleConfig::default());
            let program = recurs_datalog::rule::Program::new(vec![rule.clone()]);
            validate_with_generic_exit(&program)
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid rule {rule}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_rule(42, RuleConfig::default());
        let b = random_rule(42, RuleConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn dimensions_respect_config() {
        let config = RuleConfig {
            min_dim: 2,
            max_dim: 3,
            max_extra_atoms: 1,
        };
        for seed in 0..100 {
            let rule = random_rule(seed, config);
            let d = rule.head.arity();
            assert!((2..=3).contains(&d), "seed {seed}: dimension {d}");
        }
    }

    #[test]
    fn linear_recursion_wrapper_works() {
        let lr = random_linear_recursion(7, RuleConfig::default());
        assert!(!lr.exit_rules.is_empty());
        assert!(lr.recursive_rule.is_linear_recursive());
    }
}
