//! Random databases and queries for a given formula — used by oracle
//! property tests and benchmark sweeps.

use crate::graphs::random_relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recurs_datalog::database::Database;
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::term::{Atom, Term, Value};

/// Builds a random database with one relation per EDB predicate of the
/// formula (all predicates appearing in bodies other than the recursive
/// predicate), each with `tuples` random tuples over `1..=domain`.
pub fn random_database(lr: &LinearRecursion, tuples: usize, domain: u64, seed: u64) -> Database {
    let mut db = Database::new();
    let program = lr.to_program();
    for (i, pred) in program.edb_predicates().into_iter().enumerate() {
        // Find the predicate's arity from any body occurrence.
        let arity = program
            .rules
            .iter()
            .flat_map(|r| r.body.iter())
            .find(|a| a.predicate == pred)
            .map(Atom::arity)
            .expect("EDB predicates occur in some body");
        db.insert_relation(
            pred,
            random_relation(arity, tuples, domain, seed.wrapping_add(i as u64)),
        );
    }
    db
}

/// Generates a random query atom for the recursive predicate: each position
/// is independently bound to a random constant from `1..=domain` with
/// probability `bound_prob` (in percent), else left a free variable.
pub fn random_query(lr: &LinearRecursion, domain: u64, bound_prob: u32, seed: u64) -> Atom {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = lr.dimension();
    let terms = (0..n)
        .map(|i| {
            if rng.gen_range(0..100) < bound_prob {
                Term::Const(Value::from_u64(rng.gen_range(1..=domain)))
            } else {
                Term::var(&format!("qv{i}"))
            }
        })
        .collect();
    Atom::new(lr.predicate, terms)
}

/// All 2ⁿ query forms as query atoms with the given constants at bound
/// positions (cycling through `constants` as needed). Useful for exhaustive
/// per-form checks at small dimension.
pub fn all_query_atoms(lr: &LinearRecursion, constants: &[u64]) -> Vec<Atom> {
    let n = lr.dimension();
    assert!(n <= 16, "exhaustive form enumeration needs small dimension");
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0u32..(1 << n) {
        let mut ci = 0usize;
        let terms = (0..n)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    let c = constants[ci % constants.len()];
                    ci += 1;
                    Term::Const(Value::from_u64(c))
                } else {
                    Term::var(&format!("qv{i}"))
                }
            })
            .collect();
        out.push(Atom::new(lr.predicate, terms));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::validate::validate_with_generic_exit;

    fn lr() -> LinearRecursion {
        validate_with_generic_exit(
            &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn random_database_covers_all_edb_predicates() {
        let db = random_database(&lr(), 20, 10, 1);
        assert!(db.contains("A"));
        assert!(db.contains("E"));
        assert_eq!(db.get("A").unwrap().arity(), 2);
    }

    #[test]
    fn random_query_is_deterministic_and_well_formed() {
        let f = lr();
        let q1 = random_query(&f, 10, 50, 3);
        let q2 = random_query(&f, 10, 50, 3);
        assert_eq!(q1, q2);
        assert_eq!(q1.arity(), 2);
    }

    #[test]
    fn all_query_atoms_enumerates_forms() {
        let f = lr();
        let qs = all_query_atoms(&f, &[1, 2]);
        assert_eq!(qs.len(), 4);
        // Forms: vv, dv, vd, dd.
        assert_eq!(qs.iter().filter(|q| q.terms[0].is_var()).count(), 2);
    }

    #[test]
    fn bound_prob_extremes() {
        let f = lr();
        let all_free = random_query(&f, 10, 0, 1);
        assert!(all_free.terms.iter().all(Term::is_var));
        let all_bound = random_query(&f, 10, 100, 1);
        assert!(all_bound.terms.iter().all(|t| !t.is_var()));
    }
}
