//! Synthetic binary-relation (graph) generators. All generators are
//! deterministic given the seed, so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recurs_datalog::relation::Relation;

/// A chain `1 → 2 → … → n`.
pub fn chain(n: u64) -> Relation {
    Relation::from_pairs((1..n).map(|i| (i, i + 1)))
}

/// A cycle `1 → 2 → … → n → 1`.
pub fn cycle(n: u64) -> Relation {
    Relation::from_pairs((1..=n).map(|i| (i, if i == n { 1 } else { i + 1 })))
}

/// A complete `b`-ary tree with `n` nodes, edges parent → child.
pub fn tree(n: u64, b: u64) -> Relation {
    assert!(b >= 1, "branching factor must be positive");
    Relation::from_pairs((2..=n).map(move |child| ((child - 2) / b + 1, child)))
}

/// A random digraph over `n` vertices with `m` edges (duplicates dropped, so
/// the result may be slightly smaller). Self-loops allowed.
pub fn random_digraph(n: u64, m: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new(2);
    for _ in 0..m {
        let a = rng.gen_range(1..=n);
        let b = rng.gen_range(1..=n);
        rel.insert(recurs_datalog::relation::tuple_u64([a, b]));
    }
    rel
}

/// A layered (bipartite-between-layers) graph: `layers` layers of `width`
/// vertices; each vertex gets `out_degree` random edges to the next layer.
/// Vertex ids: layer `l` (0-based) holds `l·width + 1 ..= (l+1)·width`.
pub fn layered(layers: u64, width: u64, out_degree: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new(2);
    for l in 0..layers.saturating_sub(1) {
        for v in 1..=width {
            let from = l * width + v;
            for _ in 0..out_degree {
                let to = (l + 1) * width + rng.gen_range(1..=width);
                rel.insert(recurs_datalog::relation::tuple_u64([from, to]));
            }
        }
    }
    rel
}

/// A 2-D grid of `w × h` vertices with right/down edges. Vertex (r, c) has
/// id `r·w + c + 1`.
pub fn grid(w: u64, h: u64) -> Relation {
    let mut rel = Relation::new(2);
    for r in 0..h {
        for c in 0..w {
            let id = r * w + c + 1;
            if c + 1 < w {
                rel.insert(recurs_datalog::relation::tuple_u64([id, id + 1]));
            }
            if r + 1 < h {
                rel.insert(recurs_datalog::relation::tuple_u64([id, id + w]));
            }
        }
    }
    rel
}

/// A random relation of arbitrary arity with values drawn from `1..=domain`.
pub fn random_relation(arity: usize, tuples: usize, domain: u64, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new(arity);
    for _ in 0..tuples {
        rel.insert(
            (0..arity)
                .map(|_| recurs_datalog::Value::from_u64(rng.gen_range(1..=domain)))
                .collect(),
        );
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use recurs_datalog::Value;

    #[test]
    fn chain_has_n_minus_one_edges() {
        assert_eq!(chain(10).len(), 9);
        assert_eq!(chain(1).len(), 0);
    }

    #[test]
    fn cycle_has_n_edges_and_closes() {
        let c = cycle(5);
        assert_eq!(c.len(), 5);
        assert!(c.contains(&[Value::from_u64(5), Value::from_u64(1)]));
    }

    #[test]
    fn tree_every_nonroot_has_one_parent() {
        let t = tree(15, 2);
        assert_eq!(t.len(), 14);
        // Node 2 and 3 are children of 1.
        assert!(t.contains(&[Value::from_u64(1), Value::from_u64(2)]));
        assert!(t.contains(&[Value::from_u64(1), Value::from_u64(3)]));
    }

    #[test]
    fn random_digraph_is_deterministic() {
        let a = random_digraph(50, 100, 7);
        let b = random_digraph(50, 100, 7);
        assert_eq!(a, b);
        let c = random_digraph(50, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn layered_edges_go_forward_one_layer() {
        let g = layered(3, 4, 2, 1);
        for t in g.iter() {
            let from: u64 = t[0].as_str().parse().unwrap();
            let to: u64 = t[1].as_str().parse().unwrap();
            assert_eq!((to - 1) / 4, (from - 1) / 4 + 1);
        }
    }

    #[test]
    fn grid_edge_count() {
        // w·(h·(w-1)/w ... directly: right edges h·(w−1), down edges w·(h−1).
        let g = grid(4, 3);
        assert_eq!(g.len(), (3 * 3 + 4 * 2) as usize);
    }

    #[test]
    fn random_relation_respects_arity_and_domain() {
        let r = random_relation(3, 40, 5, 42);
        assert_eq!(r.arity(), 3);
        for t in r.iter() {
            for v in t.iter() {
                let n: u64 = v.as_str().parse().unwrap();
                assert!((1..=5).contains(&n));
            }
        }
    }
}
