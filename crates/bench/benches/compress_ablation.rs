//! Ablation: the Remark's compression as an optimization. The same stable
//! formula is evaluated (a) as written, with the undirected chain re-joined
//! inside every fixpoint iteration, and (b) compressed, with the combined
//! relation materialized once. Expected shape: compression wins and the gap
//! grows with the number of iterations the fixpoint needs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_core::compress::compress;
use recurs_datalog::eval::semi_naive;
use recurs_datalog::parser::parse_program;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, Relation};
use recurs_workload::graphs::chain;
use std::hint::black_box;
use std::time::Duration;

fn ablation(c: &mut Criterion) {
    // The Remark's formula: the chain x −A− u is joined through B, C too.
    let f = validate_with_generic_exit(
        &parse_program(
            "P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).\n\
             P(x, y) :- E(x, y).",
        )
        .unwrap(),
    )
    .unwrap();
    let compressed = compress(&f);

    let mut group = c.benchmark_group("compress_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [50u64, 200, 800] {
        let mut db = Database::new();
        db.insert_relation("A", chain(n));
        db.insert_relation("B", Relation::from_pairs((1..=n).map(|i| (i, i + 1000))));
        db.insert_relation("C", Relation::from_pairs((1..n).map(|i| (i + 1000, i + 1))));
        db.insert_relation("E", chain(n));

        group.bench_with_input(BenchmarkId::new("as_written", n), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                semi_naive(&mut db, &f.to_program(), None).unwrap();
                black_box(db.get("P").unwrap().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("compressed", n), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                compressed.materialize(&mut db).unwrap();
                semi_naive(&mut db, &compressed.lr.to_program(), None).unwrap();
                black_box(db.get("P").unwrap().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
