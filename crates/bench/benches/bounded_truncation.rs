//! Section 6's payoff: a bounded formula need never run a fixpoint — the
//! finite union of exit-closed expansions (rank levels) replaces it.
//!
//! Sweeps data size on the paper's s8 (rank 2) and s5 (permutational,
//! rank 2) and compares the bounded plan against naive and semi-naive
//! fixpoints. Expected shape: the bounded plan evaluates exactly rank+1
//! conjunctive queries regardless of data. On s5 (and on selective queries,
//! see report_experiments P2) it wins outright; on s8's *open* query over
//! dense random data the re-joined levels lose to semi-naive's incremental
//! deltas — the trade-off the sweep exists to show.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_core::plan::{plan_query, StrategyKind};
use recurs_datalog::eval::{naive, semi_naive};
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Database;
use recurs_workload::graphs::{random_digraph, random_relation};
use std::hint::black_box;
use std::time::Duration;

fn s8_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", random_digraph(n, n as usize, 21));
    db.insert_relation("B", random_digraph(n, n as usize, 22));
    db.insert_relation("C", random_digraph(n, n as usize, 23));
    db.insert_relation("E", random_relation(4, n as usize, n, 24));
    db
}

fn s8_sweep(c: &mut Criterion) {
    let f = validate_with_generic_exit(
        &parse_program(
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).\n\
             P(x, y, z, u) :- E(x, y, z, u).",
        )
        .unwrap(),
    )
    .unwrap();
    let query = parse_atom("P(x, y, z, u)").unwrap();
    let mut group = c.benchmark_group("bounded_truncation_s8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [50u64, 100, 200] {
        let db = s8_db(n);
        let plan = plan_query(&f, &query);
        assert_eq!(plan.strategy, StrategyKind::Bounded);
        recurs_core::oracle::assert_equivalent(&f, &db, &query);
        group.bench_with_input(BenchmarkId::new("bounded_plan", n), &db, |b, db| {
            b.iter(|| black_box(plan.execute(db, &query).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                semi_naive(&mut db, &f.to_program(), None).unwrap();
                black_box(recurs_datalog::eval::answer_query(&db, &query).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                naive(&mut db, &f.to_program(), None).unwrap();
                black_box(recurs_datalog::eval::answer_query(&db, &query).unwrap())
            });
        });
    }
    group.finish();
}

fn s5_sweep(c: &mut Criterion) {
    // s5: pure rotation, rank lcm(3)−1 = 2.
    let f =
        validate_with_generic_exit(&parse_program("P(x, y, z) :- P(y, z, x).").unwrap()).unwrap();
    let query = parse_atom("P(x, y, z)").unwrap();
    let mut group = c.benchmark_group("bounded_truncation_s5");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [1_000u64, 5_000, 20_000] {
        let mut db = Database::new();
        db.insert_relation("E", random_relation(3, n as usize, n, 25));
        let plan = plan_query(&f, &query);
        assert_eq!(plan.strategy, StrategyKind::Bounded);
        group.bench_with_input(BenchmarkId::new("bounded_plan", n), &db, |b, db| {
            b.iter(|| black_box(plan.execute(db, &query).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                semi_naive(&mut db, &f.to_program(), None).unwrap();
                black_box(recurs_datalog::eval::answer_query(&db, &query).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, s8_sweep, s5_sweep);
criterion_main!(benches);
