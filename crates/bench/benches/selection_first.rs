//! The paper's core optimization principle: "join operations will be
//! performed only after selection operations". This bench sweeps data size
//! for a selective query on a stable formula and compares:
//!
//! * the compiled counting plan (selection first, per-level chains);
//! * the semi-naive fixpoint followed by selection (join first).
//!
//! Expected shape: the compiled plan scales with the size of the *relevant*
//! subgraph (≈ linear in the chain suffix), the fixpoint with the whole
//! closure (≈ quadratic on a chain) — the gap widens with n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recurs_core::plan::plan_query;
use recurs_datalog::eval::semi_naive;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Database;
use recurs_workload::graphs::{chain, layered, tree};
use std::hint::black_box;
use std::time::Duration;

fn tc() -> recurs_datalog::LinearRecursion {
    validate_with_generic_exit(
        &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
    )
    .unwrap()
}

fn sweep(c: &mut Criterion, name: &str, dbs: Vec<(u64, Database)>, query_src: &str) {
    let f = tc();
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (n, db) in dbs {
        let query = parse_atom(query_src).unwrap();
        recurs_core::oracle::assert_equivalent(&f, &db, &query);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(
            BenchmarkId::new("compiled_selection_first", n),
            &db,
            |b, db| {
                let plan = plan_query(&f, &query);
                b.iter(|| black_box(plan.execute(db, &query).unwrap()));
            },
        );
        group.bench_with_input(BenchmarkId::new("fixpoint_then_select", n), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                semi_naive(&mut db, &f.to_program(), None).unwrap();
                black_box(recurs_datalog::eval::answer_query(&db, &query).unwrap())
            });
        });
    }
    group.finish();
}

fn chain_sweep(c: &mut Criterion) {
    let dbs = [64u64, 256, 1024]
        .into_iter()
        .map(|n| {
            let mut db = Database::new();
            db.insert_relation("A", chain(n));
            db.insert_relation("E", chain(n));
            (n, db)
        })
        .collect();
    // Query from 3/4 down the chain: the relevant suffix is n/4.
    sweep(c, "selection_first_chain", dbs, "P('48', y)");
}

fn tree_sweep(c: &mut Criterion) {
    let dbs = [63u64, 255, 1023]
        .into_iter()
        .map(|n| {
            let mut db = Database::new();
            db.insert_relation("A", tree(n, 2));
            db.insert_relation("E", tree(n, 2));
            (n, db)
        })
        .collect();
    sweep(c, "selection_first_tree", dbs, "P('2', y)");
}

fn layered_sweep(c: &mut Criterion) {
    let dbs = [10u64, 20, 40]
        .into_iter()
        .map(|layers| {
            let mut db = Database::new();
            db.insert_relation("A", layered(layers, 16, 2, 11));
            db.insert_relation("E", layered(layers, 16, 2, 12));
            (layers, db)
        })
        .collect();
    sweep(c, "selection_first_layered", dbs, "P('1', y)");
}

criterion_group!(benches, chain_sweep, tree_sweep, layered_sweep);
criterion_main!(benches);
