//! Update latency: what a single-fact EDB update costs through the
//! `recurs-ivm` maintenance layer, against the cold refixpoint a
//! maintenance-unaware server would pay.
//!
//! Per size of the transitive-closure chain, one insert/delete stream is
//! timed two ways:
//!
//! * **patched_update** — insert a fresh tip edge `E(n, n+1)` and patch the
//!   standing materialization with counting propagation, then delete it
//!   again and patch with DRed (overdelete, recount, rederive). One
//!   iteration is the full cycle — *two* single-fact patches — which keeps
//!   the timed loop stationary;
//! * **cold** — refixpoint the whole updated database from scratch: the
//!   baseline every update would pay without incremental maintenance.
//!
//! The patched states are asserted tuple-identical to from-scratch
//! saturation before anything is timed. `bench_compare` times the two patch
//! directions separately with the project's lightweight median timer;
//! BENCH_ivm.json records those baseline medians and the patched-vs-cold
//! speedup the CI tripwire gates on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_datalog::eval::semi_naive;
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::{tuple_u64, Relation};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Database;
use recurs_ivm::{EdbDelta, FactOp, Materialization};
use recurs_obs::Obs;
use recurs_workload::graphs::chain;
use std::hint::black_box;
use std::time::Duration;

fn tc_formula() -> LinearRecursion {
    validate_with_generic_exit(
        &parse_program(
            "P(x, y) :- A(x, z), P(z, y).\n\
             P(x, y) :- E(x, y).",
        )
        .unwrap(),
    )
    .unwrap()
}

fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("E", chain(n));
    db
}

/// From-scratch fixpoint of `P` over `edb` — the cold baseline and the
/// correctness oracle.
fn refixpoint(f: &LinearRecursion, edb: &Database) -> Relation {
    let mut db = edb.clone();
    db.insert_relation(f.predicate, Relation::new(f.dimension()));
    semi_naive(&mut db, &f.to_program(), None).unwrap();
    db.get(f.predicate).unwrap().clone()
}

fn update_latency(c: &mut Criterion) {
    let f = tc_formula();
    let budget = EvalBudget::unlimited();
    for &n in &[200u64, 400, 800] {
        let db = tc_db(n);
        let e = Symbol::intern("E");
        let insert = EdbDelta::normalize(&[FactOp::Insert(e, tuple_u64([n, n + 1]))], &db).unwrap();
        let mut inserted_db = db.clone();
        insert.apply_to(&mut inserted_db).unwrap();
        // Normalize the delete against the *inserted* state — against the
        // base database it would net out to an empty (no-op) delta.
        let delete =
            EdbDelta::normalize(&[FactOp::Delete(e, tuple_u64([n, n + 1]))], &inserted_db).unwrap();

        // Certify both patch directions against from-scratch saturation
        // before timing anything.
        let mut mat = Materialization::saturate(&f, &db, &budget, &Obs::noop()).unwrap();
        assert!(mat.apply(&insert, &budget).unwrap().truncation.is_none());
        assert_eq!(mat.relation(), &refixpoint(&f, &inserted_db));
        assert!(mat.apply(&delete, &budget).unwrap().truncation.is_none());
        assert_eq!(mat.relation(), &refixpoint(&f, &db));

        let mut group = c.benchmark_group("update_latency_tc");
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));
        group.bench_with_input(BenchmarkId::new("patched_update", n), &(), |b, ()| {
            b.iter(|| {
                black_box(mat.apply(&insert, &budget).unwrap());
                black_box(mat.apply(&delete, &budget).unwrap());
            });
        });
        group.bench_with_input(BenchmarkId::new("cold", n), &(), |b, ()| {
            b.iter(|| black_box(refixpoint(&f, &inserted_db)));
        });
        group.finish();
    }
}

criterion_group!(benches, update_latency);
criterion_main!(benches);
