//! The paper's hand-derived class-C plans (section 6, s9) versus our general
//! strategy and the fixpoint baselines. The per-case plan exploits the ×/∃
//! structure the paper derives from the resolution graph; magic cannot (it
//! must materialize the unconstrained adorned predicate), so the expected
//! shape is: paper plan ≤ magic ≈ semi-naive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_core::algebra_plan::eval_plan;
use recurs_core::paper_plans::{s9_plan_dvv, s9_plan_vvd};
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::eval::semi_naive;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, Value};
use recurs_workload::graphs::{random_digraph, random_relation};
use std::hint::black_box;
use std::time::Duration;

fn s9_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", random_digraph(n, n as usize, 31));
    db.insert_relation("B", random_digraph(n, (n / 2) as usize, 32));
    db.insert_relation("E", random_relation(3, (n / 2) as usize, n, 33));
    db
}

fn s9_sweep(c: &mut Criterion) {
    let f = validate_with_generic_exit(
        &parse_program(
            "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\n\
             P(x, y, z) :- E(x, y, z).",
        )
        .unwrap(),
    )
    .unwrap();
    let mut group = c.benchmark_group("s9_paper_plans");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [100u64, 400] {
        let db = s9_db(n);
        let a = Value::from_u64(1);
        let dvv_plan = s9_plan_dvv(a);
        let q = parse_atom("P('1', y, z)").unwrap();

        // Sanity: paper plan ≡ oracle before timing.
        let got = eval_plan(&db, &dvv_plan).unwrap();
        let (want, _) = recurs_core::oracle::ground_truth(&f, &db, &q).unwrap();
        assert_eq!(got, want, "s9 paper plan diverged at n = {n}");

        group.bench_with_input(BenchmarkId::new("paper_plan_dvv", n), &db, |b, db| {
            b.iter(|| black_box(eval_plan(db, &dvv_plan).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("magic_dvv", n), &db, |b, db| {
            let plan = recurs_core::magic::build_plan(&f, &QueryForm::parse("dvv"));
            b.iter(|| black_box(recurs_core::magic::execute(&plan, db, &q).unwrap().0));
        });
        group.bench_with_input(BenchmarkId::new("semi_naive_dvv", n), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                semi_naive(&mut db, &f.to_program(), None).unwrap();
                black_box(recurs_datalog::eval::answer_query(&db, &q).unwrap())
            });
        });

        // The existence-check form.
        let c_val = Value::from_u64(7);
        let vvd_plan = s9_plan_vvd(c_val);
        let qv = parse_atom("P(x, y, '7')").unwrap();
        let got = eval_plan(&db, &vvd_plan).unwrap();
        let (want, _) = recurs_core::oracle::ground_truth(&f, &db, &qv).unwrap();
        assert_eq!(got, want, "s9 vvd paper plan diverged at n = {n}");
        group.bench_with_input(BenchmarkId::new("paper_plan_vvd", n), &db, |b, db| {
            b.iter(|| black_box(eval_plan(db, &vvd_plan).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, s9_sweep);
criterion_main!(benches);
