//! Compile-time costs: building I-graphs, enumerating cycles, classifying,
//! unfolding, and generating plans. The paper's pitch is that all of this is
//! done **once per formula** at compile time; these benches show it is
//! micro- to millisecond-scale and independent of the database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_core::classify::Classification;
use recurs_core::plan::plan_for_form;
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::parser::{parse_program, parse_rule};
use recurs_datalog::unfold::expansion;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_igraph::build::{igraph_of, resolution_graph};
use recurs_igraph::condense::condense;
use recurs_igraph::cycle::enumerate_cycles;
use std::hint::black_box;
use std::time::Duration;

const FORMULAS: &[(&str, &str)] = &[
    ("s1a", "P(x, y) :- A(x, z), P(z, y)."),
    ("s3", "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z)."),
    (
        "s4a",
        "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).",
    ),
    (
        "s7",
        "P(x, y, z, u, w, s, v) :- A(x, t), P(t, z, y, w, s, r, v), B(u, r).",
    ),
    (
        "s8",
        "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).",
    ),
    (
        "s12",
        "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).",
    ),
];

fn igraph_and_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("igraph_construction");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(1));
    for (name, src) in FORMULAS {
        let rule = parse_rule(src).unwrap();
        group.bench_with_input(BenchmarkId::new("igraph", name), &rule, |b, rule| {
            b.iter(|| black_box(igraph_of(rule)));
        });
        let g = igraph_of(&rule);
        group.bench_with_input(BenchmarkId::new("cycles", name), &g, |b, g| {
            b.iter(|| black_box(enumerate_cycles(&condense(g))));
        });
    }
    group.finish();
}

fn classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(1));
    for (name, src) in FORMULAS {
        let rule = parse_rule(src).unwrap();
        group.bench_with_input(BenchmarkId::new("classify", name), &rule, |b, rule| {
            b.iter(|| black_box(Classification::of(rule)));
        });
    }
    group.finish();
}

fn unfolding(c: &mut Criterion) {
    let mut group = c.benchmark_group("unfolding");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(1));
    let rule = parse_rule(FORMULAS[2].1).unwrap(); // s4a
    for k in [2usize, 6, 12, 24] {
        group.bench_with_input(BenchmarkId::new("expansion", k), &k, |b, &k| {
            b.iter(|| black_box(expansion(&rule, k)));
        });
        group.bench_with_input(BenchmarkId::new("resolution_graph", k), &k, |b, &k| {
            b.iter(|| black_box(resolution_graph(&rule, k)));
        });
    }
    group.finish();
}

fn planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_generation");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1));
    for (name, src) in FORMULAS {
        let lr = validate_with_generic_exit(&parse_program(src).unwrap()).unwrap();
        // The representative `P(d, v, …)` form.
        let pattern = format!("d{}", "v".repeat(lr.dimension() - 1));
        let form = QueryForm::parse(&pattern);
        group.bench_with_input(BenchmarkId::new("plan", name), &lr, |b, lr| {
            b.iter(|| black_box(plan_for_form(lr, &form)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    igraph_and_cycles,
    classification,
    unfolding,
    planning
);
criterion_main!(benches);
