//! Engine scaling: the oracle evaluator (`recurs_datalog::eval::semi_naive`)
//! vs the indexed engine vs the parallel engine at 1/2/4 worker threads, on
//! the two canonical recursive workloads:
//!
//! * **transitive closure** over a chain — deep recursion (one iteration per
//!   chain hop), small deltas: stresses per-iteration overheads, where the
//!   engine's persistent incrementally-maintained indexes beat the oracle's
//!   binding-map evaluation;
//! * **same generation** over a complete binary tree — shallow recursion,
//!   wide deltas: the shape where delta sharding across workers pays off
//!   (given actual cores; see BENCH_engine.json for the recorded baseline
//!   and its hardware note).
//!
//! Every configuration is asserted equal to the oracle's fixpoint before it
//! is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_datalog::eval::semi_naive;
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Database;
use recurs_engine::{run_linear, EngineConfig, EngineMode};
use recurs_workload::graphs::chain;
use std::hint::black_box;
use std::time::Duration;

fn tc_formula() -> LinearRecursion {
    validate_with_generic_exit(
        &parse_program(
            "P(x, y) :- A(x, z), P(z, y).\n\
             P(x, y) :- E(x, y).",
        )
        .unwrap(),
    )
    .unwrap()
}

fn sg_formula() -> LinearRecursion {
    validate_with_generic_exit(
        &parse_program(
            "SG(x, y) :- Up(x, u), SG(u, v), Down(v, y).\n\
             SG(x, y) :- Flat(x, y).",
        )
        .unwrap(),
    )
    .unwrap()
}

fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("E", chain(n));
    db
}

/// Same-generation EDB over a complete binary tree of `n` nodes: `Down` is
/// parent → child, `Up` its reverse, `Flat` seeds the root with itself.
fn sg_db(n: u64) -> Database {
    let down: Vec<(u64, u64)> = (2..=n).map(|child| ((child - 2) / 2 + 1, child)).collect();
    let mut db = Database::new();
    db.insert_relation(
        "Up",
        Relation::from_pairs(down.iter().map(|&(p, c)| (c, p))),
    );
    db.insert_relation("Down", Relation::from_pairs(down));
    db.insert_relation("Flat", Relation::from_pairs([(1u64, 1u64)]));
    db
}

fn oracle_fixpoint(db: &Database, f: &LinearRecursion) -> Database {
    let mut db = db.clone();
    semi_naive(&mut db, &f.to_program(), None).unwrap();
    db
}

fn engine_fixpoint(db: &Database, f: &LinearRecursion, mode: EngineMode) -> Database {
    let mut db = db.clone();
    let config = EngineConfig {
        mode,
        budget: EvalBudget::unlimited(),
        ..EngineConfig::default()
    };
    let sat = run_linear(&mut db, f, &config).unwrap();
    assert!(sat.outcome.is_complete());
    db
}

fn scaling_sweep(
    c: &mut Criterion,
    group_name: &str,
    f: &LinearRecursion,
    dbs: &[(u64, Database)],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pred = f.predicate;
    for (n, db) in dbs {
        // Certify every engine mode against the oracle before timing it.
        let expected = oracle_fixpoint(db, f);
        for mode in [
            EngineMode::Indexed,
            EngineMode::Parallel { threads: 2 },
            EngineMode::Parallel { threads: 4 },
        ] {
            let got = engine_fixpoint(db, f, mode);
            assert_eq!(
                expected.get(pred).unwrap(),
                got.get(pred).unwrap(),
                "{group_name}/{n}: {mode:?} disagrees with the oracle"
            );
        }

        group.bench_with_input(BenchmarkId::new("oracle", n), db, |b, db| {
            b.iter(|| black_box(oracle_fixpoint(db, f)));
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), db, |b, db| {
            b.iter(|| black_box(engine_fixpoint(db, f, EngineMode::Indexed)));
        });
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel{threads}"), n),
                db,
                |b, db| {
                    b.iter(|| black_box(engine_fixpoint(db, f, EngineMode::Parallel { threads })));
                },
            );
        }
    }
    group.finish();
}

fn tc_scaling(c: &mut Criterion) {
    let f = tc_formula();
    let dbs: Vec<(u64, Database)> = [200u64, 400, 800].iter().map(|&n| (n, tc_db(n))).collect();
    scaling_sweep(c, "engine_scaling_tc", &f, &dbs);
}

fn sg_scaling(c: &mut Criterion) {
    let f = sg_formula();
    let dbs: Vec<(u64, Database)> = [255u64, 511, 1023].iter().map(|&n| (n, sg_db(n))).collect();
    scaling_sweep(c, "engine_scaling_sg", &f, &dbs);
}

criterion_group!(benches, tc_scaling, sg_scaling);
criterion_main!(benches);
