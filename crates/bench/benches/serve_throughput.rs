//! Serving throughput: what a query costs through each `recurs-serve` path,
//! against the cold baseline a classification-unaware server would pay.
//!
//! Per workload (transitive closure over a chain; same generation over a
//! complete binary tree) and size, one bound query is answered three ways:
//!
//! * **cold** — saturate the whole database, then filter: the full-saturation
//!   fallback every query would pay without class-aware dispatch;
//! * **point** — the service with the cache disabled: each ask runs the
//!   dispatched point kernel (magic iteration for these A1 formulas, seeded
//!   with the query constant);
//! * **cached** — the service with the cache warm: each ask is a shared-`Arc`
//!   cache hit.
//!
//! Every path is asserted equal to the filtered oracle fixpoint before it is
//! timed. BENCH_serve.json records the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_datalog::eval::{answer_query, semi_naive};
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::term::Atom;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Database;
use recurs_engine::{run_linear, EngineConfig, EngineMode};
use recurs_serve::{CacheOutcome, PointKernelKind, QueryService, ServeConfig};
use recurs_workload::graphs::chain;
use std::hint::black_box;
use std::time::Duration;

fn tc_formula() -> LinearRecursion {
    validate_with_generic_exit(
        &parse_program(
            "P(x, y) :- A(x, z), P(z, y).\n\
             P(x, y) :- E(x, y).",
        )
        .unwrap(),
    )
    .unwrap()
}

fn sg_formula() -> LinearRecursion {
    validate_with_generic_exit(
        &parse_program(
            "SG(x, y) :- Up(x, u), SG(u, v), Down(v, y).\n\
             SG(x, y) :- Flat(x, y).",
        )
        .unwrap(),
    )
    .unwrap()
}

fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("E", chain(n));
    db
}

fn sg_db(n: u64) -> Database {
    let down: Vec<(u64, u64)> = (2..=n).map(|child| ((child - 2) / 2 + 1, child)).collect();
    let mut db = Database::new();
    db.insert_relation(
        "Up",
        Relation::from_pairs(down.iter().map(|&(p, c)| (c, p))),
    );
    db.insert_relation("Down", Relation::from_pairs(down));
    db.insert_relation("Flat", Relation::from_pairs([(1u64, 1u64)]));
    db
}

/// The cold baseline: saturate a clone of the whole database with the
/// indexed engine, then select/project the query — what every ask costs
/// without class-aware point dispatch.
fn cold_full_saturation(db: &Database, f: &LinearRecursion, query: &Atom) -> Relation {
    let mut db = db.clone();
    let config = EngineConfig {
        mode: EngineMode::Indexed,
        budget: EvalBudget::unlimited(),
        ..EngineConfig::default()
    };
    let sat = run_linear(&mut db, f, &config).unwrap();
    assert!(sat.outcome.is_complete());
    answer_query(&db, query).unwrap()
}

fn service(f: &LinearRecursion, db: &Database, cache: bool) -> QueryService {
    QueryService::new(
        f.clone(),
        db.clone(),
        ServeConfig {
            cache_capacity: if cache { 1024 } else { 0 },
            ..ServeConfig::default()
        },
    )
}

fn serve_sweep(
    c: &mut Criterion,
    group_name: &str,
    f: &LinearRecursion,
    cases: &[(u64, Database, Atom)],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (n, db, query) in cases {
        // Certify every path against the filtered oracle fixpoint.
        let mut oracle = db.clone();
        semi_naive(&mut oracle, &f.to_program(), None).unwrap();
        let expected = answer_query(&oracle, query).unwrap();
        assert_eq!(cold_full_saturation(db, f, query), expected);

        let point = service(f, db, false);
        assert_eq!(
            point.kernel_for(query),
            PointKernelKind::MagicIterate,
            "{group_name}/{n}: bound query must dispatch to the magic kernel"
        );
        let reply = point.query(query).unwrap();
        assert!(reply.outcome.is_complete());
        assert_eq!(*reply.answers, expected);

        let cached = service(f, db, true);
        cached.query(query).unwrap(); // warm
        let hit = cached.query(query).unwrap();
        assert_eq!(hit.stats.cache, CacheOutcome::Hit);
        assert_eq!(*hit.answers, expected);

        group.bench_with_input(BenchmarkId::new("cold", n), db, |b, db| {
            b.iter(|| black_box(cold_full_saturation(db, f, query)));
        });
        group.bench_with_input(BenchmarkId::new("point", n), &point, |b, s| {
            b.iter(|| black_box(s.query(query).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &cached, |b, s| {
            b.iter(|| black_box(s.query(query).unwrap()));
        });
    }
    group.finish();
}

fn tc_serving(c: &mut Criterion) {
    let f = tc_formula();
    let cases: Vec<(u64, Database, Atom)> = [200u64, 400, 800]
        .iter()
        .map(|&n| {
            // Midpoint source: the magic kernel only walks half the chain.
            let q = parse_atom(&format!("P({}, y)", n / 2)).unwrap();
            (n, tc_db(n), q)
        })
        .collect();
    serve_sweep(c, "serve_throughput_tc", &f, &cases);
}

fn sg_serving(c: &mut Criterion) {
    let f = sg_formula();
    let cases: Vec<(u64, Database, Atom)> = [255u64, 511, 1023]
        .iter()
        .map(|&n| (n, sg_db(n), parse_atom("SG(2, y)").unwrap()))
        .collect();
    serve_sweep(c, "serve_throughput_sg", &f, &cases);
}

criterion_group!(benches, tc_serving, sg_serving);
criterion_main!(benches);
