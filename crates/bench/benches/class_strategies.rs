//! One benchmark group per class of the paper (Examples 3–14): the compiled
//! plan (bounded / counting / magic, as the classifier picks) versus the
//! naive and semi-naive fixpoint baselines, on a representative query of
//! that class.
//!
//! Expected shape (the paper's implied claims, refined by measurement):
//! * stable / transformable classes (A1, A3): the counting plan beats both
//!   fixpoints on selective queries by a widening factor as data grows;
//! * bounded classes (B, D, A4): the bounded plan avoids fixpoint machinery
//!   — it wins clearly on selective queries (σ pushed into each level) and
//!   on permutational formulas, while *open* queries over dense random data
//!   can favor semi-naive (incremental deltas beat re-joined levels);
//! * general classes (C, E, F): magic matches semi-naive on unselective
//!   work but restricts derivation when the query is selective.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recurs_core::plan::plan_query;
use recurs_datalog::eval::{naive, semi_naive};
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Atom, Database, Relation};
use recurs_workload::graphs::{chain, random_digraph};
use std::hint::black_box;
use std::time::Duration;

fn lr(src: &str) -> LinearRecursion {
    validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
}

fn bench_case(
    c: &mut Criterion,
    group_name: &str,
    f: &LinearRecursion,
    db: &Database,
    query: &Atom,
    sizes_label: u64,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    // Pre-verify agreement once, so the benchmark numbers are meaningful.
    recurs_core::oracle::assert_equivalent(f, db, query);
    group.bench_with_input(
        BenchmarkId::new("compiled_plan", sizes_label),
        &(),
        |b, ()| {
            let plan = plan_query(f, query);
            b.iter(|| black_box(plan.execute(db, query).unwrap()));
        },
    );
    group.bench_with_input(BenchmarkId::new("semi_naive", sizes_label), &(), |b, ()| {
        b.iter(|| {
            let mut db = db.clone();
            semi_naive(&mut db, &f.to_program(), None).unwrap();
            black_box(recurs_datalog::eval::answer_query(&db, query).unwrap())
        });
    });
    group.bench_with_input(BenchmarkId::new("naive", sizes_label), &(), |b, ()| {
        b.iter(|| {
            let mut db = db.clone();
            naive(&mut db, &f.to_program(), None).unwrap();
            black_box(recurs_datalog::eval::answer_query(&db, query).unwrap())
        });
    });
    group.finish();
}

/// Example 3 — class A1 (stable), query P(a, b, Z).
fn class_a1(c: &mut Criterion) {
    let f = lr("P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).\n\
                P(x, y, z) :- E(x, y, z).");
    let n = 300u64;
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("B", chain(n));
    db.insert_relation("C", chain(n));
    db.insert_relation("E", diag3(n));
    let query = parse_atom("P('1', '1', z)").unwrap();
    bench_case(c, "example3_class_a1", &f, &db, &query, n);
}

/// Example 4 — class A3 (unfold 3× then count), query P(a, b, Z).
fn class_a3(c: &mut Criterion) {
    let f = lr(
        "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).\n\
                P(x1, x2, x3) :- E(x1, x2, x3).",
    );
    let n = 120u64;
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("B", chain(n));
    db.insert_relation("C", chain(n));
    db.insert_relation("E", diag3(n));
    let query = parse_atom("P('1', '1', z)").unwrap();
    bench_case(c, "example4_class_a3", &f, &db, &query, n);
}

/// Example 8 — class B (bounded, rank 2), open query.
fn class_b(c: &mut Criterion) {
    let f = lr(
        "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).\n\
                P(x, y, z, u) :- E(x, y, z, u).",
    );
    let n = 150u64;
    let mut db = Database::new();
    db.insert_relation("A", random_digraph(n, n as usize, 1));
    db.insert_relation("B", random_digraph(n, n as usize, 2));
    db.insert_relation("C", random_digraph(n, n as usize, 3));
    db.insert_relation(
        "E",
        recurs_workload::graphs::random_relation(4, n as usize, n, 4),
    );
    let query = parse_atom("P(x, y, z, u)").unwrap();
    bench_case(c, "example8_class_b", &f, &db, &query, n);
}

/// Example 9 — class C (unbounded cycle), query P(d, v, v).
fn class_c(c: &mut Criterion) {
    let f = lr("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\n\
                P(x, y, z) :- E(x, y, z).");
    let n = 100u64;
    let mut db = Database::new();
    db.insert_relation("A", random_digraph(n, n as usize, 5));
    db.insert_relation("B", random_digraph(n, (n / 2) as usize, 6));
    db.insert_relation(
        "E",
        recurs_workload::graphs::random_relation(3, (n / 2) as usize, n, 7),
    );
    let query = parse_atom("P('1', y, z)").unwrap();
    bench_case(c, "example9_class_c", &f, &db, &query, n);
}

/// Example 10 — class D (acyclic, rank 2), open query.
fn class_d(c: &mut Criterion) {
    let f = lr("P(x, y) :- B(y), C(x, y1), P(x1, y1).\nP(x, y) :- E(x, y).");
    let n = 250u64;
    let mut db = Database::new();
    db.insert_relation(
        "B",
        recurs_workload::graphs::random_relation(1, (n / 2) as usize, n, 8),
    );
    db.insert_relation("C", random_digraph(n, n as usize, 9));
    db.insert_relation("E", random_digraph(n, n as usize, 10));
    let query = parse_atom("P(x, y)").unwrap();
    bench_case(c, "example10_class_d", &f, &db, &query, n);
}

/// Example 11 — class E (dependent), query P(d, v).
fn class_e(c: &mut Criterion) {
    let f = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).\n\
                P(x, y) :- E(x, y).");
    let n = 250u64;
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("B", chain(n));
    db.insert_relation("C", Relation::from_pairs((1..=n).map(|i| (i, i))));
    db.insert_relation("E", Relation::from_pairs((1..=n).map(|i| (i, i))));
    let query = parse_atom("P('1', y)").unwrap();
    bench_case(c, "example11_class_e", &f, &db, &query, n);
}

/// Example 14 — class F (mixed), query P(d, v, v).
fn class_f(c: &mut Criterion) {
    let f = lr(
        "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).\n\
                P(x, y, z) :- E(x, y, z).",
    );
    let n = 200u64;
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("B", chain(n));
    db.insert_relation("C", Relation::from_pairs((1..=n).map(|i| (i, i))));
    db.insert_relation("D", chain(n));
    db.insert_relation(
        "E",
        Relation::from_tuples(
            3,
            (1..n).map(|i| recurs_datalog::relation::tuple_u64([i, i, i])),
        ),
    );
    let query = parse_atom("P('1', y, z)").unwrap();
    bench_case(c, "example14_class_f", &f, &db, &query, n);
}

/// A ternary diagonal exit relation {(i, i, i)}.
fn diag3(n: u64) -> Relation {
    Relation::from_tuples(
        3,
        (1..=n).map(|i| recurs_datalog::relation::tuple_u64([i, i, i])),
    )
}

criterion_group!(benches, class_a1, class_a3, class_b, class_c, class_d, class_e, class_f);
criterion_main!(benches);
