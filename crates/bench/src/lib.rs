//! Bench-harness crate: see `benches/` and `src/bin/`.
#![warn(missing_docs)]
/// Re-export so the harness binaries share one version statement.
pub const PAPER: &str = "Youn, Henschen & Han, SIGMOD 1988";
