//! Regenerates the experiment index of EXPERIMENTS.md: for every
//! figure/example of the paper, the paper's claim versus our measured
//! result, plus coarse wall-clock comparisons of the compiled plans against
//! the fixpoint baselines (the performance claims the compilation approach
//! implies).
//!
//! Run with: `cargo run --release -p recurs-bench --bin report_experiments`

use recurs_core::classify::Classification;
use recurs_core::oracle::compare;
use recurs_core::plan::{plan_query, StrategyKind};
use recurs_datalog::eval::{naive, semi_naive};
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, LinearRecursion, Relation};
use recurs_workload::graphs::{chain, random_digraph, random_relation};
use std::time::{Duration, Instant};

fn lr(src: &str) -> LinearRecursion {
    validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
}

fn time<R>(f: impl Fn() -> R, reps: u32) -> Duration {
    // One warm-up, then best-of-`reps` to damp noise.
    let _ = f();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .min()
        .expect("reps >= 1")
}

struct Row {
    id: String,
    claim: String,
    measured: String,
    ok: bool,
}

fn check_claim(rows: &mut Vec<Row>, id: &str, claim: &str, measured: String, ok: bool) {
    rows.push(Row {
        id: id.into(),
        claim: claim.into(),
        measured,
        ok,
    });
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // ---- structural claims (classification / bounds / periods) -----------
    type Check = fn(&Classification) -> (String, bool);
    let structural: &[(&str, &str, &str, Check)] = &[
        (
            "E3/s3",
            "class A1, strongly stable",
            "P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).",
            |c| {
                (
                    format!("class {}, stable={}", c.class, c.is_strongly_stable()),
                    c.class.label() == "A1" && c.is_strongly_stable(),
                )
            },
        ),
        (
            "E4/s4a",
            "class A3, stable after 3 unfoldings",
            "P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).",
            |c| {
                (
                    format!("class {}, period {:?}", c.class, c.stabilization_period()),
                    c.class.label() == "A3" && c.stabilization_period() == Some(3),
                )
            },
        ),
        ("E5/s5", "class A4, bounded", "P(x,y,z) :- P(y,z,x).", |c| {
            (
                format!(
                    "class {}, bounded={}, rank {:?}",
                    c.class,
                    c.is_bounded(),
                    c.rank_bound()
                ),
                c.class.label() == "A4" && c.rank_bound() == Some(2),
            )
        }),
        (
            "E6/s6",
            "stable after lcm(3,1,2)=6; bound lcm−1=5 (Thm 10)",
            "P(x,y,z,u,v,w) :- P(z,y,u,x,w,v).",
            |c| {
                (
                    format!(
                        "period {:?}, rank {:?}",
                        c.stabilization_period(),
                        c.rank_bound()
                    ),
                    c.stabilization_period() == Some(6) && c.rank_bound() == Some(5),
                )
            },
        ),
        (
            "E7/s7",
            "4 disjoint cycles w=1,2,3,1; stable after 6",
            "P(x,y,z,u,w,s,v) :- A(x,t), P(t,z,y,w,s,r,v), B(u,r).",
            |c| {
                (
                    format!("class {}, period {:?}", c.class, c.stabilization_period()),
                    c.class.label() == "A5" && c.stabilization_period() == Some(6),
                )
            },
        ),
        (
            "E8/s8",
            "class B, rank bound 2 (Ioannidis)",
            "P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).",
            |c| {
                (
                    format!("class {}, rank {:?}", c.class, c.rank_bound()),
                    c.class.label() == "B" && c.rank_bound() == Some(2),
                )
            },
        ),
        (
            "E9/s9",
            "class C (unbounded), not transformable (Thm 5)",
            "P(x,y,z) :- A(x,y), B(u,v), P(u,z,v).",
            |c| {
                (
                    format!(
                        "class {}, transformable={}",
                        c.class,
                        c.is_transformable_to_stable()
                    ),
                    c.class.label() == "C" && !c.is_transformable_to_stable(),
                )
            },
        ),
        (
            "E10/s10",
            "class D, bounded with rank 2 (Cor 2)",
            "P(x,y) :- B(y), C(x,y1), P(x1,y1).",
            |c| {
                (
                    format!("class {}, rank {:?}", c.class, c.rank_bound()),
                    c.class.label() == "D" && c.rank_bound() == Some(2),
                )
            },
        ),
        (
            "E11/s11",
            "class E (dependent), not transformable (Thm 8)",
            "P(x,y) :- A(x,x1), B(y,y1), C(x1,y1), P(x1,y1).",
            |c| {
                (
                    format!(
                        "class {}, transformable={}",
                        c.class,
                        c.is_transformable_to_stable()
                    ),
                    c.class.label() == "E" && !c.is_transformable_to_stable(),
                )
            },
        ),
        (
            "E12/s12",
            "mixed; pattern dvv → ddv → ddv (Ex. 14)",
            "P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).",
            |c| (format!("class {}", c.class), c.class.label() == "F"),
        ),
    ];
    for (id, claim, src, check) in structural {
        let c = Classification::of(&lr(src).recursive_rule);
        let (measured, ok) = check(&c);
        check_claim(&mut rows, id, claim, measured, ok);
    }

    // s12 propagation trace (Ex. 14's query-form table).
    {
        let f = lr("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).");
        let (trace, _) = recurs_datalog::adornment::propagation_trace(
            &f.recursive_rule,
            &recurs_datalog::QueryForm::parse("dvv"),
            4,
        );
        let rendered: Vec<String> = trace.iter().map(|t| t.to_string()).collect();
        check_claim(
            &mut rows,
            "E12/trace",
            "incoming dvv; 1st expansion ddv; thereafter ddv",
            rendered.join(" → "),
            rendered.starts_with(&["dvv".into(), "ddv".into(), "ddv".into()]),
        );
    }

    // ---- performance claims (implied by the compilation approach) --------
    // P1: selection-first on a stable formula (chain, selective query).
    {
        let f = lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).");
        let n = 2000u64;
        let mut db = Database::new();
        db.insert_relation("A", chain(n));
        db.insert_relation("E", chain(n));
        let q = parse_atom("P('1900', y)").unwrap();
        let report = compare(&f, &db, &q).unwrap();
        assert!(report.agrees());
        let plan = plan_query(&f, &q);
        let t_plan = time(|| plan.execute(&db, &q).unwrap(), 3);
        let t_semi = time(
            || {
                let mut db = db.clone();
                semi_naive(&mut db, &f.to_program(), None).unwrap();
                recurs_datalog::eval::answer_query(&db, &q).unwrap()
            },
            3,
        );
        let speedup = t_semi.as_secs_f64() / t_plan.as_secs_f64().max(1e-9);
        check_claim(
            &mut rows,
            "P1/selection-first",
            "compiled plan ≫ fixpoint on selective queries (chain n=2000, source at 1900)",
            format!("plan {t_plan:?} vs semi-naive {t_semi:?} ({speedup:.0}× faster)"),
            speedup > 5.0,
        );
    }
    // P2: bounded truncation + selection pushdown (s8, selective query).
    {
        let f = lr("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).\n\
                    P(x,y,z,u) :- E(x,y,z,u).");
        let n = 800u64;
        let mut db = Database::new();
        db.insert_relation("A", random_digraph(n, n as usize, 1));
        db.insert_relation("B", random_digraph(n, n as usize, 2));
        db.insert_relation("C", random_digraph(n, n as usize, 3));
        db.insert_relation("E", random_relation(4, n as usize, n, 4));
        let q = parse_atom("P('3', y, z, u)").unwrap();
        let report = compare(&f, &db, &q).unwrap();
        assert!(report.agrees());
        let plan = plan_query(&f, &q);
        assert_eq!(plan.strategy, StrategyKind::Bounded);
        let t_plan = time(|| plan.execute(&db, &q).unwrap(), 3);
        let t_naive = time(
            || {
                let mut db = db.clone();
                naive(&mut db, &f.to_program(), None).unwrap();
                recurs_datalog::eval::answer_query(&db, &q).unwrap()
            },
            3,
        );
        let speedup = t_naive.as_secs_f64() / t_plan.as_secs_f64().max(1e-9);
        check_claim(
            &mut rows,
            "P2/bounded",
            "bounded plan (rank-2 union, σ pushed into each level, no fixpoint) beats naive \
             evaluation on a selective query",
            format!("plan {t_plan:?} vs naive {t_naive:?} ({speedup:.0}× faster)"),
            speedup > 5.0,
        );
    }
    // P3: magic information passing restricts *derivation* on class E. The
    // paper's point is that the σ-first plan only touches tuples connected
    // to the query constant; we measure tuples derived by each approach.
    {
        let f = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).\n\
                    P(x, y) :- E(x, y).");
        let n = 1200u64;
        let mut db = Database::new();
        db.insert_relation("A", chain(n));
        db.insert_relation("B", chain(n));
        db.insert_relation("C", Relation::from_pairs((1..=n).map(|i| (i, i))));
        db.insert_relation("E", Relation::from_pairs((1..=n).map(|i| (i, i))));
        let q = parse_atom("P('1100', y)").unwrap();
        let report = compare(&f, &db, &q).unwrap();
        assert!(report.agrees());
        let magic_plan =
            recurs_core::magic::build_plan(&f, &recurs_datalog::QueryForm::parse("dv"));
        let (_, magic_stats) = recurs_core::magic::execute(&magic_plan, &db, &q).unwrap();
        let fixpoint_derived = report.oracle_tuples_derived;
        let ratio = fixpoint_derived as f64 / magic_stats.tuples_derived.max(1) as f64;
        check_claim(
            &mut rows,
            "P3/dependent",
            "the σ-first plan derives only tuples connected to the query constant (class E)",
            format!(
                "magic derived {} tuples vs fixpoint {} ({ratio:.1}× fewer)",
                magic_stats.tuples_derived, fixpoint_derived
            ),
            magic_stats.tuples_derived < fixpoint_derived,
        );
    }

    // ---- print the table ---------------------------------------------------
    println!("| id | paper claim | measured | status |");
    println!("|----|-------------|----------|--------|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} |",
            r.id,
            r.claim,
            r.measured,
            if r.ok { "✓" } else { "✗ MISMATCH" }
        );
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    println!();
    println!(
        "{} claims checked, {} matched, {} mismatched",
        rows.len(),
        rows.len() - bad,
        bad
    );
    std::process::exit(if bad == 0 { 0 } else { 1 });
}
