//! Regenerates every worked example of the paper (s1–s12): classification,
//! theorems' quantities (stability, unfold period, rank bound), compiled
//! formula, and an executed, oracle-checked representative query.
//!
//! Run with: `cargo run -p recurs-bench --bin report_examples`

use recurs_core::classify::Classification;
use recurs_core::oracle::compare;
use recurs_core::report::{classification_report, plan_report};
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, Relation};
use recurs_workload::queries::random_database;

struct Example {
    id: &'static str,
    src: &'static str,
    /// Paper's expected class label.
    expected_class: &'static str,
    /// A representative concrete query (constants must be in the random DB's
    /// domain 1..=6).
    query: &'static str,
    note: &'static str,
}

const EXAMPLES: &[Example] = &[
    Example {
        id: "s1a (Ex.1)",
        src: "P(x, y) :- A(x, z), P(z, y).",
        expected_class: "A5",
        query: "P('1', y)",
        note: "transitive closure; unit rotational + unit permutational",
    },
    Example {
        id: "s1b (Ex.1)",
        src: "P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).",
        expected_class: "C",
        query: "P('1', y, z)",
        note: "same topology as s9",
    },
    Example {
        id: "s2a (Ex.2)",
        src: "P(x, y) :- A(x, z), P(z, u), B(u, y).",
        expected_class: "A1",
        query: "P('1', y)",
        note: "the resolution-graph construction example; stable",
    },
    Example {
        id: "s3 (Ex.3)",
        src: "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).",
        expected_class: "A1",
        query: "P('1', '2', z)",
        note: "paper's compiled formula σE, ∪k (σA^k ‖ σB^k)-C^k-E",
    },
    Example {
        id: "s4a (Ex.4)",
        src: "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).",
        expected_class: "A3",
        query: "P('1', '2', z)",
        note: "weight-3 rotational; unfolds 3× into s4d with 3 exits",
    },
    Example {
        id: "s5 (Ex.5)",
        src: "P(x, y, z) :- P(y, z, x).",
        expected_class: "A4",
        query: "P(x, y, z)",
        note: "pure rotation; bounded, rank 2",
    },
    Example {
        id: "s6 (Ex.6)",
        src: "P(x, y, z, u, v, w) :- P(z, y, u, x, w, v).",
        expected_class: "A5",
        query: "P(x, y, z, u, v, w)",
        note: "permutational cycles of weights 3, 1, 2 — stable after lcm = 6",
    },
    Example {
        id: "s7 (Ex.7)",
        src: "P(x, y, z, u, w, s, v) :- A(x, t), P(t, z, y, w, s, r, v), B(u, r).",
        expected_class: "A5",
        query: "P('1', y, z, u, w, s, v)",
        note: "4 disjoint one-directional cycles, weights 1, 2, 3, 1 — lcm 6",
    },
    Example {
        id: "s8 (Ex.8)",
        src: "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).",
        expected_class: "B",
        query: "P(x, y, z, u)",
        note: "bounded cycle; rank 2; equivalent to s8a′ ∪ s8b′",
    },
    Example {
        id: "s9 (Ex.9)",
        src: "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
        expected_class: "C",
        query: "P('1', y, z)",
        note: "unbounded cycle; paper's plan uses × and ∃",
    },
    Example {
        id: "s10 (Ex.10)",
        src: "P(x, y) :- B(y), C(x, y1), P(x1, y1).",
        expected_class: "D",
        query: "P(x, y)",
        note: "no non-trivial cycle; bounded with rank 2",
    },
    Example {
        id: "s11 (Ex.11)",
        src: "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
        expected_class: "E",
        query: "P('1', y)",
        note: "dependent cycles; plan σA-C-B-[{A‖B}-C]^k-…-E",
    },
    Example {
        id: "s12 (Ex.14)",
        src: "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).",
        expected_class: "F",
        query: "P('1', y, z)",
        note: "mixed E⊕A1 (the paper prints D⊕A1; its derivation matches E) — \
               determined pattern dvv → ddv → ddv …",
    },
];

fn main() {
    let mut all_agree = true;
    for ex in EXAMPLES {
        println!("{}", "=".repeat(72));
        println!("{} — {}", ex.id, ex.note);
        println!("{}", "=".repeat(72));
        let lr = validate_with_generic_exit(&parse_program(ex.src).unwrap()).unwrap();
        print!("{}", classification_report(&lr));

        let c = Classification::of(&lr.recursive_rule);
        let status = if c.class.label() == ex.expected_class {
            "matches the paper"
        } else {
            all_agree = false;
            "** DIFFERS from the paper **"
        };
        println!("paper's class: {} — {status}", ex.expected_class);

        let query = parse_atom(ex.query).unwrap();
        print!("{}", plan_report(&lr, &QueryForm::of_atom(&query)));

        // Execute on a seeded random database and cross-check the oracle.
        let db: Database = random_database(&lr, 30, 6, 0xFEED);
        // Give 2-ary EDBs a chain backbone so selective queries connect.
        let db = with_backbones(db);
        match compare(&lr, &db, &query) {
            Ok(report) => {
                println!(
                    "execution       : {} answers via {:?}; oracle agreement: {}",
                    report.plan_answers.len(),
                    report.strategy,
                    report.agrees()
                );
                all_agree &= report.agrees();
            }
            Err(e) => {
                println!("execution       : failed — {e}");
                all_agree = false;
            }
        }
        println!();
    }
    println!("{}", "=".repeat(72));
    println!(
        "overall: {}",
        if all_agree {
            "every example classified as in the paper and every plan agreed with the fixpoint oracle"
        } else {
            "DIVERGENCES FOUND — see above"
        }
    );
}

fn with_backbones(mut db: Database) -> Database {
    let names: Vec<_> = db.names().collect();
    for name in names {
        let rel = db.get(name).unwrap().clone();
        if rel.arity() == 2 {
            let mut merged = rel;
            merged.union_in_place(&Relation::from_pairs((1..6).map(|i| (i, i + 1))));
            db.insert_relation(name, merged);
        }
    }
    db
}
